"""Tests for distributed rank-join (reproducing the claims of [30])."""

import numpy as np
import pytest

from repro.bigdataless import IndexedRankJoin, RankJoinBaseline, rank_join_reference
from repro.cluster import ClusterTopology, DistributedStore
from repro.common.errors import ConfigurationError
from repro.data import Table, scored_relation


@pytest.fixture(scope="module")
def join_world():
    topo = ClusterTopology.single_datacenter(4)
    store = DistributedStore(topo)
    r = scored_relation(20000, key_space=2000, seed=1, name="R")
    s = scored_relation(20000, key_space=2000, seed=2, name="S")
    store.put_table(r, partitions_per_node=2)
    store.put_table(s, partitions_per_node=2)
    indexed = IndexedRankJoin(store)
    indexed.build_index("R")
    indexed.build_index("S")
    return store, r, s, indexed


class TestReference:
    def test_tiny_join_by_hand(self):
        r = Table({"key": np.array([1, 2, 3]), "score": np.array([0.9, 0.5, 0.1])})
        s = Table({"key": np.array([1, 2, 9]), "score": np.array([0.2, 0.8, 1.0])})
        top = rank_join_reference(r, s, 2)
        assert top[0] == (pytest.approx(1.3), 2)
        assert top[1] == (pytest.approx(1.1), 1)

    def test_no_matches_returns_empty(self):
        r = Table({"key": np.array([1]), "score": np.array([1.0])})
        s = Table({"key": np.array([2]), "score": np.array([1.0])})
        assert rank_join_reference(r, s, 5) == []

    def test_duplicate_keys_multiply(self):
        r = Table({"key": np.array([1, 1]), "score": np.array([0.5, 0.4])})
        s = Table({"key": np.array([1, 1]), "score": np.array([0.3, 0.2])})
        top = rank_join_reference(r, s, 10)
        assert len(top) == 4

    def test_k_bounds_result(self):
        r = scored_relation(100, key_space=10, seed=3)
        s = scored_relation(100, key_space=10, seed=4)
        assert len(rank_join_reference(r, s, 7)) == 7


class TestCorrectness:
    @pytest.mark.parametrize("k", [1, 5, 25])
    def test_both_engines_match_reference(self, join_world, k):
        store, r, s, indexed = join_world
        expected = [round(score, 9) for score, _ in rank_join_reference(r, s, k)]
        got_base, _ = RankJoinBaseline(store).query("R", "S", k)
        got_index, _ = indexed.query("R", "S", k)
        assert [round(score, 9) for score, _ in got_base] == expected
        assert [round(score, 9) for score, _ in got_index] == expected

    def test_scores_descending(self, join_world):
        *_, indexed = join_world
        results, _ = indexed.query("R", "S", 20)
        scores = [s for s, _ in results]
        assert scores == sorted(scores, reverse=True)

    def test_unindexed_table_rejected(self, join_world):
        store, *_ = join_world
        fresh = IndexedRankJoin(store)
        with pytest.raises(ConfigurationError):
            fresh.query("R", "S", 5)

    def test_invalid_k_rejected(self, join_world):
        *_, indexed = join_world
        with pytest.raises(ConfigurationError):
            indexed.query("R", "S", 0)


class TestCosts:
    def test_indexed_reads_tiny_fraction(self, join_world):
        store, r, s, indexed = join_world
        _, base_report = RankJoinBaseline(store).query("R", "S", 10)
        _, index_report = indexed.query("R", "S", 10)
        assert index_report.bytes_scanned < base_report.bytes_scanned / 20
        assert index_report.rows_examined < (r.n_rows + s.n_rows) / 20

    def test_indexed_faster_and_cheaper(self, join_world):
        store, *_ , indexed = join_world
        _, base_report = RankJoinBaseline(store).query("R", "S", 10)
        _, index_report = indexed.query("R", "S", 10)
        assert index_report.elapsed_sec < base_report.elapsed_sec
        assert index_report.dollars() < base_report.dollars()

    def test_gap_grows_with_scale(self):
        """The 'orders of magnitude' shape: speedup widens with data size."""
        ratios = []
        for n_rows in (2000, 20000):
            topo = ClusterTopology.single_datacenter(4)
            store = DistributedStore(topo)
            store.put_table(
                scored_relation(n_rows, key_space=n_rows // 10, seed=5, name="R"),
                partitions_per_node=2,
            )
            store.put_table(
                scored_relation(n_rows, key_space=n_rows // 10, seed=6, name="S"),
                partitions_per_node=2,
            )
            indexed = IndexedRankJoin(store)
            indexed.build_index("R")
            indexed.build_index("S")
            _, base = RankJoinBaseline(store).query("R", "S", 10)
            _, idx = indexed.query("R", "S", 10)
            ratios.append(base.bytes_scanned / max(1, idx.bytes_scanned))
        assert ratios[1] > ratios[0]

    def test_build_cost_reported(self, join_world):
        *_, indexed = join_world
        assert indexed.build_reports["R"].bytes_scanned > 0
