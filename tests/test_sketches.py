"""Tests for count-min sketches, dyadic range counts, reservoir sampling,
and the sketch-based AQP baseline ([16])."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import SketchAQPEngine
from repro.cluster import ClusterTopology, DistributedStore
from repro.common.errors import ConfigurationError
from repro.data import Table, uniform_table
from repro.ml import CountMinSketch, DyadicCountMin, ReservoirSample
from repro.queries import AnalyticsQuery, Count, Mean, RangeSelection


class TestCountMinSketch:
    def test_never_undercounts(self):
        sketch = CountMinSketch(width=64, depth=4, seed=0)
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 1000, size=2000)
        truth = {}
        for key in keys:
            sketch.add(int(key))
            truth[int(key)] = truth.get(int(key), 0) + 1
        for key, count in truth.items():
            assert sketch.estimate(key) >= count

    def test_epsilon_bound_holds_mostly(self):
        epsilon, delta = 0.01, 0.01
        sketch = CountMinSketch.from_error_bounds(epsilon, delta, seed=2)
        rng = np.random.default_rng(3)
        keys = rng.zipf(1.5, size=5000) % 500
        truth = {}
        for key in keys:
            sketch.add(int(key))
            truth[int(key)] = truth.get(int(key), 0) + 1
        overshoots = [
            sketch.estimate(k) - c for k, c in truth.items()
        ]
        bound = epsilon * sketch.total
        violations = sum(1 for o in overshoots if o > bound)
        assert violations <= max(2, delta * len(truth) * 3)

    def test_unseen_key_estimate_small(self):
        sketch = CountMinSketch(width=512, depth=5, seed=4)
        for key in range(100):
            sketch.add(key)
        assert sketch.estimate(99_999) <= 2

    def test_weighted_add(self):
        sketch = CountMinSketch(seed=5)
        sketch.add(7, count=42)
        assert sketch.estimate(7) >= 42

    def test_merge_is_additive(self):
        a = CountMinSketch(width=128, depth=4, seed=6)
        b = CountMinSketch(width=128, depth=4, seed=6)
        a.add(1, 10)
        b.add(1, 5)
        b.add(2, 7)
        merged = a.merge(b)
        assert merged.estimate(1) >= 15
        assert merged.total == 22

    def test_merge_mismatched_rejected(self):
        a = CountMinSketch(width=128, depth=4, seed=7)
        b = CountMinSketch(width=64, depth=4, seed=7)
        with pytest.raises(ConfigurationError):
            a.merge(b)
        c = CountMinSketch(width=128, depth=4, seed=8)
        with pytest.raises(ConfigurationError):
            a.merge(c)

    def test_state_bytes(self):
        assert CountMinSketch(width=100, depth=3).state_bytes() >= 100 * 3 * 8


class TestDyadicCountMin:
    def test_range_count_never_undercounts(self):
        synopsis = DyadicCountMin(levels=10, width=512, seed=9)
        rng = np.random.default_rng(10)
        values = rng.integers(0, 1024, size=3000)
        for value in values:
            synopsis.add(int(value))
        for lo, hi in ((0, 1023), (100, 200), (512, 600), (7, 7)):
            truth = int(((values >= lo) & (values <= hi)).sum())
            assert synopsis.range_count(lo, hi) >= truth

    def test_full_domain_matches_total(self):
        synopsis = DyadicCountMin(levels=8, width=512, seed=11)
        for value in range(200):
            synopsis.add(value)
        assert synopsis.range_count(0, 255) >= 200

    def test_empty_and_inverted_ranges(self):
        synopsis = DyadicCountMin(levels=6, seed=12)
        synopsis.add(10)
        assert synopsis.range_count(20, 10) == 0

    def test_out_of_domain_rejected(self):
        synopsis = DyadicCountMin(levels=4, seed=13)
        with pytest.raises(ConfigurationError):
            synopsis.add(16)
        with pytest.raises(ConfigurationError):
            synopsis.range_count(0, 16)

    @given(st.lists(st.integers(0, 255), min_size=1, max_size=200),
           st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=40, deadline=None)
    def test_range_upper_bound_property(self, values, a, b):
        lo, hi = min(a, b), max(a, b)
        synopsis = DyadicCountMin(levels=8, width=256, seed=14)
        for value in values:
            synopsis.add(value)
        truth = sum(1 for v in values if lo <= v <= hi)
        assert synopsis.range_count(lo, hi) >= truth

    def test_decomposition_covers_range_exactly(self):
        synopsis = DyadicCountMin(levels=6, seed=15)
        covered = []
        for level, start, length in synopsis._decompose(13, 47):
            covered.extend(range(start, start + length))
        assert covered == list(range(13, 47))


class TestReservoirSample:
    def test_keeps_everything_up_to_capacity(self):
        reservoir = ReservoirSample(capacity=10, seed=0)
        for i in range(7):
            reservoir.add(i)
        assert sorted(reservoir.sample) == list(range(7))

    def test_capacity_bounded(self):
        reservoir = ReservoirSample(capacity=10, seed=1)
        for i in range(1000):
            reservoir.add(i)
        assert len(reservoir.sample) == 10
        assert reservoir.n_seen == 1000

    def test_sampling_is_approximately_uniform(self):
        hits = np.zeros(100)
        for seed in range(300):
            reservoir = ReservoirSample(capacity=10, seed=seed)
            for i in range(100):
                reservoir.add(i)
            for item in reservoir.sample:
                hits[item] += 1
        # Every position sampled sometimes; no position hoards.
        assert hits.min() > 0
        assert hits.max() < hits.mean() * 3

    def test_scale_up(self):
        reservoir = ReservoirSample(capacity=10, seed=2)
        for i in range(100):
            reservoir.add(i)
        assert reservoir.scale_up(5.0) == pytest.approx(50.0)


class TestSketchAQPEngine:
    @pytest.fixture(scope="class")
    def engine_world(self):
        topo = ClusterTopology.single_datacenter(4)
        store = DistributedStore(topo)
        table = uniform_table(20_000, dims=("x0",), seed=16, name="data")
        store.put_table(table, partitions_per_node=2)
        engine = SketchAQPEngine(store, "data", "x0", levels=12)
        engine.build()
        return store, table, engine

    def query(self, lo, hi):
        return AnalyticsQuery(
            "data", RangeSelection(("x0",), [lo], [hi]), Count()
        )

    def test_estimates_close_and_biased_up(self, engine_world):
        store, table, engine = engine_world
        rng = np.random.default_rng(17)
        rel_errors = []
        for _ in range(20):
            lo = float(rng.uniform(0, 60))
            hi = lo + float(rng.uniform(5, 40))
            query = self.query(lo, hi)
            truth = query.evaluate(table)
            estimate, _ = engine.execute(query)
            assert estimate >= truth * 0.95  # upward-biased (bucket edges)
            rel_errors.append(abs(estimate - truth) / max(truth, 1.0))
        assert np.median(rel_errors) < 0.1

    def test_query_cost_is_negligible(self, engine_world):
        store, table, engine = engine_world
        _, report = engine.execute(self.query(10.0, 50.0))
        assert report.bytes_scanned == 0
        assert report.elapsed_sec < 1e-3

    def test_build_scans_table_once(self, engine_world):
        store, _, engine = engine_world
        assert engine.build_report.bytes_scanned == store.table("data").n_bytes

    def test_rejects_unsupported_queries(self, engine_world):
        _, _, engine = engine_world
        with pytest.raises(ConfigurationError):
            engine.execute(
                AnalyticsQuery(
                    "data", RangeSelection(("x0",), [0.0], [1.0]), Mean("value")
                )
            )
        with pytest.raises(ConfigurationError):
            engine.execute(
                AnalyticsQuery(
                    "data",
                    RangeSelection(("x0", "value"), [0, 0], [1, 1]),
                    Count(),
                )
            )

    def test_state_far_smaller_than_data(self, engine_world):
        store, _, engine = engine_world
        # A synopsis trades accuracy for a compact, mergeable summary.
        assert engine.state_bytes() < store.table("data").n_bytes * 60
        assert engine.state_bytes() > 0
