"""Tests for explanations and higher-level queries (RT4)."""

import numpy as np
import pytest

from repro.baselines import ExactEngine
from repro.cluster import ClusterTopology, DistributedStore
from repro.core import AgentConfig, SEAAgent
from repro.data import InterestProfile, WorkloadGenerator, gaussian_mixture_table
from repro.explain import (
    ExplanationBuilder,
    HigherLevelEngine,
    PiecewiseLinearModel,
    ThresholdRegionQuery,
)
from repro.queries import (
    AnalyticsQuery,
    Count,
    Mean,
    RadiusSelection,
    RangeSelection,
)


class TestPiecewiseLinearModel:
    def test_single_line_fits_exactly(self):
        x = np.linspace(0, 10, 20)
        y = 3 * x + 1
        model = PiecewiseLinearModel.fit(x, y, max_segments=3)
        assert model.n_segments == 1
        assert model.evaluate(5.0) == pytest.approx(16.0, abs=1e-6)

    def test_two_regimes_need_two_segments(self):
        x = np.linspace(0, 10, 40)
        y = np.where(x < 5, x, 5 + 10 * (x - 5))
        model = PiecewiseLinearModel.fit(x, y, max_segments=3)
        assert model.n_segments >= 2
        assert model.evaluate(2.0) == pytest.approx(2.0, abs=0.5)
        assert model.evaluate(8.0) == pytest.approx(35.0, abs=2.0)

    def test_extrapolates_beyond_sweep(self):
        x = np.linspace(1, 5, 10)
        model = PiecewiseLinearModel.fit(x, 2 * x, max_segments=1)
        assert model.evaluate(10.0) == pytest.approx(20.0, abs=1e-6)

    def test_describe_mentions_segments(self):
        x = np.linspace(0, 1, 6)
        model = PiecewiseLinearModel.fit(x, x, max_segments=1)
        assert "answer =" in model.describe()

    def test_unsorted_input_handled(self):
        x = np.array([3.0, 1.0, 2.0, 0.0])
        y = 4 * x
        model = PiecewiseLinearModel.fit(x, y)
        assert model.evaluate(1.5) == pytest.approx(6.0, abs=1e-6)

    def test_too_few_points_rejected(self):
        with pytest.raises(Exception):
            PiecewiseLinearModel.fit([1.0], [1.0])


@pytest.fixture(scope="module")
def explain_world():
    topo = ClusterTopology.single_datacenter(4)
    store = DistributedStore(topo)
    table = gaussian_mixture_table(15000, dims=("x0", "x1"), seed=6, name="data")
    store.put_table(table, partitions_per_node=2)
    return store, table


class TestExplanationFromEngine:
    def test_radius_explanation_high_fidelity(self, explain_world):
        store, table = explain_world
        engine = ExactEngine(store)
        center = table.matrix(("x0", "x1")).mean(axis=0)
        query = AnalyticsQuery(
            "data", RadiusSelection(("x0", "x1"), center, 8.0), Count()
        )
        builder = ExplanationBuilder(n_probes=13, max_segments=3)
        explanation = builder.from_engine(query, engine)
        assert explanation.parameter == "radius"
        assert explanation.fidelity > 0.95

    def test_range_explanation_parameter_is_scale(self, explain_world):
        store, table = explain_world
        engine = ExactEngine(store)
        query = AnalyticsQuery(
            "data",
            RangeSelection.around(("x0", "x1"), [50.0, 50.0], [10.0, 10.0]),
            Count(),
        )
        explanation = ExplanationBuilder(n_probes=9).from_engine(query, engine)
        assert explanation.parameter == "extent_scale"
        assert explanation.sweep.shape == (9,)

    def test_answer_at_interpolates(self, explain_world):
        store, table = explain_world
        engine = ExactEngine(store)
        center = table.matrix(("x0", "x1")).mean(axis=0)
        query = AnalyticsQuery(
            "data", RadiusSelection(("x0", "x1"), center, 8.0), Count()
        )
        explanation = ExplanationBuilder(n_probes=13).from_engine(query, engine)
        probe = AnalyticsQuery(
            "data", RadiusSelection(("x0", "x1"), center, 7.0), Count()
        )
        truth = probe.evaluate(table)
        assert explanation.answer_at(7.0) == pytest.approx(truth, rel=0.25)

    def test_count_grows_with_radius(self, explain_world):
        store, table = explain_world
        engine = ExactEngine(store)
        center = table.matrix(("x0", "x1")).mean(axis=0)
        query = AnalyticsQuery(
            "data", RadiusSelection(("x0", "x1"), center, 8.0), Count()
        )
        explanation = ExplanationBuilder().from_engine(query, engine)
        assert explanation.answer_at(12.0) > explanation.answer_at(4.0)

    def test_engine_explanation_cost_scales_with_probes(self, explain_world):
        store, _ = explain_world
        engine = ExactEngine(store)
        query = AnalyticsQuery(
            "data",
            RangeSelection.around(("x0", "x1"), [50.0, 50.0], [10.0, 10.0]),
            Count(),
        )
        few = ExplanationBuilder(n_probes=5).from_engine(query, engine)
        many = ExplanationBuilder(n_probes=17).from_engine(query, engine)
        assert many.cost.bytes_scanned > few.cost.bytes_scanned * 3


class TestExplanationFromPredictor:
    def test_dataless_explanation_touches_no_data(self, explain_world):
        store, table = explain_world
        agent = SEAAgent(
            ExactEngine(store),
            AgentConfig(training_budget=10_000, error_threshold=0.2),
        )
        profile = InterestProfile.from_table(
            table, ("x0", "x1"), 2, seed=7, hotspot_scale=2.0,
            extent_range=(4, 10),
        )
        workload = WorkloadGenerator(
            "data", ("x0", "x1"), profile, kind="radius", seed=8
        )
        queries = workload.batch(250)
        for query in queries:
            agent.submit(query)
        predictor = agent.predictor(queries[0])
        base = queries[0]
        explanation = ExplanationBuilder(n_probes=9).from_predictor(
            base, predictor
        )
        assert explanation.cost.bytes_scanned == 0
        assert explanation.cost.elapsed_sec < 0.01
        # Shape sanity: counts should not decrease as the radius grows.
        answers = explanation.model.evaluate_many(explanation.sweep)
        assert answers[-1] >= answers[0]


class TestHigherLevelQueries:
    def region_query(self, threshold=100.0):
        return ThresholdRegionQuery(
            table_name="data",
            columns=("x0", "x1"),
            aggregate=Count(),
            threshold=threshold,
            lows=np.array([0.0, 0.0]),
            highs=np.array([100.0, 100.0]),
            cells_per_dim=5,
        )

    def test_candidate_grid_size(self):
        assert len(self.region_query().candidate_queries()) == 25

    def test_exact_regions_match_manual(self, explain_world):
        store, table = explain_world
        engine = HigherLevelEngine(exact_engine=ExactEngine(store))
        region_query = self.region_query(threshold=200.0)
        result = engine.run_exact(region_query)
        for query in result.regions:
            assert query.evaluate(table) > 200.0
        # Every candidate above threshold is found.
        found = result.region_keys()
        for query in region_query.candidate_queries():
            if query.evaluate(table) > 200.0:
                sel = query.selection
                key = tuple(np.round(sel.lows, 9)) + tuple(np.round(sel.highs, 9))
                assert key in found

    def test_dataless_regions_approximate_exact(self, explain_world):
        store, table = explain_world
        agent = SEAAgent(
            ExactEngine(store),
            AgentConfig(training_budget=10_000),
        )
        # Train on queries shaped like the candidate cells.
        rng = np.random.default_rng(9)
        for _ in range(400):
            lo = rng.uniform(0, 80, size=2)
            width = rng.uniform(15, 25, size=2)
            query = AnalyticsQuery(
                "data",
                RangeSelection(("x0", "x1"), lo, lo + width),
                Count(),
            )
            agent.submit(query)
        predictor = agent.predictor(query)
        engine = HigherLevelEngine(
            exact_engine=ExactEngine(store), predictor=predictor
        )
        region_query = self.region_query(threshold=500.0)
        exact = engine.run_exact(region_query)
        dataless = engine.run_dataless(region_query)
        precision, recall = HigherLevelEngine.precision_recall(dataless, exact)
        assert precision > 0.5
        assert recall > 0.5
        assert dataless.cost.bytes_scanned == 0
        assert exact.cost.bytes_scanned > 0

    def test_direction_below(self, explain_world):
        store, table = explain_world
        engine = HigherLevelEngine(exact_engine=ExactEngine(store))
        query = ThresholdRegionQuery(
            table_name="data",
            columns=("x0", "x1"),
            aggregate=Count(),
            threshold=50.0,
            lows=np.array([0.0, 0.0]),
            highs=np.array([100.0, 100.0]),
            cells_per_dim=4,
            direction="below",
        )
        result = engine.run_exact(query)
        for region in result.regions:
            assert region.evaluate(table) < 50.0

    def test_invalid_direction_rejected(self):
        with pytest.raises(Exception):
            ThresholdRegionQuery(
                table_name="data",
                columns=("x0",),
                aggregate=Count(),
                threshold=1.0,
                lows=np.array([0.0]),
                highs=np.array([1.0]),
                direction="sideways",
            )


class TestHierarchicalRegionSearch:
    def region_query(self, threshold, cells=8):
        return ThresholdRegionQuery(
            table_name="data",
            columns=("x0", "x1"),
            aggregate=Count(),
            threshold=threshold,
            lows=np.array([0.0, 0.0]),
            highs=np.array([100.0, 100.0]),
            cells_per_dim=cells,
        )

    def test_matches_flat_exact_search(self, explain_world):
        store, table = explain_world
        engine = HigherLevelEngine(exact_engine=ExactEngine(store))
        region_query = self.region_query(threshold=400.0)
        flat = engine.run_exact(region_query)
        hierarchical = engine.run_hierarchical(region_query)
        assert hierarchical.region_keys() == flat.region_keys()

    def test_issues_fewer_queries_when_sparse(self, explain_world):
        store, table = explain_world
        engine = HigherLevelEngine(exact_engine=ExactEngine(store))
        # High threshold: few matching regions -> aggressive pruning.
        region_query = self.region_query(threshold=800.0)
        flat = engine.run_exact(region_query)
        hierarchical = engine.run_hierarchical(region_query)
        assert hierarchical.region_keys() == flat.region_keys()
        assert hierarchical.n_candidates < flat.n_candidates

    def test_non_monotone_direction_falls_back(self, explain_world):
        store, table = explain_world
        engine = HigherLevelEngine(exact_engine=ExactEngine(store))
        below = ThresholdRegionQuery(
            table_name="data",
            columns=("x0", "x1"),
            aggregate=Count(),
            threshold=100.0,
            lows=np.array([0.0, 0.0]),
            highs=np.array([100.0, 100.0]),
            cells_per_dim=4,
            direction="below",
        )
        flat = engine.run_exact(below)
        hierarchical = engine.run_hierarchical(below)
        assert hierarchical.region_keys() == flat.region_keys()
        assert hierarchical.n_candidates == flat.n_candidates
