"""Tests for learned-state persistence (repro.core.persistence)."""

import io

import numpy as np
import pytest

from repro.baselines import ExactEngine
from repro.cluster import ClusterTopology, DistributedStore
from repro.common.errors import ConfigurationError
from repro.core import (
    AgentConfig,
    SEAAgent,
    load_agent_models,
    load_predictor,
    save_agent_models,
    save_predictor,
)
from repro.core.predictor import DatalessPredictor
from repro.core.quantization import QuerySpaceQuantizer
from repro.data import InterestProfile, WorkloadGenerator, gaussian_mixture_table
from repro.queries import Count


def trained_predictor(seed=0):
    predictor = DatalessPredictor(
        quantizer=QuerySpaceQuantizer(n_quanta=4, warmup=16)
    )
    rng = np.random.default_rng(seed)
    for _ in range(120):
        v = rng.normal(loc=(5.0, 5.0), size=2)
        predictor.observe(v, 3.0 * v[0] + v[1])
    return predictor


class TestPredictorRoundtrip:
    def test_roundtrip_preserves_predictions(self, tmp_path):
        predictor = trained_predictor()
        path = str(tmp_path / "model.sea")
        n_bytes = save_predictor(predictor, path)
        assert n_bytes > 100
        restored = load_predictor(path)
        probe = np.array([5.0, 5.0])
        original = predictor.predict(probe)
        loaded = restored.predict(probe)
        assert loaded.scalar == pytest.approx(original.scalar)
        assert loaded.error_estimate == pytest.approx(original.error_estimate)
        assert loaded.quantum_id == original.quantum_id

    def test_roundtrip_via_file_object(self):
        predictor = trained_predictor(seed=1)
        buffer = io.BytesIO()
        save_predictor(predictor, buffer)
        buffer.seek(0)
        restored = load_predictor(buffer)
        assert restored.n_observed == predictor.n_observed

    def test_restored_predictor_keeps_learning(self, tmp_path):
        predictor = trained_predictor(seed=2)
        path = str(tmp_path / "model.sea")
        save_predictor(predictor, path)
        restored = load_predictor(path)
        before = restored.n_observed
        restored.observe([5.0, 5.0], 20.0)
        assert restored.n_observed == before + 1

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.sea"
        path.write_bytes(b"NOT-A-MODEL-FILE")
        with pytest.raises(ConfigurationError, match="magic"):
            load_predictor(str(path))

    def test_wrong_kind_rejected(self, tmp_path):
        topo = ClusterTopology.single_datacenter(2)
        store = DistributedStore(topo)
        store.put_table(gaussian_mixture_table(500, seed=3, name="data"))
        agent = SEAAgent(ExactEngine(store))
        path = str(tmp_path / "agent.sea")
        save_agent_models(agent, path)
        with pytest.raises(ConfigurationError, match="predictor"):
            load_predictor(path)


class TestAgentModelsRoundtrip:
    def test_new_agent_serves_from_restored_models(self, tmp_path):
        topo = ClusterTopology.single_datacenter(4)
        store = DistributedStore(topo)
        table = gaussian_mixture_table(15000, dims=("x0", "x1"), seed=4,
                                       name="data")
        store.put_table(table, partitions_per_node=2)
        profile = InterestProfile.from_table(
            table, ("x0", "x1"), 2, seed=5, hotspot_scale=2.0,
            extent_range=(4, 9),
        )
        workload = WorkloadGenerator(
            "data", ("x0", "x1"), profile, aggregate=Count(), seed=6
        )
        veteran = SEAAgent(
            ExactEngine(store),
            AgentConfig(training_budget=300, error_threshold=0.25),
        )
        for query in workload.batch(500):
            veteran.submit(query)
        path = str(tmp_path / "models.sea")
        save_agent_models(veteran, path)

        # A fresh agent (zero training budget) restores and serves.
        rookie = SEAAgent(
            ExactEngine(store),
            AgentConfig(training_budget=0, error_threshold=0.25),
        )
        n_loaded = load_agent_models(rookie, path)
        assert n_loaded == 1
        served = [rookie.submit(q) for q in workload.batch(150)]
        assert any(r.mode == "predicted" for r in served)

    def test_restored_models_keep_drift_protection(self, tmp_path):
        topo = ClusterTopology.single_datacenter(2)
        store = DistributedStore(topo)
        store.put_table(gaussian_mixture_table(2000, seed=7, name="data"))
        agent = SEAAgent(ExactEngine(store))
        path = str(tmp_path / "m.sea")
        save_agent_models(agent, path)
        fresh = SEAAgent(ExactEngine(store))
        load_agent_models(fresh, path)
        # Drift detectors exist for every restored signature.
        assert set(fresh._drift) >= set(fresh._predictors)
