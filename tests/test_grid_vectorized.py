"""Bitwise regression: vectorized grid ingest vs the historical per-row loop.

The grid index (:mod:`repro.bigdataless.index`) and the canopy segment
cache used to fold rows into cells one python iteration at a time.  The
vectorized replacements (``group_rows_by_cell`` + ``np.add.at``) must be
*bitwise* equal — same keys in the same insertion order, same float sums
bit for bit (including ``-0.0`` and NaN), same row directories — because
downstream answers, cost reports and fetch plans are compared with
``repr`` equality across executors.
"""

import numpy as np
import pytest

from repro.baselines.canopy import SegmentStatsCache
from repro.bigdataless.index import (
    DistributedGridIndex,
    group_rows_by_cell,
    split_rows_by_partition,
)
from repro.cluster import ClusterTopology, DistributedStore
from repro.data import Table, gaussian_mixture_table


def legacy_fold(per_part_points, per_part_cells):
    """The pre-vectorization per-row fold, verbatim.

    Returns ``(stats, rows)`` where stats maps cell key -> (count,
    sums-array built by the sequential ``sums + row`` left fold) and
    rows maps cell key -> [(partition, row), ...] in append order.
    """
    stats = {}
    rows = {}
    for part_idx, (points, cells) in enumerate(
        zip(per_part_points, per_part_cells)
    ):
        for row_idx, key in enumerate(map(tuple, cells)):
            rows.setdefault(key, []).append((part_idx, row_idx))
            count, sums = stats.get(key, (0, None))
            total = points[row_idx : row_idx + 1].sum(axis=0)
            sums = total if sums is None else sums + total
            stats[key] = (count + 1, sums)
    return stats, rows


def build_world(n_rows=4000, seed=5, parts_per_node=2, n_nodes=3):
    topo = ClusterTopology.single_datacenter(n_nodes)
    store = DistributedStore(topo)
    table = gaussian_mixture_table(
        n_rows, dims=("x0", "x1"), seed=seed, name="data"
    )
    store.put_table(table, partitions_per_node=parts_per_node)
    return store


def tricky_world():
    """Partitions with -0.0, duplicates, NaN coordinates and a zero-row
    piece — the inputs where a naive vectorization drifts bitwise."""
    rng = np.random.default_rng(11)
    x0 = rng.uniform(-5, 5, size=600)
    x1 = rng.uniform(-5, 5, size=600)
    x0[::7] = -0.0
    x0[1::13] = 0.0
    x1[2::11] = x1[1::11][: x1[2::11].shape[0]]  # duplicate coordinates
    x0[5::97] = np.nan
    store = DistributedStore(ClusterTopology.single_datacenter(2))
    store.put_table(
        Table({"x0": x0, "x1": x1}, name="data"), partitions_per_node=3
    )
    return store


def index_inputs(store, index):
    """(per-partition points, cells) exactly as build() computes them."""
    stored = store.table("data")
    points = [p.data.matrix(index.columns) for p in stored.partitions]
    cells = [index._cell_of(pts) for pts in points]
    return points, cells


class TestGroupRowsByCell:
    def test_matches_per_row_setdefault_loop(self):
        rng = np.random.default_rng(3)
        cells = rng.integers(0, 4, size=(257, 2))
        keys, segments, group_of = group_rows_by_cell(cells, 4)
        legacy = {}
        for row_idx, key in enumerate(map(tuple, cells)):
            legacy.setdefault(key, []).append(row_idx)
        assert keys == list(legacy)  # same first-appearance order
        for key, seg in zip(keys, segments):
            assert seg.tolist() == legacy[key]
        assert [keys[g] for g in group_of] == list(map(tuple, cells))

    def test_empty_input(self):
        keys, segments, group_of = group_rows_by_cell(
            np.empty((0, 2), dtype=int), 8
        )
        assert keys == [] and segments == [] and group_of.size == 0

    def test_split_rows_by_partition_preserves_runs(self):
        starts = np.array([0, 10, 10, 25], dtype=np.int64)  # empty middle part
        rows = np.array([1, 4, 9, 12, 13, 24], dtype=np.int64)
        out = split_rows_by_partition(rows, starts)
        assert [(p, r.tolist()) for p, r in out] == [
            (0, [1, 4, 9]),
            (2, [2, 3, 14]),
        ]


class TestGridIndexBitwise:
    @pytest.mark.parametrize("world", [build_world, tricky_world])
    def test_ingest_bitwise_equals_legacy_fold(self, world):
        store = world()
        index = DistributedGridIndex(store, "data", ("x0", "x1"), cells_per_dim=6)
        index.build()
        points, cells = index_inputs(store, index)
        stats, rows = legacy_fold(points, cells)
        assert list(index._stats) == list(stats)  # same key insertion order
        for key, (count, sums) in stats.items():
            got = index._stats[key]
            assert got.count == count
            # Bitwise: -0.0 vs 0.0 and NaN payloads must match exactly.
            assert got.sums.tobytes() == np.asarray(sums).tobytes()
        for key, refs in rows.items():
            flat = [
                (part_idx, int(row))
                for part_idx, run in index._rows[key]
                for row in run
            ]
            assert flat == refs

    def test_rows_for_cells_matches_legacy_order(self):
        store = build_world(n_rows=1500, seed=9)
        index = DistributedGridIndex(store, "data", ("x0", "x1"), cells_per_dim=5)
        index.build()
        points, cells = index_inputs(store, index)
        _, rows = legacy_fold(points, cells)
        keys = list(index._stats)[::2]
        legacy_plan = {}
        for key in keys:
            for part_idx, row_idx in rows.get(key, ()):
                legacy_plan.setdefault(part_idx, []).append(row_idx)
        plan = index.rows_for_cells(keys)
        assert set(plan) == set(legacy_plan)
        for part_idx, got in plan.items():
            assert got.tolist() == legacy_plan[part_idx]

    def test_state_bytes_unchanged_by_representation(self):
        store = build_world(n_rows=800, seed=2)
        index = DistributedGridIndex(store, "data", ("x0", "x1"), cells_per_dim=4)
        index.build()
        n_refs = sum(
            int(run.size) for refs in index._rows.values() for _, run in refs
        )
        assert n_refs == store.table("data").n_rows
        assert index.total_state_bytes() == (
            index.coordinator_state_bytes() + n_refs * 12
        )


class TestCanopyDirectoryBitwise:
    def test_directory_equals_legacy_per_row_loop(self):
        store = build_world(n_rows=2500, seed=7)
        cache = SegmentStatsCache(store, "data", ("x0", "x1"), cells_per_dim=8)
        from repro.common.accounting import CostMeter

        cache._build_directory(CostMeter())
        stored = store.table("data")
        legacy = {}
        for part_idx, partition in enumerate(stored.partitions):
            mats = partition.data.matrix(cache.grid_columns)
            scaled = (mats - cache._lows) / cache._span * cache.cells_per_dim
            cells = np.clip(scaled.astype(int), 0, cache.cells_per_dim - 1)
            for row_idx, key in enumerate(map(tuple, cells)):
                legacy.setdefault(key, []).append((part_idx, row_idx))
        assert list(cache._rows) == list(legacy)
        for key, refs in legacy.items():
            flat = [
                (part_idx, int(row))
                for part_idx, run in cache._rows[key]
                for row in run
            ]
            assert flat == refs
        n_refs = sum(len(refs) for refs in legacy.values())
        assert cache.state_bytes() == n_refs * 12  # no stats cached yet
