"""Unit tests for repro.ml.metrics and repro.ml.scaling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.common.errors import NotTrainedError
from repro.ml import (
    MinMaxScaler,
    StandardScaler,
    accuracy_score,
    mean_absolute_error,
    mean_squared_error,
    median_relative_error,
    r2_score,
    relative_error,
    root_mean_squared_error,
)


class TestMetrics:
    def test_mse_known_value(self):
        assert mean_squared_error([1, 2, 3], [1, 2, 5]) == pytest.approx(4 / 3)

    def test_rmse_is_sqrt_mse(self):
        y, p = [0, 0, 0], [3, 4, 0]
        assert root_mean_squared_error(y, p) == pytest.approx(
            np.sqrt(mean_squared_error(y, p))
        )

    def test_mae_known_value(self):
        assert mean_absolute_error([1, 2], [2, 4]) == pytest.approx(1.5)

    def test_relative_error_floor_guards_zero(self):
        errs = relative_error([0.0], [5.0], floor=1.0)
        assert errs[0] == pytest.approx(5.0)

    def test_median_relative_error(self):
        assert median_relative_error([10, 100], [11, 110]) == pytest.approx(0.1)

    def test_r2_perfect_and_mean(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, y) == pytest.approx(1.0)
        assert r2_score(y, np.full(3, 2.0)) == pytest.approx(0.0)

    def test_r2_constant_truth(self):
        assert r2_score([5, 5, 5], [5, 5, 5]) == 1.0
        assert r2_score([5, 5, 5], [5, 5, 6]) == 0.0

    def test_accuracy(self):
        assert accuracy_score(["a", "b", "c"], ["a", "b", "x"]) == pytest.approx(
            2 / 3
        )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mean_squared_error([1, 2], [1])
        with pytest.raises(ValueError):
            accuracy_score([1], [1, 2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_squared_error([], [])

    @given(
        hnp.arrays(
            dtype=float, shape=st.integers(2, 50), elements=st.floats(-100, 100)
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_r2_of_self_is_one(self, y):
        assert r2_score(y, y) == pytest.approx(1.0)


class TestStandardScaler:
    def test_transform_standardises(self):
        rng = np.random.default_rng(0)
        x = rng.normal(loc=5, scale=3, size=(200, 2))
        z = StandardScaler().fit_transform(x)
        assert np.allclose(z.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(z.std(axis=0), 1.0, atol=1e-9)

    def test_inverse_roundtrip(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(50, 3)) * [1, 10, 100]
        scaler = StandardScaler().fit(x)
        assert np.allclose(scaler.inverse_transform(scaler.transform(x)), x)

    def test_constant_column_maps_to_zero(self):
        x = np.column_stack([np.ones(10), np.arange(10.0)])
        z = StandardScaler().fit_transform(x)
        assert np.allclose(z[:, 0], 0.0)
        assert np.all(np.isfinite(z))

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotTrainedError):
            StandardScaler().transform([[1.0]])


class TestMinMaxScaler:
    def test_maps_to_unit_interval(self):
        x = np.array([[0.0], [5.0], [10.0]])
        z = MinMaxScaler().fit_transform(x)
        assert z.ravel().tolist() == [0.0, 0.5, 1.0]

    def test_extrapolates_outside_fitted_range(self):
        scaler = MinMaxScaler().fit(np.array([[0.0], [10.0]]))
        assert scaler.transform([[20.0]])[0, 0] == pytest.approx(2.0)

    def test_inverse_roundtrip(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(-5, 5, size=(30, 2))
        scaler = MinMaxScaler().fit(x)
        assert np.allclose(scaler.inverse_transform(scaler.transform(x)), x)

    def test_constant_column_finite(self):
        z = MinMaxScaler().fit_transform(np.full((5, 1), 7.0))
        assert np.allclose(z, 0.0)
