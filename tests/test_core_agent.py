"""Integration-style tests for the SEA agent lifecycle (Fig. 2)."""

import numpy as np
import pytest

from repro.baselines import ExactEngine
from repro.cluster import ClusterTopology, DistributedStore
from repro.core import AgentConfig, SEAAgent
from repro.data import InterestProfile, WorkloadGenerator, gaussian_mixture_table
from repro.queries import Count, Mean


@pytest.fixture(scope="module")
def world():
    topo = ClusterTopology.single_datacenter(4)
    store = DistributedStore(topo)
    table = gaussian_mixture_table(20000, dims=("x0", "x1"), seed=1, name="data")
    store.put_table(table, partitions_per_node=2)
    profile = InterestProfile.from_table(
        table, ("x0", "x1"), 3, seed=2, hotspot_scale=2.5, extent_range=(3, 8)
    )
    return store, table, profile


def run_agent(world, n_queries=1000, seed=3, **config_kwargs):
    store, table, profile = world
    defaults = dict(training_budget=400, error_threshold=0.15)
    defaults.update(config_kwargs)
    agent = SEAAgent(ExactEngine(store), AgentConfig(**defaults))
    workload = WorkloadGenerator(
        "data", ("x0", "x1"), profile, aggregate=Count(), seed=seed
    )
    for query in workload.batch(n_queries):
        agent.submit(query)
    return agent, table


class TestLifecycle:
    def test_training_phase_goes_to_engine(self, world):
        agent, _ = run_agent(world, n_queries=100)
        assert all(r.mode == "train" for r in agent.history)
        assert all(r.used_base_data for r in agent.history)

    def test_serving_phase_produces_dataless_answers(self, world):
        agent, _ = run_agent(world)
        modes = {r.mode for r in agent.history}
        assert "predicted" in modes
        stats = agent.stats()
        assert stats["dataless_fraction"] > 0.05

    def test_predicted_answers_touch_no_data_nodes(self, world):
        agent, _ = run_agent(world)
        for record in agent.history:
            if record.mode == "predicted":
                assert record.cost.bytes_scanned == 0
                assert record.cost.tasks_launched == 0
                assert not record.used_base_data

    def test_predicted_answers_are_accurate(self, world):
        agent, table = run_agent(world)
        errors = []
        for record in agent.history:
            if record.mode == "predicted":
                truth = record.query.evaluate(table)
                errors.append(abs(record.answer - truth) / max(abs(truth), 1.0))
        assert len(errors) > 20
        assert np.median(errors) < 0.15

    def test_predicted_latency_far_below_exact(self, world):
        agent, _ = run_agent(world)
        predicted = [
            r.cost.elapsed_sec for r in agent.history if r.mode == "predicted"
        ]
        exact = [
            r.cost.elapsed_sec for r in agent.history if r.mode != "predicted"
        ]
        assert np.mean(predicted) < np.mean(exact) / 100

    def test_fallback_queries_keep_learning(self, world):
        store, table, profile = world
        agent = SEAAgent(
            ExactEngine(store),
            AgentConfig(training_budget=50, error_threshold=0.15),
        )
        workload = WorkloadGenerator(
            "data", ("x0", "x1"), profile, aggregate=Count(), seed=9
        )
        for query in workload.batch(300):
            agent.submit(query)
        predictor = agent.predictor(workload.next_query())
        assert predictor.n_observed > 50  # fallbacks contributed

    def test_zero_threshold_never_predicts(self, world):
        agent, _ = run_agent(world, n_queries=400, error_threshold=0.0)
        assert agent.stats()["dataless_fraction"] == 0.0

    def test_stats_add_up(self, world):
        agent, _ = run_agent(world, n_queries=300)
        stats = agent.stats()
        assert stats["queries"] == 300
        assert (
            stats["predicted"] + stats["fallback"] + stats["trained"] == 300
        )


class TestPerAggregatePredictors:
    def test_separate_predictors_per_aggregate(self, world):
        store, table, profile = world
        agent = SEAAgent(ExactEngine(store), AgentConfig(training_budget=1000))
        count_wl = WorkloadGenerator(
            "data", ("x0", "x1"), profile, aggregate=Count(), seed=5
        )
        mean_wl = WorkloadGenerator(
            "data", ("x0", "x1"), profile, aggregate=Mean("value"), seed=6
        )
        agent.submit(count_wl.next_query())
        agent.submit(mean_wl.next_query())
        assert len(agent._predictors) == 2


class TestDataUpdates:
    def test_notify_data_update_invalidates_overlapping(self, world):
        agent, table = run_agent(world)
        before = sum(
            agent.predictor(r.query).model_for(q).n_samples
            for r in agent.history[:1]
            for q in agent.predictor(r.query).quantum_ids()
        )
        invalidated = agent.notify_data_update("data", [0.0, 0.0], [100.0, 100.0])
        assert invalidated > 0
        predictor = agent.predictor(agent.history[0].query)
        assert all(
            predictor.model_for(q).n_samples == 0
            for q in predictor.quantum_ids()
        )

    def test_update_outside_interest_invalidates_nothing(self, world):
        agent, _ = run_agent(world)
        invalidated = agent.notify_data_update(
            "data", [1e6, 1e6], [2e6, 2e6]
        )
        assert invalidated == 0

    def test_update_other_table_ignored(self, world):
        agent, _ = run_agent(world)
        assert agent.notify_data_update("other", [0, 0], [100, 100]) == 0
