"""Tests for spatial joins and kNN variants (RT2.1)."""

import numpy as np
import pytest

from repro.bigdataless import (
    ApproximateKNN,
    DistanceJoinBaseline,
    DistributedGridIndex,
    IndexedDistanceJoin,
    IndexedKNNJoin,
    KNNJoinBaseline,
    ReverseKNN,
    distance_join_reference,
    knn_join_reference,
    reverse_knn_reference,
)
from repro.cluster import ClusterTopology, DistributedStore
from repro.common.errors import ConfigurationError
from repro.data import Table, gaussian_mixture_table, uniform_table


@pytest.fixture(scope="module")
def join_world():
    topo = ClusterTopology.single_datacenter(4)
    store = DistributedStore(topo)
    s_table = gaussian_mixture_table(5000, dims=("x0", "x1"), seed=1, name="S")
    r_table = uniform_table(50, dims=("x0", "x1"), seed=2, name="R")
    store.put_table(s_table, partitions_per_node=2)
    store.put_table(r_table, partitions_per_node=1)
    index = DistributedGridIndex(store, "S", ("x0", "x1"), cells_per_dim=20)
    index.build()
    return store, s_table, r_table, index


class TestKNNJoin:
    @pytest.mark.parametrize("k", [1, 5])
    def test_both_engines_match_reference(self, join_world, k):
        store, s_table, r_table, index = join_world
        reference = knn_join_reference(r_table, s_table, ("x0", "x1"), k)
        baseline, _ = KNNJoinBaseline(store, ("x0", "x1")).query("R", "S", k)
        indexed, _ = IndexedKNNJoin(store, index).query("R", "S", k)
        assert baseline == reference
        assert indexed == reference

    def test_every_probe_answered(self, join_world):
        store, s_table, r_table, index = join_world
        results, _ = IndexedKNNJoin(store, index).query("R", "S", 3)
        assert set(results) == set(range(r_table.n_rows))
        assert all(len(v) == 3 for v in results.values())

    def test_localized_probes_read_far_less(self):
        """Probes clustered in one corner touch only that corner of S."""
        topo = ClusterTopology.single_datacenter(4)
        store = DistributedStore(topo)
        s_table = uniform_table(8000, dims=("x0", "x1"), seed=3, name="S")
        rng = np.random.default_rng(4)
        r_table = Table(
            {
                "x0": rng.uniform(10, 20, size=30),
                "x1": rng.uniform(10, 20, size=30),
            },
            name="R",
        )
        store.put_table(s_table, partitions_per_node=2)
        store.put_table(r_table, partitions_per_node=1)
        index = DistributedGridIndex(store, "S", ("x0", "x1"), cells_per_dim=24)
        index.build()
        _, base_report = KNNJoinBaseline(store, ("x0", "x1")).query("R", "S", 5)
        _, index_report = IndexedKNNJoin(store, index).query("R", "S", 5)
        assert index_report.bytes_scanned < base_report.bytes_scanned / 3

    def test_wrong_index_table_rejected(self, join_world):
        store, *_ , index = join_world
        with pytest.raises(ConfigurationError):
            IndexedKNNJoin(store, index).query("R", "R", 3)


class TestDistanceJoin:
    @pytest.mark.parametrize("epsilon", [0.5, 2.0])
    def test_both_engines_match_reference(self, join_world, epsilon):
        store, s_table, r_table, index = join_world
        reference = distance_join_reference(
            r_table, s_table, ("x0", "x1"), epsilon
        )
        baseline, _ = DistanceJoinBaseline(store, ("x0", "x1")).query(
            "R", "S", epsilon
        )
        indexed, _ = IndexedDistanceJoin(store, index).query("R", "S", epsilon)
        assert baseline == reference
        assert indexed == reference

    def test_zero_epsilon_matches_exact_points(self, join_world):
        store, s_table, r_table, index = join_world
        pairs, _ = IndexedDistanceJoin(store, index).query("R", "S", 0.0)
        for r_id, s_id in pairs:
            r_point = r_table.matrix(("x0", "x1"))[r_id]
            s_point = s_table.matrix(("x0", "x1"))[s_id]
            assert np.allclose(r_point, s_point)

    def test_indexed_reads_less(self, join_world):
        store, *_ , index = join_world
        _, base_report = DistanceJoinBaseline(store, ("x0", "x1")).query(
            "R", "S", 1.0
        )
        _, index_report = IndexedDistanceJoin(store, index).query("R", "S", 1.0)
        assert index_report.bytes_scanned < base_report.bytes_scanned

    def test_larger_epsilon_finds_superset(self, join_world):
        store, *_ , index = join_world
        small, _ = IndexedDistanceJoin(store, index).query("R", "S", 0.5)
        large, _ = IndexedDistanceJoin(store, index).query("R", "S", 2.0)
        assert small <= large


class TestReverseKNN:
    @pytest.mark.parametrize("k", [1, 4])
    def test_matches_reference(self, join_world, k):
        store, s_table, _, index = join_world
        operator = ReverseKNN(store, index)
        rng = np.random.default_rng(5)
        points = s_table.matrix(("x0", "x1"))
        for _ in range(4):
            q = points[int(rng.integers(s_table.n_rows))] + rng.normal(
                scale=0.5, size=2
            )
            got, _ = operator.query("S", q, k)
            want = reverse_knn_reference(s_table, ("x0", "x1"), q, k)
            assert got == want

    def test_point_in_dense_region_has_reverse_neighbours(self, join_world):
        store, s_table, _, index = join_world
        operator = ReverseKNN(store, index)
        dense = s_table.matrix(("x0", "x1")).mean(axis=0)
        # A query in empty space is rarely anyone's near neighbour; one
        # sitting on a data point usually is.
        on_point = s_table.matrix(("x0", "x1"))[0]
        got, _ = operator.query("S", on_point, 8)
        assert len(got) >= 1

    def test_non_2d_index_rejected(self):
        topo = ClusterTopology.single_datacenter(2)
        store = DistributedStore(topo)
        table = uniform_table(500, dims=("a", "b", "c"), seed=6, name="T")
        store.put_table(table)
        index = DistributedGridIndex(store, "T", ("a", "b", "c"), cells_per_dim=8)
        index.build()
        with pytest.raises(ConfigurationError):
            ReverseKNN(store, index)


class TestApproximateKNN:
    def test_dense_region_matches_exact(self, join_world):
        store, s_table, _, index = join_world
        from repro.bigdataless import CoordinatorKNN

        approx = ApproximateKNN(store, index)
        exact = CoordinatorKNN(store, index)
        dense = s_table.matrix(("x0", "x1")).mean(axis=0)
        a_rows, radius, a_report = approx.query("S", dense, 10)
        e_rows, e_report = exact.query("S", dense, 10)
        # In dense regions the single round already covers the answer.
        if a_rows.n_rows == 10 and float(a_rows["_dist"].max()) <= radius:
            assert np.allclose(
                np.sort(a_rows["_dist"]), np.sort(e_rows["_dist"])
            )

    def test_returned_distances_within_certified_radius_are_exact(
        self, join_world
    ):
        store, s_table, _, index = join_world
        approx = ApproximateKNN(store, index)
        q = s_table.matrix(("x0", "x1"))[42]
        rows, radius, _ = approx.query("S", q, 5)
        # Every candidate inside the radius is genuinely among the nearest
        # within that radius (verified against the full table).
        points = s_table.matrix(("x0", "x1"))
        dist = np.linalg.norm(points - q, axis=1)
        truth_within = np.sort(dist[dist <= radius])[: rows.n_rows]
        got = np.sort(rows["_dist"])
        within = got <= radius
        assert np.allclose(got[within], truth_within[: within.sum()])

    def test_single_round_cheaper_than_exact_in_sparse_corner(self):
        topo = ClusterTopology.single_datacenter(4)
        store = DistributedStore(topo)
        table = gaussian_mixture_table(
            6000, dims=("x0", "x1"), n_components=1, seed=7, name="S"
        )
        store.put_table(table, partitions_per_node=2)
        index = DistributedGridIndex(store, "S", ("x0", "x1"), cells_per_dim=20)
        index.build()
        from repro.bigdataless import CoordinatorKNN

        sparse = np.array([1.0, 1.0])
        _, _, approx_report = ApproximateKNN(store, index).query("S", sparse, 10)
        _, exact_report = CoordinatorKNN(store, index).query("S", sparse, 10)
        assert approx_report.elapsed_sec <= exact_report.elapsed_sec


class TestAllPairKNN:
    def test_matches_per_row_reference(self):
        from repro.bigdataless import AllPairKNN

        topo = ClusterTopology.single_datacenter(2)
        store = DistributedStore(topo)
        table = gaussian_mixture_table(600, dims=("x0", "x1"), seed=8, name="P")
        store.put_table(table, partitions_per_node=2)
        index = DistributedGridIndex(store, "P", ("x0", "x1"), cells_per_dim=12)
        index.build()
        results, report = AllPairKNN(store, index).query("P", 3)
        assert set(results) == set(range(600))
        points = table.matrix(("x0", "x1"))
        rng = np.random.default_rng(9)
        for row in rng.choice(600, size=15, replace=False):
            diff = points - points[row]
            dist = np.sqrt(np.einsum("ij,ij->i", diff, diff))
            dist[row] = np.inf  # exclude self
            expected = sorted(int(j) for j in np.argsort(dist)[:3])
            assert results[int(row)] == expected
        assert report.bytes_scanned > 0

    def test_self_excluded(self):
        from repro.bigdataless import AllPairKNN

        topo = ClusterTopology.single_datacenter(2)
        store = DistributedStore(topo)
        table = uniform_table(100, dims=("x0", "x1"), seed=10, name="P")
        store.put_table(table)
        index = DistributedGridIndex(store, "P", ("x0", "x1"), cells_per_dim=8)
        index.build()
        results, _ = AllPairKNN(store, index).query("P", 2)
        for row, neighbours in results.items():
            assert row not in neighbours
            assert len(neighbours) == 2
