"""Columnar partition storage: encodings, encoded scans, byte identity.

The contract under test (DESIGN §11):

1. **Round-trip identity** — every encoding decodes to the ingested
   column bit for bit (NaN payloads and signed zeros included), and the
   chooser never picks an encoding larger than raw.
2. **Encoded-predicate equivalence** — range masks evaluated on the
   encoded domain equal ``RangeSelection.mask`` on the decoded rows.
3. **Answer byte identity** — a columnar store answers every query
   bitwise identically to a row-major store over the same logical
   table, at any worker count, under pruning plans and fault schedules.
4. **Cost truthfulness** — the meter charges the encoded bytes a
   columnar scan actually reads, and profiles reconcile with it.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import ExactEngine
from repro.cluster import (
    BIT_PACKED,
    DICTIONARY,
    LAYOUT_COLUMN,
    LAYOUT_ROW,
    RAW,
    RUN_LENGTH,
    ClusterTopology,
    ColumnarPartition,
    DistributedStore,
    columnar_consistent,
    encode_column,
)
from repro.common import CostMeter
from repro.common.errors import ConfigurationError, PartitionLostError, StorageError
from repro.data import Table
from repro.engine.colscan import (
    ColumnScan,
    columnar_partial,
    encoded_batch_masks,
    encoded_mask,
    scan_columns,
)
from repro.faults import FaultInjector, FaultSchedule
from repro.obs import StackObserver
from repro.parallel import ScanExecutor
from repro.queries import (
    AnalyticsQuery,
    Correlation,
    Count,
    Max,
    Mean,
    Median,
    Min,
    RangeSelection,
    Std,
    Sum,
)


def roundtrip(values, value_bytes=8):
    enc = encode_column(np.asarray(values), value_bytes)
    decoded = enc.decode()
    assert decoded.dtype == np.asarray(values).dtype
    assert decoded.shape == np.asarray(values).shape
    assert decoded.tobytes() == np.asarray(values).tobytes()
    return enc


def make_table(n, seed=0, nan_fraction=0.0):
    """A mixed-encoding table: dictionary, RLE, bitpack and raw columns."""
    rng = np.random.default_rng(seed)
    cat = rng.integers(0, 6, n).astype(float)
    ts = np.repeat(
        np.arange(max(1, n // 16), dtype=float), 16
    )[:n]
    if ts.shape[0] < n:
        ts = np.concatenate([ts, np.full(n - ts.shape[0], ts[-1] if ts.size else 0.0)])
    small_int = rng.integers(-3, 12, n)
    x = rng.normal(size=n)
    if nan_fraction > 0 and n > 0:
        x[rng.random(n) < nan_fraction] = np.nan
    return Table(
        {"cat": cat, "ts": ts, "small": small_int, "x": x},
        name="t",
    )


# ---------------------------------------------------------------------------
# Encoder round trips
# ---------------------------------------------------------------------------


class TestEncoderRoundTrip:
    def test_empty_column_is_raw(self):
        enc = roundtrip(np.empty(0, dtype=float))
        assert enc.kind == RAW
        assert enc.encoded_bytes == 0

    def test_single_row_is_raw(self):
        enc = roundtrip(np.array([3.5]))
        assert enc.kind == RAW

    def test_constant_column_run_length(self):
        enc = roundtrip(np.full(500, 7.25))
        assert enc.kind == RUN_LENGTH
        assert enc.encoded_bytes == 16  # one (value, length) pair

    def test_sorted_column_run_length(self):
        enc = roundtrip(np.repeat(np.arange(10, dtype=float), 100))
        assert enc.kind == RUN_LENGTH

    def test_low_cardinality_dictionary(self):
        rng = np.random.default_rng(1)
        enc = roundtrip(rng.integers(0, 5, 2000).astype(float))
        assert enc.kind == DICTIONARY
        # 5 dictionary values + one uint8 code per row.
        assert enc.encoded_bytes == 5 * 8 + 2000

    def test_small_domain_int_bitpack(self):
        rng = np.random.default_rng(2)
        values = rng.permutation(np.arange(2000)) % 1000 - 500
        enc = roundtrip(values)
        assert enc.kind == BIT_PACKED
        assert enc.encoded_bytes < values.nbytes

    def test_nan_bearing_column_roundtrips_bitwise(self):
        rng = np.random.default_rng(3)
        values = rng.normal(size=300)
        values[::7] = np.nan
        roundtrip(values)
        # Constant-NaN column: runs must merge on bit pattern, not value.
        enc = roundtrip(np.full(100, np.nan))
        assert enc.kind == RUN_LENGTH

    def test_signed_zero_preserved(self):
        values = np.array([0.0, -0.0, 0.0, -0.0, 0.0, -0.0] * 50)
        enc = roundtrip(values)
        # -0.0 and 0.0 are distinct bit patterns: dictionary keeps both.
        assert enc.kind == DICTIONARY
        decoded = enc.decode()
        assert np.signbit(decoded[1]) and not np.signbit(decoded[0])

    def test_high_cardinality_stays_raw(self):
        rng = np.random.default_rng(4)
        enc = roundtrip(rng.normal(size=4000))
        assert enc.kind == RAW

    def test_encoding_never_exceeds_raw(self):
        rng = np.random.default_rng(5)
        for values in (
            rng.normal(size=777),
            rng.integers(0, 2, 777).astype(float),
            np.sort(rng.integers(0, 40, 777)).astype(float),
            rng.integers(-(2**40), 2**40, 777),
        ):
            enc = encode_column(values, 8)
            assert enc.encoded_bytes <= values.shape[0] * 8

    def test_value_bytes_scales_value_storage(self):
        values = np.full(100, 1.0)
        thin = encode_column(values, 8)
        wide = encode_column(values, 64)
        assert thin.kind == wide.kind == RUN_LENGTH
        assert wide.encoded_bytes == 64 + 8  # one wide value + one length

    def test_masked_take_and_range_mask_match_decode(self):
        rng = np.random.default_rng(6)
        columns = {
            RAW: rng.normal(size=400),
            DICTIONARY: rng.integers(0, 4, 400).astype(float),
            RUN_LENGTH: np.sort(rng.integers(0, 9, 400)).astype(float),
            BIT_PACKED: rng.permutation(np.arange(400)) % 50,
        }
        mask = rng.random(400) < 0.3
        idx = rng.integers(0, 400, 60)
        for kind, values in columns.items():
            enc = encode_column(values, 8)
            assert enc.kind == kind
            decoded = enc.decode()
            assert enc.masked(mask).tobytes() == decoded[mask].tobytes()
            assert enc.take(idx).tobytes() == decoded[idx].tobytes()
            lo, hi = np.quantile(values.astype(float), [0.2, 0.7])
            expect = (decoded >= lo) & (decoded <= hi)
            assert np.array_equal(enc.range_mask(lo, hi), expect)
            lows = np.array([lo, hi])
            highs = np.array([hi, hi + 1.0])
            batch = enc.batch_range_masks(lows, highs)
            for row, (blo, bhi) in zip(batch, zip(lows, highs)):
                assert np.array_equal(row, (decoded >= blo) & (decoded <= bhi))

    def test_columnar_partition_project_and_masked_table(self):
        table = make_table(600, seed=7)
        part = ColumnarPartition.from_table(table)
        assert part.column_names == table.column_names
        assert part.to_table().column("x").tobytes() == table.column("x").tobytes()
        proj = part.project(("x", "cat"))
        assert proj.column_names == ["x", "cat"]
        assert proj.encoded_bytes == part.column_bytes(("x", "cat"))
        mask = table.column("cat") <= 2.0
        mini = part.masked_table(mask, ("x",))
        assert mini.column("x").tobytes() == table.column("x")[mask].tobytes()
        took = part.take([5, 1, 599])
        assert took.column("small").tolist() == table.column("small")[[5, 1, 599]].tolist()

    def test_columnar_consistent_detects_drift(self):
        table = make_table(300, seed=8)
        part = ColumnarPartition.from_table(table)
        assert columnar_consistent([part], [table])
        other = make_table(300, seed=9)
        assert not columnar_consistent([part], [other])
        assert not columnar_consistent([None], [table])


# ---------------------------------------------------------------------------
# Encoded predicates + late materialization
# ---------------------------------------------------------------------------


class TestEncodedScan:
    def test_encoded_mask_matches_row_mask(self):
        table = make_table(800, seed=10, nan_fraction=0.05)
        part = ColumnarPartition.from_table(table)
        sel = RangeSelection(("cat", "x"), (1.0, -0.5), (4.0, 0.5))
        assert np.array_equal(encoded_mask(part, sel), sel.mask(table))

    def test_encoded_batch_masks_match(self):
        table = make_table(500, seed=11)
        part = ColumnarPartition.from_table(table)
        sels = [
            RangeSelection(("cat",), (float(k),), (float(k) + 1.0,))
            for k in range(4)
        ]
        batch = encoded_batch_masks(sels, part)
        for sel, mask in zip(sels, batch):
            assert np.array_equal(mask, sel.mask(table))

    def test_scan_columns_dedupes_and_gates(self):
        sel = RangeSelection(("a", "b"), (0.0, 0.0), (1.0, 1.0))
        scan = scan_columns(sel, Sum("a"))
        assert scan == ColumnScan(("a", "b"))
        assert scan_columns(sel, Count()) == ColumnScan(("a", "b"))
        assert scan_columns(sel, Correlation("b", "c")) == ColumnScan(("a", "b", "c"))

    def test_columnar_partial_matches_row_partial(self):
        table = make_table(700, seed=12)
        part = ColumnarPartition.from_table(table)
        sel = RangeSelection(("cat",), (0.0,), (2.0,))
        mask = sel.mask(table)
        for agg in (Count(), Sum("x"), Mean("x"), Std("x"), Min("x"),
                    Max("x"), Median("x"), Correlation("x", "cat")):
            expect = agg.partial_from_mask(table, mask)
            got = columnar_partial(part, sel, agg)
            assert repr(got) == repr(expect)


# ---------------------------------------------------------------------------
# Store integration: layout knob, accounting, maintenance
# ---------------------------------------------------------------------------


def build_stores(n=2000, seed=0, replication=1, parts=2, nan_fraction=0.0):
    table = make_table(n, seed=seed, nan_fraction=nan_fraction)
    row_store = DistributedStore(
        ClusterTopology.single_datacenter(4),
        replication=replication,
        layout=LAYOUT_ROW,
    )
    row_store.put_table(table, partitions_per_node=parts)
    col_store = DistributedStore(
        ClusterTopology.single_datacenter(4),
        replication=replication,
        layout=LAYOUT_COLUMN,
    )
    col_store.put_table(table, partitions_per_node=parts)
    return row_store, col_store, table


class TestStoreIntegration:
    def test_layout_knob_validated(self):
        topo = ClusterTopology.single_datacenter(2)
        with pytest.raises(ConfigurationError):
            DistributedStore(topo, layout="diagonal")

    def test_per_put_layout_override(self):
        topo = ClusterTopology.single_datacenter(2)
        store = DistributedStore(topo)  # default row
        table = make_table(400)
        stored = store.put_table(table, layout=LAYOUT_COLUMN)
        assert stored.columnar
        assert all(p.columnar is not None for p in stored.partitions)

    def test_node_accounting_uses_encoded_bytes(self):
        _, col_store, _ = build_stores()
        stored = col_store.table("t")
        assert stored.stored_bytes < sum(p.n_bytes for p in stored.partitions)
        total_on_nodes = sum(
            node.stored_bytes for node in col_store.topology.nodes
        )
        # replication=1: node accounting equals the encoded footprint.
        assert total_on_nodes == stored.stored_bytes
        col_store.drop_table("t")
        assert sum(n.stored_bytes for n in col_store.topology.nodes) == 0

    def test_read_columns_charges_projected_encoded_bytes(self):
        _, col_store, _ = build_stores()
        stored = col_store.table("t")
        partition = stored.partitions[0]
        meter = CostMeter()
        projected = col_store.read_columns(partition, ("x", "cat"), meter)
        assert meter.freeze().bytes_scanned == projected.encoded_bytes
        assert projected.encoded_bytes == partition.columnar.column_bytes(("x", "cat"))
        assert projected.encoded_bytes < partition.stored_bytes

    def test_read_columns_requires_columnar_layout(self):
        row_store, _, _ = build_stores()
        partition = row_store.table("t").partitions[0]
        with pytest.raises(StorageError):
            row_store.read_columns(partition, ("x",), CostMeter())

    def test_read_partition_charges_encoded_footprint(self):
        _, col_store, _ = build_stores()
        partition = col_store.table("t").partitions[0]
        meter = CostMeter()
        col_store.read_partition(partition, meter)
        assert meter.freeze().bytes_scanned == partition.stored_bytes

    def test_synopsis_records_encodings(self):
        row_store, col_store, _ = build_stores()
        for synopsis, partition in zip(
            col_store.synopses("t"), col_store.table("t").partitions
        ):
            assert synopsis.encodings == partition.columnar.encodings
        assert all(s.encodings is None for s in row_store.synopses("t"))

    def test_maintenance_reencodes_and_stays_consistent(self):
        _, col_store, table = build_stores(n=1200, seed=3)
        stored = col_store.table("t")
        before = stored.stored_bytes
        col_store.append_rows("t", make_table(300, seed=4), seed=1)
        deleted = col_store.delete_rows("t", lambda t: t.column("cat") < 1.0)
        assert deleted > 0
        assert columnar_consistent(
            [p.columnar for p in stored.partitions],
            [p.data for p in stored.partitions],
        )
        for synopsis, partition in zip(
            col_store.synopses("t"), stored.partitions
        ):
            assert synopsis.encodings == partition.columnar.encodings
        # Node accounting tracked the re-encodes: totals match the new image.
        assert sum(
            n.stored_bytes for n in col_store.topology.nodes
        ) == stored.stored_bytes
        assert stored.stored_bytes != before


# ---------------------------------------------------------------------------
# Read-only partitions (engines never mutate base data)
# ---------------------------------------------------------------------------


class TestReadOnlyPartitions:
    def test_table_columns_are_read_only_views(self):
        table = make_table(50)
        col = table.column("x")
        assert not col.flags.writeable
        with pytest.raises(ValueError):
            col[0] = 99.0

    def test_callers_original_buffer_stays_writable(self):
        values = np.arange(10.0)
        Table({"v": values})
        values[0] = -1.0  # the caller's own array is untouched by the view
        assert values[0] == -1.0

    def test_engines_never_mutate_partition_data(self):
        row_store, col_store, _ = build_stores(n=1500, seed=5)
        for store in (row_store, col_store):
            stored = store.table("t")
            images = [
                {
                    name: partition.data.column(name).tobytes()
                    for name in partition.data.column_names
                }
                for partition in stored.partitions
            ]
            engine = ExactEngine(store, executor=ScanExecutor(4))
            queries = [
                AnalyticsQuery(
                    "t",
                    RangeSelection(("cat",), (0.0,), (float(k),)),
                    agg,
                )
                for k in range(3)
                for agg in (Sum("x"), Mean("x"), Count())
            ]
            for query in queries:
                engine.execute(query)
            engine.execute_many(queries)
            for partition, image in zip(stored.partitions, images):
                for name, payload in image.items():
                    assert partition.data.column(name).tobytes() == payload


# ---------------------------------------------------------------------------
# Row vs columnar byte identity (engines, profiles, faults, workers)
# ---------------------------------------------------------------------------


def parity_queries():
    out = []
    for k in range(5):
        sel = RangeSelection(("cat",), (0.0,), (float(k),))
        out.append(AnalyticsQuery("t", sel, Sum("x")))
        out.append(AnalyticsQuery("t", sel, Count()))
    sel2 = RangeSelection(("cat", "x"), (1.0, -1.0), (3.0, 1.0))
    for agg in (Mean("x"), Std("x"), Min("x"), Max("x"), Median("x"),
                Correlation("x", "ts")):
        out.append(AnalyticsQuery("t", sel2, agg))
    return out


class TestRowColumnParity:
    def test_execute_byte_identical_and_cheaper(self):
        row_store, col_store, _ = build_stores(n=3000, seed=6)
        row_engine = ExactEngine(row_store)
        col_engine = ExactEngine(col_store)
        saw_cheaper = False
        for query in parity_queries():
            row_answer, row_report = row_engine.execute(query)
            col_answer, col_report = col_engine.execute(query)
            assert repr(row_answer) == repr(col_answer)
            assert col_report.bytes_scanned <= row_report.bytes_scanned
            if col_report.bytes_scanned < row_report.bytes_scanned:
                saw_cheaper = True
        assert saw_cheaper

    def test_execute_many_matches_execute(self):
        _, col_store, _ = build_stores(n=2500, seed=7)
        engine = ExactEngine(col_store)
        queries = parity_queries()
        batched = engine.execute_many(queries)
        for query, (answer, report) in zip(queries, batched):
            solo_answer, solo_report = engine.execute(query)
            assert repr(answer) == repr(solo_answer)
            assert report.as_dict() == solo_report.as_dict()

    def test_profile_reconciles_with_meter(self):
        _, col_store, _ = build_stores(n=2000, seed=8)
        observer = StackObserver()
        engine = ExactEngine(col_store, observer=observer)
        query = AnalyticsQuery(
            "t", RangeSelection(("cat",), (0.0,), (1.0,)), Sum("x")
        )
        observer.profile_begin(query)
        engine.execute(query)
        profile = observer.profile_end(query)
        scanned = [p for p in profile.partitions if p.action == "scan"]
        assert scanned
        for p in scanned:
            assert p.read_bytes < p.n_bytes  # column pruning + encoding
            assert p.stored_bytes < p.n_bytes
            assert p.bytes_saved == p.n_bytes - p.read_bytes
        assert profile.bytes_scanned == sum(p.read_bytes for p in scanned)

    def test_workers_do_not_change_columnar_answers(self):
        _, col_store, _ = build_stores(n=2600, seed=9)
        serial = ExactEngine(col_store)
        parallel = ExactEngine(col_store, executor=ScanExecutor(4))
        for query in parity_queries():
            a1, r1 = serial.execute(query)
            a2, r2 = parallel.execute(query)
            assert repr(a1) == repr(a2)
            assert r1.as_dict() == r2.as_dict()

    def test_failover_parity_under_crash(self):
        row_store, col_store, _ = build_stores(n=1600, seed=10, replication=2)
        query = AnalyticsQuery(
            "t", RangeSelection(("cat",), (0.0,), (2.0,)), Sum("x")
        )
        answers = []
        for store in (row_store, col_store):
            schedule = FaultSchedule()
            schedule.crash(store.topology.node_ids[0])
            store.attach_faults(FaultInjector(schedule, seed=11))
            answer, report = ExactEngine(store).execute(query)
            answers.append(answer)
            store.clear_faults()
        assert repr(answers[0]) == repr(answers[1])


table_seeds = st.integers(0, 10_000)


class TestHypothesisByteIdentity:
    @given(
        seed=table_seeds,
        n=st.integers(64, 600),
        nan_fraction=st.sampled_from([0.0, 0.05]),
        crash=st.booleans(),
        lo=st.integers(0, 3),
        span=st.integers(0, 3),
        agg_index=st.integers(0, 4),
    )
    @settings(max_examples=20, deadline=None)
    def test_row_vs_columnar_identity(
        self, seed, n, nan_fraction, crash, lo, span, agg_index
    ):
        """Random tables × encodings × plans × faults × workers 1 vs 4."""
        row_store, col_store, _ = build_stores(
            n=n, seed=seed, replication=2, nan_fraction=nan_fraction
        )
        aggregate = [Count(), Sum("x"), Mean("x"), Min("small"), Std("x")][
            agg_index
        ]
        query = AnalyticsQuery(
            "t",
            RangeSelection(("cat",), (float(lo),), (float(lo + span),)),
            aggregate,
        )
        outcomes = []
        for store, workers in (
            (row_store, 1),
            (row_store, 4),
            (col_store, 1),
            (col_store, 4),
        ):
            if crash:
                schedule = FaultSchedule()
                schedule.crash(store.topology.node_ids[seed % 4])
                store.attach_faults(FaultInjector(schedule, seed=seed))
            engine = ExactEngine(store, executor=ScanExecutor(workers))
            try:
                answer, _ = engine.execute(query)
                outcomes.append(repr(answer))
            except PartitionLostError:
                outcomes.append("lost")
            finally:
                store.clear_faults()
        assert len(set(outcomes)) == 1
        stored = col_store.table("t")
        assert columnar_consistent(
            [p.columnar for p in stored.partitions],
            [p.data for p in stored.partitions],
        )
