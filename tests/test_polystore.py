"""Tests for multi-system (polystore) data-less analytics (RT1.5)."""

import numpy as np
import pytest

from repro.baselines import ExactEngine
from repro.cluster import ClusterTopology, DistributedStore
from repro.common.errors import ConfigurationError, QueryError
from repro.core import AgentConfig, Polystore, PolystoreSystem, SEAAgent
from repro.data import InterestProfile, WorkloadGenerator, gaussian_mixture_table
from repro.queries import AnalyticsQuery, Count, Median, RangeSelection


def build_system(name, seed, table):
    topo = ClusterTopology.single_datacenter(3, datacenter=name)
    store = DistributedStore(topo)
    store.put_table(table, partitions_per_node=1)
    agent = SEAAgent(
        ExactEngine(store),
        AgentConfig(training_budget=200, error_threshold=0.2),
    )
    return PolystoreSystem(name=name, agent=agent, gateway_node=topo.node_ids[0])


@pytest.fixture(scope="module")
def polystore_world():
    table_a = gaussian_mixture_table(8000, dims=("x0", "x1"), seed=1, name="data")
    table_b = gaussian_mixture_table(8000, dims=("x0", "x1"), seed=2, name="data")
    sys_a = build_system("sysA", 1, table_a)
    sys_b = build_system("sysB", 2, table_b)
    poly = Polystore([sys_a, sys_b])
    union = np.concatenate([table_a["x0"], table_b["x0"]])
    return poly, table_a, table_b


def count_query(lo=30.0, hi=60.0):
    return AnalyticsQuery(
        "data",
        RangeSelection(("x0", "x1"), [lo, lo], [hi, hi]),
        Count(),
    )


class TestStrategiesAgree:
    def test_migrate_and_partials_are_exact(self, polystore_world):
        poly, a, b = polystore_world
        query = count_query()
        truth = query.evaluate(a) + query.evaluate(b)
        for strategy in ("migrate", "partials"):
            answer, _ = poly.execute_union(query, strategy=strategy)
            assert answer == pytest.approx(truth)

    def test_models_strategy_close_after_training(self, polystore_world):
        poly, a, b = polystore_world
        # Train both agents on overlapping workloads.
        profile = InterestProfile(
            np.array([[45.0, 45.0]]), hotspot_scale=2.0, extent_range=(8, 15)
        )
        wg = WorkloadGenerator("data", ("x0", "x1"), profile, aggregate=Count(), seed=3)
        for query in wg.batch(300):
            poly.execute_union(query, strategy="models")
        query = AnalyticsQuery(
            "data",
            RangeSelection.around(("x0", "x1"), [45.0, 45.0], [10.0, 10.0]),
            Count(),
        )
        answer, _ = poly.execute_union(query, strategy="models")
        truth = query.evaluate(a) + query.evaluate(b)
        assert answer == pytest.approx(truth, rel=0.3)


class TestCosts:
    def test_migrate_ships_base_data_over_wan(self, polystore_world):
        poly, a, b = polystore_world
        _, report = poly.execute_union(count_query(), strategy="migrate")
        assert report.bytes_shipped_wan >= b.n_bytes

    def test_partials_ship_constant_bytes(self, polystore_world):
        poly, *_ = polystore_world
        _, report = poly.execute_union(count_query(), strategy="partials")
        assert report.bytes_shipped_wan < 1024

    def test_models_cheapest_wan_when_trained(self, polystore_world):
        poly, *_ = polystore_world
        _, migrate = poly.execute_union(count_query(), strategy="migrate")
        _, models = poly.execute_union(count_query(), strategy="models")
        assert models.bytes_shipped_wan < migrate.bytes_shipped_wan / 1000


class TestValidation:
    def test_unknown_strategy_rejected(self, polystore_world):
        poly, *_ = polystore_world
        with pytest.raises(ConfigurationError):
            poly.execute_union(count_query(), strategy="teleport")

    def test_holistic_aggregate_rejected_for_partials(self, polystore_world):
        poly, *_ = polystore_world
        query = AnalyticsQuery(
            "data",
            RangeSelection(("x0",), [0.0], [100.0]),
            Median("value"),
        )
        with pytest.raises(QueryError):
            poly.execute_union(query, strategy="partials")

    def test_single_system_rejected(self, polystore_world):
        poly, *_ = polystore_world
        only = next(iter(poly.systems.values()))
        with pytest.raises(ConfigurationError):
            Polystore([only])

    def test_duplicate_names_rejected(self, polystore_world):
        poly, *_ = polystore_world
        systems = list(poly.systems.values())
        with pytest.raises(ConfigurationError):
            Polystore([systems[0], systems[0]])


class TestModelAnswerCombination:
    def test_count_and_sum_add(self):
        from repro.core.polystore import Polystore
        from repro.queries import AnalyticsQuery, Count, RangeSelection, Sum

        sel = RangeSelection(("x0",), [0.0], [1.0])
        count_query = AnalyticsQuery("data", sel, Count())
        assert Polystore._combine_model_answers(
            count_query, [10.0, 20.0, 5.0]
        ) == pytest.approx(35.0)
        sum_query = AnalyticsQuery("data", sel, Sum("value"))
        assert Polystore._combine_model_answers(
            sum_query, [1.5, -0.5]
        ) == pytest.approx(1.0)

    def test_mean_like_answers_average(self):
        from repro.core.polystore import Polystore
        from repro.queries import AnalyticsQuery, Mean, RangeSelection

        sel = RangeSelection(("x0",), [0.0], [1.0])
        query = AnalyticsQuery("data", sel, Mean("value"))
        assert Polystore._combine_model_answers(
            query, [2.0, 4.0]
        ) == pytest.approx(3.0)

    def test_vector_answers_average_elementwise(self):
        from repro.core.polystore import Polystore
        from repro.queries import (
            AnalyticsQuery,
            RangeSelection,
            RegressionCoefficients,
        )

        sel = RangeSelection(("x0",), [0.0], [1.0])
        query = AnalyticsQuery(
            "data", sel, RegressionCoefficients("value", ["x0"])
        )
        combined = Polystore._combine_model_answers(
            query, [np.array([1.0, 2.0]), np.array([3.0, 4.0])]
        )
        assert np.allclose(combined, [2.0, 3.0])
