"""Unit tests for repro.ml.tree and repro.ml.boosting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError, NotTrainedError
from repro.ml import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    GradientBoostingRegressor,
    accuracy_score,
    r2_score,
)


def step_data(seed=0, n=200):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1, 1, size=(n, 2))
    y = np.where(x[:, 0] > 0.0, 5.0, -5.0)
    return x, y


class TestDecisionTreeRegressor:
    def test_learns_axis_aligned_step(self):
        x, y = step_data()
        # Split candidates are subsampled, so the cut may be slightly off
        # the exact boundary; depth 3 recovers the residual strip.
        model = DecisionTreeRegressor(max_depth=3).fit(x, y)
        assert r2_score(y, model.predict(x)) > 0.99

    def test_depth_one_is_single_split(self):
        x, y = step_data(seed=1)
        model = DecisionTreeRegressor(max_depth=1).fit(x, y)
        assert model.n_nodes == 3  # root + two leaves

    def test_constant_target_yields_leaf(self):
        model = DecisionTreeRegressor().fit(np.random.rand(30, 3), np.ones(30))
        assert model.n_nodes == 1
        assert np.allclose(model.predict(np.random.rand(5, 3)), 1.0)

    def test_min_samples_leaf_enforced(self):
        x, y = step_data(seed=2, n=20)
        model = DecisionTreeRegressor(max_depth=8, min_samples_leaf=10).fit(x, y)
        # With leaves >= 10 of 20 samples, at most one split is possible.
        assert model.n_nodes <= 3

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotTrainedError):
            DecisionTreeRegressor().predict([[0.0]])

    def test_deeper_trees_fit_better(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(0, 1, size=(300, 1))
        y = np.sin(8 * x[:, 0])
        shallow = DecisionTreeRegressor(max_depth=2).fit(x, y)
        deep = DecisionTreeRegressor(max_depth=8).fit(x, y)
        assert r2_score(y, deep.predict(x)) > r2_score(y, shallow.predict(x))

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigurationError):
            DecisionTreeRegressor(max_depth=0)
        with pytest.raises(ConfigurationError):
            DecisionTreeRegressor(min_samples_leaf=0)

    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=10, deadline=None)
    def test_training_error_never_worse_than_mean_model(self, depth):
        rng = np.random.default_rng(depth)
        x = rng.normal(size=(80, 2))
        y = rng.normal(size=80)
        model = DecisionTreeRegressor(max_depth=depth).fit(x, y)
        tree_sse = np.sum((y - model.predict(x)) ** 2)
        mean_sse = np.sum((y - y.mean()) ** 2)
        assert tree_sse <= mean_sse + 1e-9


class TestDecisionTreeClassifier:
    def test_learns_quadrant_labels(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, size=(400, 2))
        y = (x[:, 0] > 0).astype(int) + 2 * (x[:, 1] > 0).astype(int)
        model = DecisionTreeClassifier(max_depth=3).fit(x, y)
        assert accuracy_score(y, model.predict(x)) > 0.98

    def test_string_labels_roundtrip(self):
        x = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array(["lo", "lo", "hi", "hi"])
        model = DecisionTreeClassifier(max_depth=2).fit(x, y)
        assert model.predict([[0.5]])[0] == "lo"
        assert model.predict([[2.5]])[0] == "hi"

    def test_single_class(self):
        model = DecisionTreeClassifier().fit(np.random.rand(10, 2), ["a"] * 10)
        assert model.predict([[0.5, 0.5]])[0] == "a"

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotTrainedError):
            DecisionTreeClassifier().predict([[0.0]])


class TestGradientBoosting:
    def test_fits_nonlinear_function(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(-2, 2, size=(300, 1))
        y = np.sin(3 * x[:, 0]) * 5
        model = GradientBoostingRegressor(n_estimators=80, seed=0).fit(x, y)
        assert r2_score(y, model.predict(x)) > 0.9

    def test_more_stages_reduce_training_error(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(-2, 2, size=(200, 2))
        y = x[:, 0] * x[:, 1]
        model = GradientBoostingRegressor(n_estimators=40, seed=0).fit(x, y)
        staged = [np.mean((y - p) ** 2) for p in model.staged_predict(x)]
        assert staged[-1] < staged[0]
        # Loss is monotone non-increasing on the training set.
        assert all(b <= a + 1e-9 for a, b in zip(staged, staged[1:]))

    def test_constant_target_converges_immediately(self):
        model = GradientBoostingRegressor(n_estimators=50, seed=0).fit(
            np.random.rand(20, 2), np.full(20, 3.0)
        )
        assert model.n_trees == 1  # residuals hit zero after the init
        assert np.allclose(model.predict(np.random.rand(4, 2)), 3.0)

    def test_subsample_trains_and_predicts(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(100, 2))
        y = x[:, 0]
        model = GradientBoostingRegressor(
            n_estimators=20, subsample=0.5, seed=1
        ).fit(x, y)
        assert np.all(np.isfinite(model.predict(x)))

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotTrainedError):
            GradientBoostingRegressor().predict([[0.0]])

    def test_invalid_learning_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            GradientBoostingRegressor(learning_rate=0.0)
        with pytest.raises(ConfigurationError):
            GradientBoostingRegressor(subsample=1.5)
