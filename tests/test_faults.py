"""Fault injection: schedules, failover, degraded answers, chaos fuzzing.

The robustness contract has four legs, each pinned here:

1. **Determinism** — the same schedule + seed + call sequence reproduces
   the same faults (clock windows, manual overrides, transient draws).
2. **Byte identity** — whenever every partition keeps at least one live
   replica, pure-crash failover scans exactly the bytes of the no-fault
   run (dead nodes refuse connections before any charge), and
   ``pick_replica`` never returns a crashed node.
3. **Sound degradation** — with every replica of a partition down,
   ``degrade`` mode returns a :class:`DegradedAnswer` whose coverage is
   exact and whose bounds contain the no-fault ground truth.
4. **No surprise failures** — randomized crash/recovery schedules against
   every engine raise nothing but :class:`PartitionLostError`
   (the ``chaos`` marker).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import ExactEngine, SegmentStatsCache
from repro.baselines.sketch import SketchAQPEngine
from repro.cluster import (
    LAYOUT_COLUMN,
    ClusterTopology,
    DistributedStore,
    columnar_consistent,
)
from repro.cluster.node import DataNode
from repro.cluster.storage import StoredTable
from repro.common import CostMeter
from repro.common.errors import (
    ConfigurationError,
    FaultError,
    NodeUnavailableError,
    PartitionLostError,
    StorageError,
    TransientReadError,
)
from repro.core import AgentConfig, SEAAgent
from repro.data import (
    InterestProfile,
    WorkloadGenerator,
    gaussian_mixture_table,
    uniform_table,
)
from repro.engine import CoordinatorEngine, MapReduceEngine
from repro.faults import (
    CrashWindow,
    DegradedAnswer,
    FailoverPolicy,
    FaultInjector,
    FaultSchedule,
    UnknownChunk,
    build_degraded_answer,
    degraded_bounds,
)
from repro.obs import StackObserver
from repro.queries import (
    AnalyticsQuery,
    Count,
    Max,
    Mean,
    Median,
    Min,
    RangeSelection,
    Std,
    Sum,
)


def build_world(n_rows=3000, n_nodes=4, replication=2, seed=5, parts=2):
    topo = ClusterTopology.single_datacenter(n_nodes)
    store = DistributedStore(topo, replication=replication)
    table = uniform_table(n_rows, dims=("x0", "x1"), seed=seed, name="data")
    store.put_table(table, partitions_per_node=parts)
    return store, table


def range_query(lo=10.0, hi=80.0, aggregate=None):
    return AnalyticsQuery(
        "data",
        RangeSelection(("x0", "x1"), (lo, lo), (hi, hi)),
        aggregate or Count(),
    )


def crash_partition(store, index):
    """A schedule taking down every replica of partition ``index``."""
    schedule = FaultSchedule()
    for node in store.table("data").partitions[index].all_nodes:
        schedule.crash(node)
    return schedule


# ---------------------------------------------------------------------------
# Schedules and the injector
# ---------------------------------------------------------------------------


class TestSchedule:
    def test_crash_window_covers_half_open(self):
        window = CrashWindow("n0", 1.0, 5.0)
        assert not window.covers(0.5)
        assert window.covers(1.0)
        assert window.covers(4.999)
        assert not window.covers(5.0)

    def test_crash_window_validation(self):
        with pytest.raises(ConfigurationError):
            CrashWindow("n0", -1.0, 5.0)
        with pytest.raises(ConfigurationError):
            CrashWindow("n0", 5.0, 5.0)

    def test_builders_chain_and_validate(self):
        schedule = FaultSchedule().crash("a", 1.0, 2.0).slow("b", 3.0).flaky("c", 0.5)
        assert schedule.down_at("a", 1.5) and not schedule.down_at("a", 2.0)
        assert schedule.slowdowns["b"] == 3.0
        assert schedule.error_rates["c"] == 0.5
        assert schedule.touches
        with pytest.raises(ConfigurationError):
            FaultSchedule().slow("b", 0.5)
        with pytest.raises(ConfigurationError):
            FaultSchedule().flaky("c", 1.0)

    def test_nodes_down_at_deduplicates(self):
        schedule = FaultSchedule().crash("a", 0.0, 2.0).crash("a", 1.0, 3.0).crash("b")
        assert schedule.nodes_down_at(1.5) == ["a", "b"]

    def test_crash_fraction(self):
        nodes = [f"n{i}" for i in range(8)]
        schedule = FaultSchedule.crash_fraction(nodes, 0.25)
        assert schedule.nodes_down_at(0.0) == ["n0", "n1"]
        assert FaultSchedule.crash_fraction(nodes, 0.0).touches is False


class TestInjector:
    def test_windows_follow_the_clock(self):
        injector = FaultInjector(FaultSchedule().crash("a", 2.0, 4.0))
        assert not injector.is_down("a")
        injector.advance(2.0)
        assert injector.is_down("a")
        injector.set_time(4.0)
        assert not injector.is_down("a")
        with pytest.raises(ConfigurationError):
            injector.set_time(1.0)

    def test_manual_overrides_beat_schedule(self):
        injector = FaultInjector(FaultSchedule().crash("a"))
        assert injector.is_down("a")
        injector.recover("a")  # cancels the open-ended window
        assert not injector.is_down("a")
        injector.crash("b")
        assert injector.is_down("b") and injector.active
        injector.recover("b")
        assert not injector.is_down("b")

    def test_check_available_raises_and_counts(self):
        injector = FaultInjector(FaultSchedule().crash("a"))
        with pytest.raises(NodeUnavailableError):
            injector.check_available("a", "t/p0")
        assert injector.n_unavailable == 1
        injector.check_available("b")  # healthy: no-op

    def test_transient_draws_are_seeded(self):
        schedule = FaultSchedule().flaky("a", 0.5)

        def draw_failures(seed):
            injector = FaultInjector(schedule, seed=seed)
            out = []
            for _ in range(64):
                try:
                    injector.maybe_fail_read("a", "t/p0")
                    out.append(False)
                except TransientReadError:
                    out.append(True)
            return out

        assert draw_failures(7) == draw_failures(7)
        assert any(draw_failures(7)) and not all(draw_failures(7))

    def test_advance_fires_boundary_events(self):
        obs = StackObserver()
        injector = FaultInjector(
            FaultSchedule().crash("a", 1.0, 2.0), observer=obs
        )
        injector.advance(3.0)
        kinds = [e.type for e in obs.events]
        assert "node_crash" in kinds and "node_recover" in kinds

    def test_fault_errors_are_typed(self):
        assert issubclass(NodeUnavailableError, FaultError)
        assert issubclass(TransientReadError, FaultError)
        assert issubclass(PartitionLostError, FaultError)
        error = PartitionLostError("t/p0", tried=("a", "b"))
        assert error.tried == ("a", "b")


# ---------------------------------------------------------------------------
# Failover policy
# ---------------------------------------------------------------------------


class TestFailoverPolicy:
    def test_backoff_is_capped_exponential(self):
        policy = FailoverPolicy(
            backoff_base_sec=0.1, backoff_factor=2.0, backoff_cap_sec=0.3
        )
        assert policy.backoff(0) == pytest.approx(0.1)
        assert policy.backoff(1) == pytest.approx(0.2)
        assert policy.backoff(2) == pytest.approx(0.3)  # capped
        assert policy.backoff(10) == pytest.approx(0.3)
        with pytest.raises(ConfigurationError):
            FailoverPolicy(max_attempts=0)

    def test_scan_fails_over_to_replica(self):
        store, _ = build_world()
        partition = store.table("data").partitions[0]
        injector = FaultInjector(FaultSchedule().crash(partition.primary_node))
        store.attach_faults(injector)
        meter = CostMeter()
        data, serving, extra = FailoverPolicy().read_partition(
            store, partition, meter, requester=store.topology.pick_coordinator()
        )
        assert serving in partition.replica_nodes
        assert data.n_rows == partition.n_rows
        assert extra > 0.0  # the dead primary cost a probe timeout
        assert meter.freeze().bytes_scanned == partition.n_bytes

    def test_retries_charge_bytes_then_succeed(self):
        store, _ = build_world()
        partition = store.table("data").partitions[0]
        # Every replica flaky at rate .99 with seeded draws: some attempts
        # fail, charging their bytes, before one succeeds or all exhaust.
        schedule = FaultSchedule()
        for node in partition.all_nodes:
            schedule.flaky(node, 0.6)
        store.attach_faults(FaultInjector(schedule, seed=11))
        meter = CostMeter()
        try:
            data, _, _ = FailoverPolicy(max_attempts=4).read_partition(
                store, partition, meter
            )
            assert data.n_rows == partition.n_rows
        except PartitionLostError:
            pass  # legal with very unlucky draws
        # At least one attempt was charged; failures add whole extra scans.
        assert meter.freeze().bytes_scanned >= partition.n_bytes

    def test_all_replicas_down_raises_lost(self):
        store, _ = build_world()
        store.attach_faults(FaultInjector(crash_partition(store, 0)))
        partition = store.table("data").partitions[0]
        with pytest.raises(PartitionLostError) as excinfo:
            FailoverPolicy().read_partition(store, partition, CostMeter())
        assert excinfo.value.partition_id == partition.partition_id
        assert tuple(excinfo.value.tried)  # replicas it probed

    def test_fault_metrics_surface(self):
        store, _ = build_world()
        partition = store.table("data").partitions[0]
        obs = StackObserver()
        injector = FaultInjector(
            FaultSchedule().crash(partition.primary_node), observer=obs
        )
        store.attach_faults(injector)
        FailoverPolicy().read_partition(
            store, partition, CostMeter(), requester=store.topology.pick_coordinator(), obs=obs
        )
        metrics = obs.metrics.as_dict()
        assert any("fault_probes_total" in key for key in metrics)
        assert any("fault_failovers_total" in key for key in metrics)
        assert any(e.type == "failover" for e in obs.events)


# ---------------------------------------------------------------------------
# Storage-layer satellites
# ---------------------------------------------------------------------------


class TestStorageGuards:
    def test_empty_stored_table_raises_storage_error(self):
        empty = StoredTable(name="ghost", partitions=[])
        with pytest.raises(StorageError):
            empty.column_names
        with pytest.raises(StorageError):
            empty.nodes
        with pytest.raises(StorageError):
            empty.full_table()

    def test_drop_partition_rejects_negative_bytes(self):
        node = DataNode("n0")
        node.add_partition("t/p0", 100)
        with pytest.raises(ValueError):
            node.drop_partition("t/p0", 200)
        # The failed drop left state untouched.
        assert node.stored_bytes == 100 and "t/p0" in node.partition_ids
        node.drop_partition("t/p0", 100)
        assert node.stored_bytes == 0

    def test_pick_replica_skips_crashed_nodes(self):
        store, _ = build_world()
        partition = store.table("data").partitions[0]
        store.attach_faults(
            FaultInjector(FaultSchedule().crash(partition.primary_node))
        )
        for _ in range(8):
            assert store.pick_replica(partition) != partition.primary_node

    def test_pick_replica_all_down_raises_lost(self):
        store, _ = build_world()
        store.attach_faults(FaultInjector(crash_partition(store, 0)))
        with pytest.raises(PartitionLostError):
            store.pick_replica(store.table("data").partitions[0])


# ---------------------------------------------------------------------------
# Byte-identity properties (hypothesis)
# ---------------------------------------------------------------------------


@st.composite
def crash_sets(draw):
    """A subset of nodes to crash, never covering all replicas anywhere."""
    n_nodes = draw(st.integers(min_value=3, max_value=6))
    crashed = draw(
        st.sets(st.integers(min_value=0, max_value=n_nodes - 1), max_size=n_nodes - 1)
    )
    return n_nodes, crashed


class TestByteIdentity:
    @settings(max_examples=20, deadline=None)
    @given(crash_sets(), st.integers(min_value=0, max_value=10_000))
    def test_failover_scan_bytes_match_no_fault(self, spec, seed):
        """Pure crashes never change bytes_scanned while replicas survive."""
        n_nodes, crashed_indices = spec
        store, _ = build_world(n_rows=600, n_nodes=n_nodes, replication=2, seed=seed % 97)
        crashed = {store.topology.node_ids[i] for i in crashed_indices}
        stored = store.table("data")
        # Keep only crash sets that leave every partition one live replica.
        for partition in stored.partitions:
            if all(n in crashed for n in partition.all_nodes):
                crashed.discard(partition.all_nodes[0])
        query = range_query(20.0, 70.0)
        engine = ExactEngine(store)
        baseline, base_report = engine.execute(query)
        schedule = FaultSchedule()
        for node in crashed:
            schedule.crash(node)
        store.attach_faults(FaultInjector(schedule, seed=seed))
        answer, report = engine.execute(query)
        store.clear_faults()
        assert answer == baseline
        assert report.bytes_scanned == base_report.bytes_scanned

    @settings(max_examples=20, deadline=None)
    @given(crash_sets())
    def test_pick_replica_never_returns_crashed(self, spec):
        n_nodes, crashed_indices = spec
        store, _ = build_world(n_rows=400, n_nodes=n_nodes, replication=2)
        crashed = {store.topology.node_ids[i] for i in crashed_indices}
        stored = store.table("data")
        for partition in stored.partitions:
            if all(n in crashed for n in partition.all_nodes):
                crashed.discard(partition.all_nodes[0])
        schedule = FaultSchedule()
        for node in crashed:
            schedule.crash(node)
        store.attach_faults(FaultInjector(schedule))
        for partition in stored.partitions:
            assert store.pick_replica(partition) not in crashed


# ---------------------------------------------------------------------------
# Degraded answers
# ---------------------------------------------------------------------------


class TestDegradedBounds:
    def chunk(self, n, lo, hi):
        return UnknownChunk(n_rows=n, stats={"v": (lo, hi)})

    def test_count_bounds(self):
        lower, upper, bounded = degraded_bounds(
            Count(), None, 10.0, [self.chunk(5, 0, 1), self.chunk(3, 0, 1)]
        )
        assert (lower, upper, bounded) == (10.0, 18.0, True)

    def test_sum_bounds_clip_sign(self):
        lower, upper, bounded = degraded_bounds(
            Sum("v"), None, 100.0, [self.chunk(4, 2.0, 5.0)]
        )
        # All-positive range: the chunk can only add, not subtract.
        assert (lower, upper, bounded) == (100.0, 120.0, True)
        lower, upper, _ = degraded_bounds(
            Sum("v"), None, 100.0, [self.chunk(4, -3.0, 5.0)]
        )
        assert (lower, upper) == (100.0 - 12.0, 100.0 + 20.0)

    def test_mean_min_max_bounds(self):
        chunks = [self.chunk(4, 2.0, 8.0)]
        assert degraded_bounds(Mean("v"), None, 5.0, chunks) == (2.0, 8.0, True)
        assert degraded_bounds(Min("v"), None, 5.0, chunks) == (2.0, 5.0, True)
        assert degraded_bounds(Max("v"), None, 5.0, chunks) == (5.0, 8.0, True)

    def test_holistic_is_unbounded(self):
        lower, upper, bounded = degraded_bounds(
            Std("v"), None, 1.0, [self.chunk(4, 0.0, 1.0)]
        )
        assert not bounded and lower == -math.inf and upper == math.inf

    def test_selection_box_clips_chunk_ranges(self):
        selection = RangeSelection(("v",), (0.0,), (3.0,))
        lower, upper, bounded = degraded_bounds(
            Sum("v"), selection, 0.0, [self.chunk(2, 1.0, 100.0)]
        )
        assert bounded and upper == pytest.approx(6.0)  # clipped to 3.0

    def test_no_chunks_collapses_to_value(self):
        assert degraded_bounds(Count(), None, 7.0, []) == (7.0, 7.0, True)

    def test_build_degraded_answer_coverage(self):
        answer = build_degraded_answer(
            Count(), None, 5.0, [self.chunk(25, 0, 1)], [3], [3], total_rows=100
        )
        assert answer.coverage == pytest.approx(0.75)
        assert answer.degraded and answer.contains(20.0)
        assert not answer.contains(31.0)
        assert answer.margin == pytest.approx(12.5)


class TestDegradedExecution:
    @pytest.mark.parametrize(
        "aggregate",
        [Count(), Sum("x1"), Mean("x1"), Min("x1"), Max("x1"), Std("x1"), Median("x1")],
    )
    def test_degrade_bounds_contain_ground_truth(self, aggregate):
        store, _ = build_world(replication=1)
        engine = ExactEngine(store)
        query = range_query(aggregate=aggregate)
        truth = engine.ground_truth(query)
        store.attach_faults(FaultInjector(crash_partition(store, 1)))
        degraded_engine = ExactEngine(store, failure_mode="degrade")
        answer, _ = degraded_engine.execute(query)
        store.clear_faults()
        assert isinstance(answer, DegradedAnswer)
        assert 0.0 <= answer.coverage < 1.0
        if answer.bounded:
            assert answer.contains(truth)
        else:
            assert answer.lower == -math.inf and answer.upper == math.inf

    def test_coverage_is_exact_row_fraction(self):
        store, _ = build_world(replication=1)
        stored = store.table("data")
        injector = FaultInjector(crash_partition(store, 0))
        store.attach_faults(injector)
        engine = ExactEngine(store, failure_mode="degrade", pruning=False)
        answer, _ = engine.execute(range_query())
        store.clear_faults()
        # The crashed node hosts more partitions than just #0; every one it
        # takes down counts toward the unknown rows.
        lost_rows = sum(
            p.n_rows
            for p in stored.partitions
            if all(injector.is_down(n) for n in p.all_nodes)
        )
        assert answer.unknown_rows == lost_rows
        assert answer.coverage == pytest.approx(1.0 - lost_rows / stored.n_rows)

    def test_fail_mode_raises(self):
        store, _ = build_world(replication=1)
        store.attach_faults(FaultInjector(crash_partition(store, 0)))
        with pytest.raises(PartitionLostError):
            ExactEngine(store).execute(range_query())

    def test_disjoint_lost_partition_recovers_exactly(self):
        # Sort on x0 so partitions have tight zone maps; lose one disjoint
        # from the query box: the degrade path proves it irrelevant.
        topo = ClusterTopology.single_datacenter(4)
        store = DistributedStore(topo)
        table = uniform_table(2000, dims=("x0", "x1"), seed=3, name="data")
        order = np.argsort(table.column("x0"), kind="stable")
        store.put_table(table.take(order), partitions_per_node=2)
        engine = ExactEngine(store, failure_mode="degrade", pruning=False)
        # Partition 7 holds the largest x0 values; query far below them.
        query = AnalyticsQuery(
            "data", RangeSelection(("x0",), (0.0,), (30.0,)), Count()
        )
        truth = engine.ground_truth(query)
        store.attach_faults(FaultInjector(crash_partition(store, 7)))
        answer, _ = engine.execute(query)
        store.clear_faults()
        assert isinstance(answer, DegradedAnswer)
        assert answer.coverage == 1.0  # recovered exactly: nothing unknown
        assert answer.value == truth
        assert (answer.lower, answer.upper) == (truth, truth)

    def test_degrade_execute_many_matches_sequential(self):
        store, _ = build_world(replication=1)
        engine = ExactEngine(store, failure_mode="degrade")
        queries = [range_query(10.0, 60.0), range_query(30.0, 90.0, Sum("x1"))]
        store.attach_faults(FaultInjector(crash_partition(store, 2)))
        batch = engine.execute_many(queries)
        sequential = [engine.execute(q) for q in queries]
        store.clear_faults()
        for (batch_answer, _), (seq_answer, _) in zip(batch, sequential):
            if isinstance(batch_answer, DegradedAnswer):
                assert batch_answer.value == seq_answer.value
                assert batch_answer.coverage == seq_answer.coverage
            else:
                assert batch_answer == seq_answer


# ---------------------------------------------------------------------------
# Coordinator point reads under faults
# ---------------------------------------------------------------------------


class TestCoordinatorFaults:
    def plan_for(self, store, n=40):
        stored = store.table("data")
        return {
            i: list(range(min(n, partition.n_rows)))
            for i, partition in enumerate(stored.partitions)
        }

    def test_fetch_rows_fails_over(self):
        store, _ = build_world()
        coordinator = CoordinatorEngine(store)
        stored = store.table("data")
        plan = self.plan_for(store)
        baseline, _ = coordinator.fetch_rows(stored, plan)
        schedule = FaultSchedule().crash(stored.partitions[0].primary_node)
        store.attach_faults(FaultInjector(schedule))
        rows, _ = coordinator.fetch_rows(stored, plan)
        store.clear_faults()
        assert rows.n_rows == baseline.n_rows

    def test_fetch_rows_on_lost_skip(self):
        store, _ = build_world(replication=1)
        coordinator = CoordinatorEngine(store)
        stored = store.table("data")
        plan = self.plan_for(store)
        injector = FaultInjector(crash_partition(store, 0))
        store.attach_faults(injector)
        with pytest.raises(PartitionLostError):
            coordinator.fetch_rows(stored, plan)
        lost = []
        rows, _ = coordinator.fetch_rows(stored, plan, on_lost="skip", lost=lost)
        store.clear_faults()
        down = {
            i
            for i, p in enumerate(stored.partitions)
            if all(injector.is_down(n) for n in p.all_nodes)
        }
        assert 0 in down
        assert lost == [(i, len(plan[i])) for i in sorted(down)]
        expected = sum(len(v) for k, v in plan.items() if k not in down)
        assert rows.n_rows == expected

    def test_fetch_rows_many_under_faults_matches_sequential(self):
        store, _ = build_world()
        coordinator = CoordinatorEngine(store)
        stored = store.table("data")
        plans = [self.plan_for(store, 10), self.plan_for(store, 25)]
        schedule = FaultSchedule().crash(stored.partitions[0].primary_node)
        store.attach_faults(FaultInjector(schedule))
        batch = coordinator.fetch_rows_many(stored, plans)
        store.clear_faults()
        assert [t.n_rows for t, _ in batch] == [
            sum(len(v) for v in plan.values()) for plan in plans
        ]


# ---------------------------------------------------------------------------
# Engines and the agent under loss
# ---------------------------------------------------------------------------


class TestServingUnderLoss:
    def trained_agent(self, store, table, budget=40):
        agent = SEAAgent(
            ExactEngine(store),
            AgentConfig(training_budget=budget, error_threshold=0.5),
        )
        profile = InterestProfile.from_table(table, ("x0", "x1"), 3, seed=5)
        workload = WorkloadGenerator(
            "data", ("x0", "x1"), profile, aggregate=Count(), seed=6
        )
        for query in workload.batch(budget + 20):
            agent.submit(query)
        return agent, workload

    def test_agent_serves_through_total_loss(self):
        store, table = build_world()
        agent, workload = self.trained_agent(store, table)
        schedule = FaultSchedule()
        for node in store.topology.node_ids:
            schedule.crash(node)
        store.attach_faults(FaultInjector(schedule))
        served = [agent.submit(q) for q in workload.batch(30)]
        served += agent.submit_batch(workload.batch(20))
        store.clear_faults()
        assert all(record.answer is not None for record in served)
        # Nothing could be scanned: every answer avoided base data.
        assert all(
            record.cost is None or record.cost.bytes_scanned == 0
            for record in served
        )

    def test_degraded_answers_are_not_learned(self):
        store, table = build_world(replication=1)
        agent = SEAAgent(
            ExactEngine(store, failure_mode="degrade"),
            AgentConfig(training_budget=10),
        )
        profile = InterestProfile.from_table(table, ("x0", "x1"), 3, seed=5)
        workload = WorkloadGenerator(
            "data", ("x0", "x1"), profile, aggregate=Count(), seed=6
        )
        store.attach_faults(FaultInjector(crash_partition(store, 0)))
        observed_before = sum(
            p.n_observed for p in agent._predictors.values()
        )
        records = [agent.submit(q) for q in workload.batch(6)]
        store.clear_faults()
        degraded = [
            r for r in records if isinstance(r.answer, DegradedAnswer)
        ]
        exactly_recovered = [
            r
            for r in records
            if isinstance(r.answer, DegradedAnswer) and r.answer.coverage == 1.0
        ]
        observed_after = sum(
            p.n_observed for p in agent._predictors.values()
        )
        # Only full-coverage answers (exact or exactly recovered) trained.
        assert observed_after - observed_before == len(records) - (
            len(degraded) - len(exactly_recovered)
        )

    def test_canopy_degrades_with_bounds(self):
        store, table = build_world(replication=1)
        cache = SegmentStatsCache(
            store, "data", ("x0", "x1"), cells_per_dim=4, failure_mode="degrade"
        )
        query = range_query(5.0, 95.0)
        exact, _ = cache.execute(query)  # builds directory fault-free
        truth = ExactEngine(store).ground_truth(query)
        assert exact == truth
        store.attach_faults(FaultInjector(crash_partition(store, 0)))
        answer, _ = cache.execute(range_query(4.0, 96.0))
        store.clear_faults()
        truth2 = ExactEngine(store).ground_truth(range_query(4.0, 96.0))
        assert isinstance(answer, DegradedAnswer)
        assert answer.contains(truth2)
        # The partial cell reads never poisoned the cache: healthy again,
        # the same query is exact.
        healthy, _ = cache.execute(range_query(4.0, 96.0))
        value = healthy.value if isinstance(healthy, DegradedAnswer) else healthy
        assert value == truth2

    def test_sketch_survives_build_crash_and_serves_through_loss(self):
        store, _ = build_world()
        schedule = FaultSchedule().crash(store.topology.node_ids[0])
        store.attach_faults(FaultInjector(schedule))
        sketch = SketchAQPEngine(store, "data", "x0", levels=8)
        sketch.build()
        store.clear_faults()
        # Total loss afterwards: the synopsis still answers.
        alldown = FaultSchedule()
        for node in store.topology.node_ids:
            alldown.crash(node)
        store.attach_faults(FaultInjector(alldown))
        query = AnalyticsQuery(
            "data", RangeSelection(("x0",), (10.0,), (80.0,)), Count()
        )
        estimate, report = sketch.execute(query)
        store.clear_faults()
        assert estimate >= 0.0 and report.bytes_scanned == 0

    def test_mapreduce_skip_mode_reports_lost_partitions(self):
        store, _ = build_world(replication=1)
        engine = MapReduceEngine(store)
        injector = FaultInjector(crash_partition(store, 3))
        store.attach_faults(injector)
        lost = []
        results, _ = engine.run(
            "data",
            lambda t: [(0, float(t.n_rows))],
            lambda key, values: sum(values),
            on_lost="skip",
            lost=lost,
        )
        store.clear_faults()
        stored = store.table("data")
        down = {
            i
            for i, p in enumerate(stored.partitions)
            if all(injector.is_down(n) for n in p.all_nodes)
        }
        assert 3 in down and sorted(lost) == sorted(down)
        expected = sum(
            p.n_rows for i, p in enumerate(stored.partitions) if i not in down
        )
        assert results[0] == expected


# ---------------------------------------------------------------------------
# Chaos fuzzing
# ---------------------------------------------------------------------------


def random_schedule(rng, node_ids):
    """A randomized mixed schedule: crashes, recoveries, stragglers, flakes."""
    schedule = FaultSchedule()
    for node in node_ids:
        roll = rng.random()
        if roll < 0.35:
            start = float(rng.uniform(0.0, 2.0))
            if rng.random() < 0.5:
                schedule.crash(node, at=start)
            else:
                schedule.crash(node, at=start, until=start + float(rng.uniform(0.5, 3.0)))
        elif roll < 0.5:
            schedule.slow(node, float(rng.uniform(1.5, 4.0)))
        elif roll < 0.7:
            schedule.flaky(node, float(rng.uniform(0.05, 0.4)))
    return schedule


@pytest.mark.chaos
class TestChaos:
    """Randomized crash/recovery schedules against every engine.

    The only failure any engine may surface is ``PartitionLostError``;
    anything else is an unhandled fault leaking through the stack.
    """

    N_ROUNDS = 12

    def test_exact_engine_chaos(self):
        for round_index in range(self.N_ROUNDS):
            rng = np.random.default_rng(round_index)
            store, _ = build_world(
                n_rows=800,
                n_nodes=int(rng.integers(3, 6)),
                replication=int(rng.integers(1, 3)),
                seed=round_index,
            )
            injector = FaultInjector(
                random_schedule(rng, store.topology.node_ids), seed=round_index
            )
            store.attach_faults(injector)
            engine = ExactEngine(store)
            degraded_engine = ExactEngine(store, failure_mode="degrade")
            truth_engine = ExactEngine(store)
            for step in range(6):
                injector.advance(float(rng.uniform(0.0, 1.0)))
                lo = float(rng.uniform(0.0, 50.0))
                hi = lo + float(rng.uniform(5.0, 50.0))
                aggregate = [Count(), Sum("x1"), Mean("x1")][step % 3]
                query = range_query(lo, hi, aggregate)
                try:
                    engine.execute(query)
                except PartitionLostError:
                    pass
                answer, _ = degraded_engine.execute(query)
                if isinstance(answer, DegradedAnswer) and answer.bounded:
                    store.clear_faults()
                    truth = truth_engine.ground_truth(query)
                    store.attach_faults(injector)
                    assert answer.contains(truth)

    def test_coordinator_chaos(self):
        for round_index in range(self.N_ROUNDS):
            rng = np.random.default_rng(1000 + round_index)
            store, _ = build_world(
                n_rows=600, replication=int(rng.integers(1, 3)), seed=round_index
            )
            injector = FaultInjector(
                random_schedule(rng, store.topology.node_ids),
                seed=round_index,
            )
            store.attach_faults(injector)
            coordinator = CoordinatorEngine(store)
            stored = store.table("data")
            for _ in range(4):
                injector.advance(float(rng.uniform(0.0, 1.0)))
                plan = {
                    int(i): sorted(
                        set(
                            int(r)
                            for r in rng.integers(
                                0, stored.partitions[int(i)].n_rows, size=8
                            )
                        )
                    )
                    for i in rng.integers(0, len(stored.partitions), size=3)
                }
                try:
                    coordinator.fetch_rows(stored, plan)
                except PartitionLostError:
                    lost = []
                    coordinator.fetch_rows(
                        stored, plan, on_lost="skip", lost=lost
                    )
                    assert lost  # skip mode must explain the miss

    def test_agent_chaos_keeps_serving(self):
        for round_index in range(4):
            rng = np.random.default_rng(2000 + round_index)
            store, table = build_world(n_rows=1500, seed=round_index)
            agent = SEAAgent(
                ExactEngine(store),
                AgentConfig(training_budget=30, error_threshold=0.5),
            )
            profile = InterestProfile.from_table(
                table, ("x0", "x1"), 3, seed=round_index
            )
            workload = WorkloadGenerator(
                "data", ("x0", "x1"), profile, aggregate=Count(), seed=round_index
            )
            for query in workload.batch(40):
                agent.submit(query)
            injector = FaultInjector(
                random_schedule(rng, store.topology.node_ids),
                seed=round_index,
            )
            store.attach_faults(injector)
            for query in workload.batch(25):
                injector.advance(float(rng.uniform(0.0, 0.5)))
                try:
                    record = agent.submit(query)
                    assert record.answer is not None
                except PartitionLostError:
                    pass  # legal only when the fallback had no prediction
            store.clear_faults()

    def test_columnar_chaos_consistent(self):
        """Columnar layout under chaos: only ``PartitionLostError`` may
        surface, and after every round of faulted queries plus
        append/delete maintenance the stored encodings still decode to
        exactly the row data (the ``columnar_consistent`` invariant)."""
        for round_index in range(self.N_ROUNDS):
            rng = np.random.default_rng(3000 + round_index)
            topo = ClusterTopology.single_datacenter(int(rng.integers(3, 6)))
            store = DistributedStore(
                topo,
                replication=int(rng.integers(1, 3)),
                layout=LAYOUT_COLUMN,
            )
            table = uniform_table(
                800, dims=("x0", "x1"), seed=round_index, name="data"
            )
            store.put_table(table, partitions_per_node=2)
            injector = FaultInjector(
                random_schedule(rng, store.topology.node_ids),
                seed=round_index,
            )
            store.attach_faults(injector)
            engine = ExactEngine(store)
            for step in range(6):
                injector.advance(float(rng.uniform(0.0, 1.0)))
                lo = float(rng.uniform(0.0, 50.0))
                hi = lo + float(rng.uniform(5.0, 50.0))
                aggregate = [Count(), Sum("x1"), Mean("x1")][step % 3]
                try:
                    engine.execute(range_query(lo, hi, aggregate))
                except PartitionLostError:
                    pass
                if step == 3:  # maintenance runs on the healthy store
                    store.clear_faults()
                    store.append_rows(
                        "data",
                        uniform_table(
                            60, dims=("x0", "x1"), seed=step, name="data"
                        ),
                        seed=step,
                    )
                    store.delete_rows(
                        "data", lambda t: t.column("x0") < 5.0
                    )
                    store.attach_faults(injector)
            store.clear_faults()
            stored = store.table("data")
            assert columnar_consistent(
                [p.columnar for p in stored.partitions],
                [p.data for p in stored.partitions],
            )
            for synopsis, partition in zip(
                store.synopses("data"), stored.partitions
            ):
                assert synopsis.encodings == partition.columnar.encodings
                assert synopsis.n_rows == partition.n_rows
