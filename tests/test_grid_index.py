"""Unit tests for repro.bigdataless.index (DistributedGridIndex)."""

import numpy as np
import pytest

from repro.bigdataless import DistributedGridIndex
from repro.cluster import ClusterTopology, DistributedStore
from repro.common.errors import ConfigurationError
from repro.data import gaussian_mixture_table, uniform_table
from repro.queries import RadiusSelection, RangeSelection


@pytest.fixture(scope="module")
def indexed_world():
    topo = ClusterTopology.single_datacenter(4)
    store = DistributedStore(topo)
    table = uniform_table(10000, dims=("x0", "x1"), seed=0, name="pts")
    store.put_table(table, partitions_per_node=2)
    index = DistributedGridIndex(store, "pts", ("x0", "x1"), cells_per_dim=16)
    index.build()
    return store, table, index


class TestBuild:
    def test_build_scans_table_once(self, indexed_world):
        store, table, index = indexed_world
        assert index.build_report.bytes_scanned == store.table("pts").n_bytes

    def test_unbuilt_index_rejects_lookups(self):
        topo = ClusterTopology.single_datacenter(2)
        store = DistributedStore(topo)
        store.put_table(uniform_table(100, seed=1, name="pts"))
        index = DistributedGridIndex(store, "pts", ("x0", "x1"))
        with pytest.raises(ConfigurationError):
            index.cells_for_box([0, 0], [1, 1])

    def test_cell_counts_total_to_rows(self, indexed_world):
        _, table, index = indexed_world
        hist = index.density_histogram()
        assert sum(hist.values()) == table.n_rows

    def test_nodes_carry_index_bytes(self, indexed_world):
        store, *_ = indexed_world
        assert any(n.index_bytes > 0 for n in store.topology.nodes)


class TestLookups:
    def test_box_cells_cover_all_matching_rows(self, indexed_world):
        _, table, index = indexed_world
        selection = RangeSelection(("x0", "x1"), [20.0, 30.0], [45.0, 55.0])
        keys = index.cells_for_selection(selection)
        rows = index.rows_for_cells(keys)
        fetched = sum(len(v) for v in rows.values())
        truth = int(selection.mask(table).sum())
        assert fetched >= truth  # superset (cells overlap the boundary)
        assert fetched <= table.n_rows

    def test_radius_cells_prune_corners(self, indexed_world):
        _, table, index = indexed_world
        radius = RadiusSelection(("x0", "x1"), [50.0, 50.0], 10.0)
        box = RangeSelection(("x0", "x1"), [40.0, 40.0], [60.0, 60.0])
        radius_cells = index.cells_for_selection(radius)
        box_cells = index.cells_for_selection(box)
        assert len(radius_cells) <= len(box_cells)

    def test_count_in_cells_upper_bounds_selection(self, indexed_world):
        _, table, index = indexed_world
        selection = RangeSelection(("x0", "x1"), [10.0, 10.0], [30.0, 30.0])
        keys = index.cells_for_selection(selection)
        assert index.count_in_cells(keys) >= selection.mask(table).sum()

    def test_selective_query_touches_few_partitions(self, indexed_world):
        store, _, index = indexed_world
        selection = RangeSelection(("x0", "x1"), [1.0, 1.0], [3.0, 3.0])
        rows = index.rows_for_cells(index.cells_for_selection(selection))
        touched_rows = sum(len(v) for v in rows.values())
        assert touched_rows < store.table("pts").n_rows / 10


class TestKNNRadiusEstimate:
    def test_estimate_covers_k_neighbours(self, indexed_world):
        _, table, index = indexed_world
        point = np.array([50.0, 50.0])
        k = 20
        radius = index.estimate_knn_radius(point, k)
        pts = table.matrix(("x0", "x1"))
        dist = np.linalg.norm(pts - point, axis=1)
        # The estimated radius should cover at least k points.
        assert (dist <= radius).sum() >= k

    def test_estimate_grows_with_k(self, indexed_world):
        _, _, index = indexed_world
        point = np.array([50.0, 50.0])
        assert index.estimate_knn_radius(point, 500) >= index.estimate_knn_radius(
            point, 5
        )

    def test_sparse_region_returns_large_radius(self):
        topo = ClusterTopology.single_datacenter(2)
        store = DistributedStore(topo)
        table = gaussian_mixture_table(
            2000, dims=("x0", "x1"), n_components=1, seed=2, name="pts"
        )
        store.put_table(table)
        index = DistributedGridIndex(store, "pts", ("x0", "x1"), cells_per_dim=16)
        index.build()
        dense = table.matrix(("x0", "x1")).mean(axis=0)
        sparse = np.array([0.5, 0.5])
        assert index.estimate_knn_radius(sparse, 10) > index.estimate_knn_radius(
            dense, 10
        )


class TestFootprint:
    def test_coordinator_state_much_smaller_than_data(self, indexed_world):
        store, _, index = indexed_world
        assert index.coordinator_state_bytes() < store.table("pts").n_bytes / 10

    def test_total_state_includes_row_directory(self, indexed_world):
        _, table, index = indexed_world
        assert index.total_state_bytes() > index.coordinator_state_bytes()
