"""Unit + property tests for repro.data.tabular.Table."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError, QueryError
from repro.data import Table


def sample_table(n=10):
    return Table(
        {"a": np.arange(n, dtype=float), "b": np.arange(n, dtype=float) * 2},
        name="t",
    )


class TestConstruction:
    def test_basic_properties(self):
        t = sample_table(10)
        assert t.n_rows == 10
        assert t.n_columns == 2
        assert t.column_names == ["a", "b"]
        assert t.n_bytes == 10 * 2 * 8
        assert t.row_bytes == 16
        assert len(t) == 10

    def test_unequal_columns_rejected(self):
        with pytest.raises(ConfigurationError):
            Table({"a": np.zeros(3), "b": np.zeros(4)})

    def test_empty_schema_rejected(self):
        with pytest.raises(ConfigurationError):
            Table({})

    def test_2d_column_rejected(self):
        with pytest.raises(ConfigurationError):
            Table({"a": np.zeros((3, 2))})

    def test_missing_column_raises_query_error(self):
        t = sample_table()
        with pytest.raises(QueryError, match="no column"):
            t.column("zzz")

    def test_contains_and_getitem(self):
        t = sample_table()
        assert "a" in t and "zzz" not in t
        assert np.array_equal(t["a"], t.column("a"))


class TestOperations:
    def test_select_by_mask(self):
        t = sample_table(10)
        out = t.select(t["a"] >= 5)
        assert out.n_rows == 5
        assert out["a"].min() == 5

    def test_select_wrong_mask_length_rejected(self):
        with pytest.raises(ConfigurationError):
            sample_table(10).select(np.ones(5, dtype=bool))

    def test_take_preserves_order(self):
        t = sample_table(10)
        out = t.take([3, 1, 4])
        assert out["a"].tolist() == [3.0, 1.0, 4.0]

    def test_project(self):
        out = sample_table().project(["b"])
        assert out.column_names == ["b"]

    def test_matrix_column_order(self):
        t = sample_table(3)
        m = t.matrix(["b", "a"])
        assert m[:, 0].tolist() == [0.0, 2.0, 4.0]

    def test_with_column_adds_and_replaces(self):
        t = sample_table(3)
        t2 = t.with_column("c", [1.0, 2.0, 3.0])
        assert t2.column_names == ["a", "b", "c"]
        t3 = t2.with_column("a", [9.0, 9.0, 9.0])
        assert t3["a"].tolist() == [9.0] * 3
        assert t["a"].tolist() == [0.0, 1.0, 2.0]  # original untouched

    def test_with_column_wrong_length_rejected(self):
        with pytest.raises(ConfigurationError):
            sample_table(3).with_column("c", [1.0])

    def test_concat_schema_mismatch_rejected(self):
        a = Table({"x": np.zeros(2)})
        b = Table({"y": np.zeros(2)})
        with pytest.raises(ConfigurationError):
            Table.concat([a, b])

    def test_slice_rows(self):
        out = sample_table(10).slice_rows(2, 5)
        assert out["a"].tolist() == [2.0, 3.0, 4.0]

    @given(
        st.integers(min_value=1, max_value=100),
        st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=50, deadline=None)
    def test_split_concat_roundtrip_property(self, n_rows, n_parts):
        t = sample_table(n_rows)
        parts = t.split(n_parts)
        assert len(parts) == n_parts
        assert sum(p.n_rows for p in parts) == n_rows
        # Sizes differ by at most one.
        sizes = [p.n_rows for p in parts]
        assert max(sizes) - min(sizes) <= 1
        merged = Table.concat(parts)
        assert np.array_equal(merged["a"], t["a"])
        assert np.array_equal(merged["b"], t["b"])


class TestCsvIO:
    def test_roundtrip(self, tmp_path):
        t = sample_table(25)
        path = str(tmp_path / "t.csv")
        t.to_csv(path)
        back = Table.from_csv(path, name="t")
        assert back.column_names == t.column_names
        assert np.allclose(back["a"], t["a"])
        assert np.allclose(back["b"], t["b"])

    def test_from_csv_preserves_value_bytes(self, tmp_path):
        t = sample_table(5)
        path = str(tmp_path / "t.csv")
        t.to_csv(path)
        wide = Table.from_csv(path, value_bytes=128)
        assert wide.row_bytes == 2 * 128

    def test_from_csv_default_name_is_filename(self, tmp_path):
        t = sample_table(3)
        path = str(tmp_path / "mydata.csv")
        t.to_csv(path)
        assert Table.from_csv(path).name == "mydata.csv"

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ConfigurationError):
            Table.from_csv(str(path))

    def test_header_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1.0,2.0\n")
        with pytest.raises(Exception):
            Table.from_csv(str(path))

    def test_single_row_csv(self, tmp_path):
        path = tmp_path / "one.csv"
        path.write_text("a,b\n1.5,2.5\n")
        t = Table.from_csv(str(path))
        assert t.n_rows == 1
        assert t["a"][0] == 1.5
