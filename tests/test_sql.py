"""Tests for the SQL-like front end (repro.queries.sql)."""

import numpy as np
import pytest

from repro.common.errors import QueryError
from repro.data import Table
from repro.queries import parse_query
from repro.queries.aggregates import (
    Correlation,
    Count,
    Max,
    Mean,
    Median,
    Min,
    Quantile,
    RegressionCoefficients,
    Std,
    Sum,
    Variance,
)


@pytest.fixture
def table():
    rng = np.random.default_rng(0)
    return Table(
        {
            "x0": rng.uniform(0, 100, 2000),
            "x1": rng.uniform(0, 100, 2000),
            "value": rng.normal(size=2000),
        },
        name="sensors",
    )


class TestParsing:
    def test_count_star(self):
        query = parse_query("SELECT COUNT(*) FROM sensors WHERE x0 BETWEEN 0 AND 10")
        assert isinstance(query.aggregate, Count)
        assert query.table_name == "sensors"

    def test_between_bounds(self):
        query = parse_query(
            "SELECT COUNT(*) FROM t WHERE x0 BETWEEN 10 AND 20"
        )
        sel = query.selection
        assert sel.columns == ("x0",)
        assert sel.lows.tolist() == [10.0]
        assert sel.highs.tolist() == [20.0]

    def test_comparison_pairs_form_box(self):
        query = parse_query(
            "SELECT COUNT(*) FROM t WHERE x0 >= 10 AND x0 <= 20 AND x1 > 5 AND x1 < 8"
        )
        sel = query.selection
        assert sel.columns == ("x0", "x1")
        assert sel.lows.tolist() == [10.0, 5.0]
        assert sel.highs.tolist() == [20.0, 8.0]

    def test_open_ended_comparison_clamps(self):
        query = parse_query("SELECT COUNT(*) FROM t WHERE x0 >= 42")
        sel = query.selection
        assert sel.lows[0] == 42.0
        assert sel.highs[0] > 1e17

    def test_mixed_between_and_compare(self):
        query = parse_query(
            "SELECT SUM(value) FROM t WHERE x0 BETWEEN 1 AND 2 AND x1 <= 9"
        )
        assert isinstance(query.aggregate, Sum)
        assert query.selection.columns == ("x0", "x1")

    @pytest.mark.parametrize(
        "sql,kind",
        [
            ("SELECT SUM(value) FROM t WHERE x0 >= 0", Sum),
            ("SELECT AVG(value) FROM t WHERE x0 >= 0", Mean),
            ("SELECT MEAN(value) FROM t WHERE x0 >= 0", Mean),
            ("SELECT MIN(value) FROM t WHERE x0 >= 0", Min),
            ("SELECT MAX(value) FROM t WHERE x0 >= 0", Max),
            ("SELECT STD(value) FROM t WHERE x0 >= 0", Std),
            ("SELECT VAR(value) FROM t WHERE x0 >= 0", Variance),
            ("SELECT MEDIAN(value) FROM t WHERE x0 >= 0", Median),
        ],
    )
    def test_single_column_aggregates(self, sql, kind):
        assert isinstance(parse_query(sql).aggregate, kind)

    def test_quantile(self):
        query = parse_query(
            "SELECT QUANTILE(value, 0.75) FROM t WHERE x0 >= 0"
        )
        assert isinstance(query.aggregate, Quantile)
        assert query.aggregate.q == 0.75

    def test_corr(self):
        query = parse_query("SELECT CORR(x0, value) FROM t WHERE x1 >= 0")
        assert isinstance(query.aggregate, Correlation)

    def test_regr(self):
        query = parse_query(
            "SELECT REGR(value; x0, x1) FROM t WHERE x0 BETWEEN 0 AND 1"
        )
        assert isinstance(query.aggregate, RegressionCoefficients)
        assert query.aggregate.features == ("x0", "x1")
        assert query.answer_dim == 3

    def test_case_insensitive_and_trailing_semicolon(self):
        query = parse_query(
            "select count(*) from t where x0 between 1 and 2;"
        )
        assert isinstance(query.aggregate, Count)

    def test_contradictory_bounds_rejected(self):
        with pytest.raises(QueryError, match="contradictory"):
            parse_query("SELECT COUNT(*) FROM t WHERE x0 >= 10 AND x0 <= 5")

    def test_missing_where_rejected(self):
        with pytest.raises(QueryError):
            parse_query("SELECT COUNT(*) FROM t")

    def test_garbage_rejected(self):
        with pytest.raises(QueryError):
            parse_query("DROP TABLE students")

    def test_unsupported_aggregate_rejected(self):
        with pytest.raises(QueryError):
            parse_query("SELECT MODE(value) FROM t WHERE x0 >= 0")

    def test_count_of_column_rejected(self):
        with pytest.raises(QueryError):
            parse_query("SELECT COUNT(value) FROM t WHERE x0 >= 0")

    def test_dangling_between_rejected(self):
        with pytest.raises(QueryError):
            parse_query("SELECT COUNT(*) FROM t WHERE x0 BETWEEN 5")

    def test_corr_arity_rejected(self):
        with pytest.raises(QueryError):
            parse_query("SELECT CORR(x0) FROM t WHERE x0 >= 0")


class TestSemantics:
    def test_count_matches_manual(self, table):
        query = parse_query(
            "SELECT COUNT(*) FROM sensors WHERE x0 BETWEEN 10 AND 60 "
            "AND x1 BETWEEN 20 AND 80"
        )
        manual = (
            (table["x0"] >= 10)
            & (table["x0"] <= 60)
            & (table["x1"] >= 20)
            & (table["x1"] <= 80)
        ).sum()
        assert query.evaluate(table) == float(manual)

    def test_avg_matches_numpy(self, table):
        query = parse_query(
            "SELECT AVG(value) FROM sensors WHERE x0 <= 50"
        )
        expected = table["value"][table["x0"] <= 50].mean()
        assert query.evaluate(table) == pytest.approx(expected)

    def test_parsed_query_works_with_agent(self, table):
        """SQL text all the way through the data-less agent."""
        from repro.baselines import ExactEngine
        from repro.cluster import ClusterTopology, DistributedStore
        from repro.core import AgentConfig, SEAAgent

        topo = ClusterTopology.single_datacenter(2)
        store = DistributedStore(topo)
        store.put_table(table)
        agent = SEAAgent(ExactEngine(store), AgentConfig(training_budget=10))
        record = agent.submit(
            parse_query(
                "SELECT COUNT(*) FROM sensors WHERE x0 BETWEEN 20 AND 60 "
                "AND x1 BETWEEN 20 AND 60"
            )
        )
        assert record.answer == parse_query(
            "SELECT COUNT(*) FROM sensors WHERE x0 BETWEEN 20 AND 60 "
            "AND x1 BETWEEN 20 AND 60"
        ).evaluate(table)


class TestSQLProperty:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(
        st.floats(-1000, 1000),
        st.floats(0.001, 500),
        st.floats(-1000, 1000),
        st.floats(0.001, 500),
    )
    @settings(max_examples=50, deadline=None)
    def test_between_roundtrip_property(self, lo0, w0, lo1, w1):
        """Any generated BETWEEN statement parses back to its own bounds."""
        sql = (
            f"SELECT COUNT(*) FROM t WHERE a BETWEEN {lo0!r} AND {lo0 + w0!r} "
            f"AND b BETWEEN {lo1!r} AND {lo1 + w1!r}"
        )
        query = parse_query(sql)
        sel = query.selection
        bounds = dict(zip(sel.columns, zip(sel.lows, sel.highs)))
        assert bounds["a"][0] == pytest.approx(lo0)
        assert bounds["a"][1] == pytest.approx(lo0 + w0)
        assert bounds["b"][0] == pytest.approx(lo1)
        assert bounds["b"][1] == pytest.approx(lo1 + w1)
