"""Tests for the distributed kNN operators (reproducing [33])."""

import numpy as np
import pytest

from repro.bigdataless import (
    CoordinatorKNN,
    DistributedGridIndex,
    KNNBaseline,
    knn_reference,
)
from repro.cluster import ClusterTopology, DistributedStore
from repro.common.errors import ConfigurationError
from repro.data import gaussian_mixture_table, uniform_table


@pytest.fixture(scope="module")
def knn_world():
    topo = ClusterTopology.single_datacenter(4)
    store = DistributedStore(topo)
    table = gaussian_mixture_table(20000, dims=("x0", "x1"), seed=5, name="pts")
    store.put_table(table, partitions_per_node=2)
    index = DistributedGridIndex(store, "pts", ("x0", "x1"), cells_per_dim=24)
    index.build()
    return store, table, index


def distances_of(result):
    return np.sort(result.column("_dist"))


class TestCorrectness:
    @pytest.mark.parametrize("k", [1, 10, 50])
    def test_baseline_matches_reference(self, knn_world, k):
        store, table, _ = knn_world
        point = np.array([48.0, 52.0])
        result, _ = KNNBaseline(store, ("x0", "x1")).query("pts", point, k)
        ref_idx = knn_reference(table, ("x0", "x1"), point, k)
        ref_dists = np.linalg.norm(
            table.matrix(("x0", "x1"))[ref_idx] - point, axis=1
        )
        assert np.allclose(distances_of(result), np.sort(ref_dists))

    @pytest.mark.parametrize("k", [1, 10, 50])
    def test_coordinator_matches_baseline(self, knn_world, k):
        store, table, index = knn_world
        point = np.array([48.0, 52.0])
        base, _ = KNNBaseline(store, ("x0", "x1")).query("pts", point, k)
        coord, _ = CoordinatorKNN(store, index).query("pts", point, k)
        assert np.allclose(distances_of(base), distances_of(coord))

    def test_query_in_sparse_region_still_exact(self, knn_world):
        store, table, index = knn_world
        point = np.array([1.0, 1.0])  # likely sparse corner
        base, _ = KNNBaseline(store, ("x0", "x1")).query("pts", point, 5)
        coord, _ = CoordinatorKNN(store, index).query("pts", point, 5)
        assert np.allclose(distances_of(base), distances_of(coord))

    def test_k_larger_than_table(self):
        topo = ClusterTopology.single_datacenter(2)
        store = DistributedStore(topo)
        table = uniform_table(20, dims=("x0", "x1"), seed=1, name="tiny")
        store.put_table(table)
        index = DistributedGridIndex(store, "tiny", ("x0", "x1"), cells_per_dim=4)
        index.build()
        result, _ = CoordinatorKNN(store, index).query("tiny", [50.0, 50.0], 100)
        assert result.n_rows == 20

    def test_unbuilt_index_rejected(self, knn_world):
        store, *_ = knn_world
        fresh = DistributedGridIndex(store, "pts", ("x0", "x1"))
        with pytest.raises(ConfigurationError):
            CoordinatorKNN(store, fresh)

    def test_wrong_table_rejected(self, knn_world):
        store, _, index = knn_world
        operator = CoordinatorKNN(store, index)
        with pytest.raises(ConfigurationError):
            operator.query("other", [0.0, 0.0], 5)


class TestCosts:
    def test_baseline_scans_everything(self, knn_world):
        store, *_ = knn_world
        _, report = KNNBaseline(store, ("x0", "x1")).query("pts", [50.0, 50.0], 10)
        assert report.bytes_scanned == store.table("pts").n_bytes

    def test_coordinator_touches_small_fraction(self, knn_world):
        store, table, index = knn_world
        dense = table.matrix(("x0", "x1")).mean(axis=0)
        _, report = CoordinatorKNN(store, index).query("pts", dense, 10)
        assert report.bytes_scanned < store.table("pts").n_bytes / 20

    def test_coordinator_is_faster(self, knn_world):
        store, table, index = knn_world
        dense = table.matrix(("x0", "x1")).mean(axis=0)
        _, base = KNNBaseline(store, ("x0", "x1")).query("pts", dense, 10)
        _, coord = CoordinatorKNN(store, index).query("pts", dense, 10)
        assert coord.elapsed_sec < base.elapsed_sec

    def test_cost_grows_mildly_with_k(self, knn_world):
        store, table, index = knn_world
        operator = CoordinatorKNN(store, index)
        dense = table.matrix(("x0", "x1")).mean(axis=0)
        _, small = operator.query("pts", dense, 1)
        _, large = operator.query("pts", dense, 100)
        assert large.bytes_scanned >= small.bytes_scanned
        # Even k=100 remains far below a full scan.
        assert large.bytes_scanned < store.table("pts").n_bytes / 5
