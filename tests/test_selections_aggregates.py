"""Unit + property tests for repro.queries selections and aggregates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import QueryError
from repro.data import Table, uniform_table
from repro.queries import (
    AnalyticsQuery,
    Correlation,
    Count,
    KNNSelection,
    Mean,
    Median,
    Quantile,
    RadiusSelection,
    RangeSelection,
    RegressionCoefficients,
    Std,
    Sum,
)


@pytest.fixture
def table():
    rng = np.random.default_rng(0)
    return Table(
        {
            "x0": rng.uniform(0, 100, 1000),
            "x1": rng.uniform(0, 100, 1000),
            "value": rng.normal(size=1000),
        },
        name="t",
    )


class TestRangeSelection:
    def test_mask_matches_manual(self, table):
        sel = RangeSelection(("x0", "x1"), [10, 20], [40, 60])
        mask = sel.mask(table)
        manual = (
            (table["x0"] >= 10)
            & (table["x0"] <= 40)
            & (table["x1"] >= 20)
            & (table["x1"] <= 60)
        )
        assert np.array_equal(mask, manual)

    def test_around_roundtrip(self):
        sel = RangeSelection.around(("a", "b"), [5.0, 10.0], [1.0, 2.0])
        assert sel.lows.tolist() == [4.0, 8.0]
        assert sel.highs.tolist() == [6.0, 12.0]
        assert np.allclose(sel.center, [5.0, 10.0])
        assert np.allclose(sel.half_widths, [1.0, 2.0])

    def test_vector_encoding(self):
        sel = RangeSelection(("a",), [0.0], [10.0])
        assert sel.vector().tolist() == [5.0, 5.0]

    def test_empty_range_rejected(self):
        with pytest.raises(QueryError):
            RangeSelection(("a",), [5.0], [4.0])

    def test_volume(self):
        sel = RangeSelection(("a", "b"), [0, 0], [2, 3])
        assert sel.volume() == pytest.approx(6.0)

    def test_bounding_box_is_self(self):
        sel = RangeSelection(("a",), [1.0], [2.0])
        lo, hi = sel.bounding_box()
        assert lo.tolist() == [1.0] and hi.tolist() == [2.0]


class TestRadiusSelection:
    def test_mask_matches_manual(self, table):
        sel = RadiusSelection(("x0", "x1"), [50, 50], 10.0)
        mask = sel.mask(table)
        diff = table.matrix(("x0", "x1")) - [50, 50]
        manual = np.einsum("ij,ij->i", diff, diff) <= 100.0
        assert np.array_equal(mask, manual)

    def test_zero_radius_selects_exact_points_only(self, table):
        point = [table["x0"][0], table["x1"][0]]
        sel = RadiusSelection(("x0", "x1"), point, 0.0)
        assert sel.mask(table)[0]

    def test_vector_encoding(self):
        sel = RadiusSelection(("a", "b"), [1.0, 2.0], 3.0)
        assert sel.vector().tolist() == [1.0, 2.0, 3.0]

    def test_negative_radius_rejected(self):
        with pytest.raises(Exception):
            RadiusSelection(("a",), [0.0], -1.0)

    def test_bounding_box_encloses_sphere(self):
        sel = RadiusSelection(("a", "b"), [5.0, 5.0], 2.0)
        lo, hi = sel.bounding_box()
        assert lo.tolist() == [3.0, 3.0] and hi.tolist() == [7.0, 7.0]


class TestKNNSelection:
    def test_selects_exactly_k(self, table):
        sel = KNNSelection(("x0", "x1"), [50, 50], 7)
        assert sel.mask(table).sum() == 7

    def test_selected_are_the_nearest(self, table):
        sel = KNNSelection(("x0", "x1"), [50, 50], 5)
        mask = sel.mask(table)
        diff = table.matrix(("x0", "x1")) - [50, 50]
        dist = np.einsum("ij,ij->i", diff, diff)
        assert set(np.flatnonzero(mask)) == set(np.argsort(dist)[:5])

    def test_k_exceeding_rows_selects_all(self):
        t = Table({"a": np.arange(3.0)})
        sel = KNNSelection(("a",), [0.0], 10)
        assert sel.mask(t).sum() == 3


class TestAggregates:
    def test_count(self, table):
        assert Count().compute(table) == 1000.0

    def test_sum_mean_std_match_numpy(self, table):
        assert Sum("value").compute(table) == pytest.approx(table["value"].sum())
        assert Mean("value").compute(table) == pytest.approx(table["value"].mean())
        assert Std("value").compute(table) == pytest.approx(table["value"].std())

    def test_median_quantile_match_numpy(self, table):
        assert Median("value").compute(table) == pytest.approx(
            np.median(table["value"])
        )
        assert Quantile("value", 0.25).compute(table) == pytest.approx(
            np.quantile(table["value"], 0.25)
        )

    def test_empty_table_neutral_values(self):
        empty = Table({"v": np.empty(0)})
        assert Count().compute(empty) == 0.0
        assert Sum("v").compute(empty) == 0.0
        assert Mean("v").compute(empty) == 0.0
        assert Median("v").compute(empty) == 0.0

    def test_correlation_of_linear_columns_is_one(self):
        t = Table({"a": np.arange(100.0), "b": np.arange(100.0) * 3 + 1})
        assert Correlation("a", "b").compute(t) == pytest.approx(1.0)

    def test_correlation_degenerate_returns_zero(self):
        t = Table({"a": np.ones(10), "b": np.arange(10.0)})
        assert Correlation("a", "b").compute(t) == 0.0
        tiny = Table({"a": np.array([1.0]), "b": np.array([2.0])})
        assert Correlation("a", "b").compute(tiny) == 0.0

    def test_regression_recovers_coefficients(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(500, 2))
        y = 1.5 + 2.0 * x[:, 0] - 3.0 * x[:, 1]
        t = Table({"f0": x[:, 0], "f1": x[:, 1], "y": y})
        coef = RegressionCoefficients("y", ["f0", "f1"]).compute(t)
        assert np.allclose(coef, [1.5, 2.0, -3.0], atol=1e-8)

    def test_regression_underdetermined_returns_zeros(self):
        t = Table({"f0": np.array([1.0]), "y": np.array([2.0])})
        coef = RegressionCoefficients("y", ["f0"]).compute(t)
        assert np.allclose(coef, 0.0)

    def test_quantile_out_of_range_rejected(self):
        with pytest.raises(Exception):
            Quantile("v", 1.5)

    @pytest.mark.parametrize(
        "aggregate",
        [
            Count(),
            Sum("value"),
            Mean("value"),
            Std("value"),
            Median("value"),
            Quantile("value", 0.9),
            Correlation("x0", "value"),
        ],
    )
    def test_partial_merge_equals_compute(self, table, aggregate):
        """Distributed partial/merge must agree with centralized compute."""
        parts = table.split(7)
        merged = aggregate.merge([aggregate.partial(p) for p in parts])
        assert merged == pytest.approx(aggregate.compute(table))

    @given(st.integers(min_value=1, max_value=9))
    @settings(max_examples=20, deadline=None)
    def test_regression_partials_merge_property(self, n_parts):
        rng = np.random.default_rng(n_parts)
        t = Table(
            {
                "f": rng.normal(size=200),
                "y": rng.normal(size=200),
            }
        )
        agg = RegressionCoefficients("y", ["f"])
        merged = agg.merge([agg.partial(p) for p in t.split(n_parts)])
        assert np.allclose(merged, agg.compute(t), atol=1e-6)


class TestAnalyticsQuery:
    def test_evaluate_equals_manual(self, table):
        q = AnalyticsQuery(
            "t", RangeSelection(("x0",), [0.0], [50.0]), Count()
        )
        assert q.evaluate(table) == float((table["x0"] <= 50.0).sum())

    def test_signature_distinguishes_aggregates(self, table):
        sel = RangeSelection(("x0",), [0.0], [50.0])
        a = AnalyticsQuery("t", sel, Count())
        b = AnalyticsQuery("t", sel, Mean("value"))
        assert a.signature() != b.signature()

    def test_vector_is_selection_vector(self):
        sel = RadiusSelection(("a",), [1.0], 2.0)
        q = AnalyticsQuery("t", sel, Count())
        assert np.array_equal(q.vector(), sel.vector())

    def test_answer_dim(self):
        sel = RangeSelection(("x0",), [0.0], [1.0])
        assert AnalyticsQuery("t", sel, Count()).answer_dim == 1
        assert (
            AnalyticsQuery(
                "t", sel, RegressionCoefficients("value", ["x0"])
            ).answer_dim
            == 2
        )


class TestMinMaxVariance:
    def test_min_max_match_numpy(self, table):
        from repro.queries import Max, Min, Variance

        assert Min("value").compute(table) == pytest.approx(table["value"].min())
        assert Max("value").compute(table) == pytest.approx(table["value"].max())
        assert Variance("value").compute(table) == pytest.approx(
            table["value"].var()
        )

    def test_empty_identities(self):
        from repro.queries import Max, Min, Variance

        empty = Table({"v": np.empty(0)})
        assert Min("v").compute(empty) == float("inf")
        assert Max("v").compute(empty) == float("-inf")
        assert Variance("v").compute(empty) == 0.0

    @pytest.mark.parametrize("parts", [1, 3, 8])
    def test_partial_merge_equals_compute(self, table, parts):
        from repro.queries import Max, Min, Variance

        for aggregate in (Min("value"), Max("value"), Variance("value")):
            merged = aggregate.merge(
                [aggregate.partial(p) for p in table.split(parts)]
            )
            assert merged == pytest.approx(aggregate.compute(table))


class TestZoomSession:
    def test_zoom_queries_shrink_and_overlap(self):
        from repro.data import InterestProfile, WorkloadGenerator

        profile = InterestProfile(
            np.array([[50.0, 50.0]]), hotspot_scale=1.0, extent_range=(8, 10)
        )
        wg = WorkloadGenerator("t", ("a", "b"), profile, seed=0)
        session = wg.zoom_session(depth=5, shrink=0.5)
        assert len(session) == 5
        widths = [float(np.max(q.selection.half_widths)) for q in session]
        assert all(b < a for a, b in zip(widths, widths[1:]))
        # Deep zoom levels stay near the first query's centre.
        first = session[0].selection.center
        last = session[-1].selection.center
        assert np.linalg.norm(last - first) < 20.0

    def test_zoom_radius_kind(self):
        from repro.data import InterestProfile, WorkloadGenerator

        profile = InterestProfile(
            np.array([[50.0, 50.0]]), hotspot_scale=1.0, extent_range=(8, 10)
        )
        wg = WorkloadGenerator("t", ("a", "b"), profile, kind="radius", seed=1)
        session = wg.zoom_session(depth=4, shrink=0.7)
        radii = [q.selection.radius for q in session]
        assert all(b < a for a, b in zip(radii, radii[1:]))

    def test_invalid_zoom_params_rejected(self):
        from repro.common.errors import ConfigurationError
        from repro.data import InterestProfile, WorkloadGenerator

        profile = InterestProfile(np.array([[0.0]]), extent_range=(1, 2))
        wg = WorkloadGenerator("t", ("a",), profile, seed=2)
        with pytest.raises(ConfigurationError):
            wg.zoom_session(depth=0)
        with pytest.raises(ConfigurationError):
            wg.zoom_session(shrink=1.5)
