"""The morsel-style parallel scan executor (DESIGN §9).

Two families of guarantees:

* **Executor mechanics** — deterministic merge order, input-order error
  propagation, ``workers=1`` meaning *no pool at all*, morsel-queue
  construction, and the ``parallel_*`` observability surface appearing
  only when work actually fans out.
* **Byte-identity** — a hypothesis property drives the full engine
  stack (execute / execute_many / fetch_rows, pruning on and off, fault
  schedule active and not) through fresh identically-seeded worlds at
  ``workers=1`` vs ``workers=3`` and requires ``repr``-equal answers
  and ``==``-equal cost-report dicts, float fields included.

Plus the thread-safety satellites: concurrent CostMeter/metrics charging
loses nothing, the fault injector survives concurrent draws, the KNN /
``batch_masks`` edge cases, and the hoisted ``Selection.box()`` cache.
"""

import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import ExactEngine
from repro.cluster import ClusterTopology, DistributedStore
from repro.common import CostMeter
from repro.data import Table, gaussian_mixture_table
from repro.engine import CoordinatorEngine
from repro.engine.pruning import plan_scan
from repro.faults import FaultInjector, FaultSchedule, TransientReadError
from repro.obs import StackObserver
from repro.obs.metrics import MetricsRegistry
from repro.parallel import Morsel, ScanExecutor, partition_morsels
from repro.queries import (
    AnalyticsQuery,
    Count,
    KNNSelection,
    Mean,
    Median,
    RangeSelection,
    Std,
)
from repro.queries.selections import batch_masks
from repro.session import SEASession


# --------------------------------------------------------------------------
# Executor mechanics
# --------------------------------------------------------------------------
class TestScanExecutor:
    def test_results_in_input_order_regardless_of_completion(self):
        # Small morsels finish first; large ones are *submitted* first
        # (LPT).  Either way the merge is input-ordered.
        def slow_identity(payload):
            time.sleep(payload / 1000.0)
            return payload

        morsels = [Morsel(index=i, payload=p, size_bytes=p) for i, p in
                   enumerate([5, 1, 9, 3, 7, 2, 8, 4])]
        with ScanExecutor(workers=4) as executor:
            out = executor.run(morsels, slow_identity)
        assert out == [5, 1, 9, 3, 7, 2, 8, 4]

    def test_workers_one_is_inline_no_pool_no_threads(self):
        executor = ScanExecutor(workers=1)
        seen_threads = []
        out = executor.run(
            [Morsel(index=i, payload=i) for i in range(4)],
            lambda p: seen_threads.append(threading.current_thread().name) or p,
        )
        assert out == [0, 1, 2, 3]
        assert executor._pool is None  # never created
        assert all(
            not name.startswith("sea-scan") for name in seen_threads
        )
        assert not executor.parallel

    def test_parallel_runs_on_pool_threads(self):
        names = []
        with ScanExecutor(workers=3) as executor:
            executor.run(
                [Morsel(index=i, payload=i) for i in range(6)],
                lambda p: names.append(threading.current_thread().name) or p,
            )
        assert names and all(n.startswith("sea-scan") for n in names)

    def test_errors_reraised_in_input_order(self):
        def maybe_fail(payload):
            if payload in (2, 5):
                raise ValueError(f"boom {payload}")
            return payload

        morsels = [Morsel(index=i, payload=i) for i in range(8)]
        for workers in (1, 4):
            with ScanExecutor(workers=workers) as executor:
                with pytest.raises(ValueError, match="boom 2"):
                    executor.run(morsels, maybe_fail)

    def test_empty_batch(self):
        with ScanExecutor(workers=4) as executor:
            assert executor.run([], lambda p: p) == []

    def test_close_is_idempotent_and_pool_recreates(self):
        executor = ScanExecutor(workers=2)
        morsels = [Morsel(index=0, payload=1)]
        assert executor.run(morsels, lambda p: p + 1) == [2]
        executor.close()
        executor.close()
        assert executor.run(morsels, lambda p: p * 10) == [10]
        executor.close()

    def test_workers_must_be_positive(self):
        with pytest.raises(Exception):
            ScanExecutor(workers=0)

    def test_partition_morsels_filters_and_sizes(self, stored_table):
        morsels = partition_morsels(
            stored_table.partitions, should_scan=lambda i: i % 2 == 0
        )
        assert [m.index for m in morsels] == [
            i for i in range(len(stored_table.partitions)) if i % 2 == 0
        ]
        for morsel in morsels:
            partition = stored_table.partitions[morsel.index]
            assert morsel.payload is partition.data
            assert morsel.size_bytes == partition.n_bytes

    def test_parallel_metrics_only_when_parallel(self):
        morsels = [Morsel(index=i, payload=i, size_bytes=10) for i in range(3)]
        serial_obs, parallel_obs = StackObserver(), StackObserver()
        with ScanExecutor(workers=1, observer=serial_obs) as executor:
            executor.run(morsels, lambda p: p)
        with ScanExecutor(workers=2, observer=parallel_obs) as executor:
            executor.run(morsels, lambda p: p, label="unit")
        serial_keys = [
            k for k in serial_obs.metrics.as_dict() if k.startswith("parallel_")
        ]
        parallel_snapshot = parallel_obs.metrics.as_dict()
        assert serial_keys == []
        key = '{executor="thread",label="unit"}'
        assert parallel_snapshot[f"parallel_batches_total{key}"] == 1.0
        assert parallel_snapshot[f"parallel_morsels_total{key}"] == 3.0
        assert parallel_snapshot[f"parallel_bytes_total{key}"] == 30.0
        assert parallel_snapshot["parallel_workers"] == 2.0


# --------------------------------------------------------------------------
# Byte-identity: serial vs parallel across the whole stack
# --------------------------------------------------------------------------
def _build_world(seed, n_rows, parts_per_node, pruning, faulty, workers):
    topo = ClusterTopology.single_datacenter(4)
    store = DistributedStore(topo, replication=2 if faulty else 1)
    table = gaussian_mixture_table(
        n_rows, dims=("x0", "x1"), seed=seed, name="data"
    )
    store.put_table(table, partitions_per_node=parts_per_node)
    if faulty:
        schedule = (
            FaultSchedule().crash("node-1").flaky("node-2", 0.3).slow("node-3", 2.0)
        )
        store.attach_faults(FaultInjector(schedule, seed=seed + 1))
    executor = ScanExecutor(workers)
    engine = ExactEngine(store, pruning=pruning, executor=executor,
                         failure_mode="degrade" if faulty else "fail")
    coordinator = CoordinatorEngine(store, executor=executor)
    return store, engine, coordinator, executor


def _drive(store, engine, coordinator, seed):
    """One mixed workload; returns everything that must be identical."""
    rng = np.random.default_rng(seed)
    queries = []
    for aggregate in (Count(), Mean("x0"), Std("x1"), Median("x0")):
        lo = rng.uniform(0, 60, size=2)
        hi = lo + rng.uniform(5, 40, size=2)
        queries.append(
            AnalyticsQuery(
                "data", RangeSelection(("x0", "x1"), lo, hi), aggregate
            )
        )
    outputs = []
    for query in queries:
        answer, report = engine.execute(query)
        outputs.append((repr(answer), report.as_dict()))
    for answer, report in engine.execute_many(queries):
        outputs.append((repr(answer), report.as_dict()))
    stored = store.table("data")
    n_parts = len(stored.partitions)
    plans = [
        {
            int(rng.integers(0, n_parts)): rng.integers(
                0, stored.partitions[0].n_rows, size=5
            ),
            0: np.arange(3),
        },
        {i: np.arange(2) for i in range(n_parts)},
    ]
    for plan in plans:
        rows, report = coordinator.fetch_rows(stored, plan)
        outputs.append((repr(rows.matrix(("x0", "x1")).tolist()), report.as_dict()))
    for rows, report in coordinator.fetch_rows_many(stored, plans):
        outputs.append((repr(rows.matrix(("x0", "x1")).tolist()), report.as_dict()))
    return outputs


class TestByteIdentity:
    @given(
        seed=st.integers(0, 40),
        parts_per_node=st.sampled_from([1, 3]),
        pruning=st.booleans(),
        faulty=st.booleans(),
    )
    @settings(max_examples=8, deadline=None)
    def test_parallel_equals_serial(self, seed, parts_per_node, pruning, faulty):
        # Two *independent* identically-seeded worlds: the store mutates
        # load counters across reads, so the runs must not share one.
        outputs = {}
        for workers in (1, 3):
            store, engine, coordinator, executor = _build_world(
                seed, 3000, parts_per_node, pruning, faulty, workers
            )
            try:
                outputs[workers] = _drive(store, engine, coordinator, seed)
            finally:
                executor.close()
        assert outputs[1] == outputs[3]

    def test_workers_one_equals_no_executor(self, stored_table, store):
        query = AnalyticsQuery(
            "data",
            RangeSelection(("x0", "x1"), [20.0, 20.0], [70.0, 70.0]),
            Mean("x1"),
        )
        bare = ExactEngine(store)
        wired = ExactEngine(store, executor=ScanExecutor(1))
        a1, r1 = bare.execute(query)
        a2, r2 = wired.execute(query)
        assert repr(a1) == repr(a2)
        assert r1.as_dict() == r2.as_dict()

    def test_session_stats_identical_modulo_parallel_metrics(self):
        def run(workers):
            session = SEASession(n_nodes=4, workers=workers)
            session.attach_observer()
            table = gaussian_mixture_table(
                4000, dims=("x0", "x1"), seed=5, name="data"
            )
            session.load_table(table)
            statements = [
                "SELECT COUNT(*) FROM data WHERE x0 BETWEEN 10 AND 60 "
                "AND x1 BETWEEN 10 AND 60",
                "SELECT MEAN(x0) FROM data WHERE x0 BETWEEN 0 AND 90 "
                "AND x1 BETWEEN 20 AND 80",
            ]
            answers = [session.sql(s) for s in statements]
            answers += session.sql_many(statements)
            stats = session.stats()
            session.close()
            return answers, stats

        answers_1, stats_1 = run(1)
        answers_2, stats_2 = run(2)
        for a, b in zip(answers_1, answers_2):
            assert repr(a.value) == repr(b.value)
            assert a.mode == b.mode
            assert a.cost.as_dict() == b.cost.as_dict()

        def comparable(stats):
            # parallel_* metrics and span counts are the *only* keys the
            # worker count may influence (DESIGN §9): the parallel run
            # records extra parallel:<label> spans.
            return {
                k: v
                for k, v in stats.items()
                if not k.startswith("parallel_")
                and not k.startswith("trace_spans")
                and k != "obs_spans_recorded"
            }

        assert comparable(stats_1) == comparable(stats_2)
        # And the parallel run did actually fan out.
        assert any(k.startswith("parallel_") for k in stats_2)
        assert not any(k.startswith("parallel_") for k in stats_1)


# --------------------------------------------------------------------------
# Thread-safety satellites
# --------------------------------------------------------------------------
class TestConcurrentCharging:
    def test_cost_meter_loses_nothing_under_contention(self):
        meter = CostMeter()
        n_threads, n_charges = 8, 400

        def worker():
            for _ in range(n_charges):
                # Equal-valued charges: float sums are order-independent.
                meter.charge_scan("n0", 1024, rows=2)
                meter.charge_transfer("n0", "n1", 256)
                meter.charge_layers("n2", 1)

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        report = meter.freeze()
        total = n_threads * n_charges
        assert report.bytes_scanned == total * 1024
        assert report.rows_examined == total * 2
        assert report.bytes_shipped_lan == total * 256
        assert report.messages == total
        assert report.layers_crossed == total
        assert report.nodes_touched == 3
        rates = meter.rates
        expected = total * (
            1024 / rates.disk_bytes_per_sec
            + rates.lan_rtt_sec
            + 256 / rates.lan_bytes_per_sec
            + rates.layer_overhead_sec
        )
        assert report.node_sec == pytest.approx(expected, rel=1e-12)

    def test_metrics_registry_loses_nothing_under_contention(self):
        registry = MetricsRegistry()
        n_threads, n_ops = 8, 300

        def worker(i):
            for j in range(n_ops):
                registry.counter("hits").labels(kind=str(j % 3)).inc()
                registry.histogram("lat").labels().observe(1.0)
                registry.gauge("depth").labels().inc()

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snapshot = registry.as_dict()
        total = n_threads * n_ops
        assert sum(
            v for k, v in snapshot.items() if k.startswith("hits{")
        ) == total
        assert snapshot["lat_count"] == total
        assert snapshot["lat_sum"] == pytest.approx(float(total))
        assert snapshot["depth"] == total

    def test_injector_concurrent_draws_consistent(self):
        injector = FaultInjector(FaultSchedule().flaky("a", 0.5), seed=3)
        failures = []

        def worker():
            local = 0
            for _ in range(200):
                try:
                    injector.maybe_fail_read("a")
                except TransientReadError:
                    local += 1
            failures.append(local)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert injector.n_transient == sum(failures)
        assert 0 < injector.n_transient < 1200

    def test_injector_concurrent_clock_and_state(self):
        injector = FaultInjector(FaultSchedule().crash("a", 1.0, 2.0))

        def advance():
            for _ in range(100):
                injector.advance(0.01)

        def query_state():
            for _ in range(100):
                injector.is_down("a")
                injector.down_nodes(["a", "b"])

        threads = [threading.Thread(target=advance) for _ in range(4)] + [
            threading.Thread(target=query_state) for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert injector.now == pytest.approx(4.0)
        assert not injector.is_down("a")  # window [1, 2] has passed


# --------------------------------------------------------------------------
# Selection satellites: KNN edges, batch_masks edges, cached box()
# --------------------------------------------------------------------------
class TestSelectionEdges:
    def _table(self, n):
        rng = np.random.default_rng(0)
        return Table(
            {"x0": rng.normal(size=n), "x1": rng.normal(size=n)}, name="t"
        )

    def test_knn_k_at_least_n_rows_selects_everything(self):
        table = self._table(5)
        for k in (5, 6, 100):
            mask = KNNSelection(("x0", "x1"), [0.0, 0.0], k).mask(table)
            assert mask.dtype == bool and mask.all() and mask.shape == (5,)

    def test_knn_zero_row_partition(self):
        table = self._table(0)
        mask = KNNSelection(("x0", "x1"), [0.0, 0.0], 3).mask(table)
        assert mask.shape == (0,) and mask.dtype == bool

    def test_knn_normal_case_still_exact(self):
        table = self._table(50)
        selection = KNNSelection(("x0", "x1"), [0.2, -0.1], 7)
        mask = selection.mask(table)
        assert int(mask.sum()) == 7
        points = table.matrix(("x0", "x1"))
        dist = ((points - np.asarray([0.2, -0.1])) ** 2).sum(axis=1)
        assert dist[mask].max() <= dist[~mask].min()

    def test_batch_masks_empty_selection_list(self):
        assert batch_masks([], self._table(10)) == []

    def test_batch_masks_zero_row_table(self):
        table = self._table(0)
        selections = [
            RangeSelection(("x0", "x1"), [-1, -1], [1, 1]),
            RangeSelection(("x0", "x1"), [0, 0], [2, 2]),
        ]
        masks = batch_masks(selections, table)
        assert len(masks) == 2
        for mask, selection in zip(masks, selections):
            assert mask.shape == (0,)
            assert np.array_equal(mask, selection.mask(table))

    def test_batch_masks_with_knn_over_zero_rows(self):
        table = self._table(0)
        masks = batch_masks(
            [KNNSelection(("x0", "x1"), [0.0, 0.0], 2)], table
        )
        assert masks[0].shape == (0,)


class TestBoundingBoxHoisting:
    def test_box_computed_once_per_selection(self):
        selection = RangeSelection(("x0", "x1"), [0.0, 0.0], [1.0, 1.0])
        calls = []
        original = selection.bounding_box
        selection.bounding_box = lambda: calls.append(1) or original()
        first = selection.box()
        second = selection.box()
        assert len(calls) == 1
        assert first is second
        np.testing.assert_array_equal(first[0], [0.0, 0.0])

    def test_plan_scan_consults_box_once_across_partitions(self, store):
        rng = np.random.default_rng(2)
        table = Table(
            {"x0": rng.normal(size=2000), "x1": rng.normal(size=2000)},
            name="boxy",
        )
        store.put_table(table, partitions_per_node=4)  # 16 partitions
        synopses = store.synopses("boxy")
        selection = RangeSelection(("x0", "x1"), [-0.5, -0.5], [0.5, 0.5])
        calls = []
        original = selection.bounding_box
        selection.bounding_box = lambda: calls.append(1) or original()
        plan_scan(synopses, selection, Count(), emit_key=0)
        assert len(calls) == 1

    def test_box_cache_is_per_instance(self):
        a = RangeSelection(("x0",), [0.0], [1.0])
        b = RangeSelection(("x0",), [2.0], [3.0])
        assert a.box()[0][0] == 0.0
        assert b.box()[0][0] == 2.0
        assert a.box() is not b.box()
