"""Durable streaming ingestion: WAL, deltas, compaction, recovery (DESIGN §13)."""

import numpy as np
import pytest

from repro.cluster import ClusterTopology, DistributedStore
from repro.cluster.columnar import columnar_consistent
from repro.cluster.synopsis import synopses_consistent
from repro.common.errors import (
    ConfigurationError,
    FaultError,
    RecoveryError,
    StorageError,
    WriteCrashError,
    WriteError,
)
from repro.data import gaussian_mixture_table
from repro.data.tabular import Table
from repro.faults import FaultInjector
from repro.ingest import (
    DeltaPartition,
    IngestConfig,
    WAL_APPEND,
    WAL_EPOCH,
    WriteAheadLog,
)
from repro.queries import AnalyticsQuery, Count, RangeSelection, Sum
from repro.session import SEASession


def make_table(n=400, seed=3, name="data"):
    return gaussian_mixture_table(n, dims=("x0", "x1"), seed=seed, name=name)


def make_batch(n, seed, name="data", lo=0.0, hi=100.0):
    rng = np.random.default_rng(seed)
    return Table(
        {
            "x0": rng.uniform(lo, hi, n),
            "x1": rng.uniform(lo, hi, n),
            "value": rng.uniform(0.0, 1.0, n),
        },
        name=name,
    )


def ingest_store(layout="row", n_nodes=4, epoch_seconds=1.0, table=None):
    store = DistributedStore(
        ClusterTopology.single_datacenter(n_nodes), layout=layout
    )
    if table is not None:
        store.put_table(table, partitions_per_node=2)
    pipeline = store.enable_ingest(IngestConfig(epoch_seconds=epoch_seconds))
    return store, pipeline

def tables_equal(a: Table, b: Table) -> bool:
    if a.column_names != b.column_names or a.n_rows != b.n_rows:
        return False
    return all(
        np.array_equal(a.column(c), b.column(c), equal_nan=True)
        for c in a.column_names
    )


def store_image(store, name="data"):
    return store.table(name).full_table()


def node_stored_bytes(store):
    return {node.node_id: node.stored_bytes for node in store.topology.nodes}


def verify_store(store, name="data"):
    stored = store.table(name)
    views = [p.read_view() for p in stored.partitions]
    assert synopses_consistent(store.synopses(name), [p.data for p in stored.partitions])
    if all(p.columnar is not None for p in stored.partitions):
        assert columnar_consistent(
            [p.columnar for p in stored.partitions],
            [p.data for p in stored.partitions],
        )
    return views


# ---------------------------------------------------------------------------
# WAL unit behaviour
# ---------------------------------------------------------------------------
class TestWriteAheadLog:
    def test_append_sync_scan_roundtrip(self):
        wal = WriteAheadLog()
        lsns = [
            wal.append(WAL_APPEND, {"table": "data", "i": i}, epoch=0)
            for i in range(5)
        ]
        assert lsns == [1, 2, 3, 4, 5]
        assert wal.pending_records == 5 and wal.disk_bytes == 0
        flushed = wal.sync()
        assert flushed == wal.disk_bytes > 0
        assert wal.synced_lsn == 5 and wal.pending_records == 0
        records, torn = wal.scan()
        assert torn == 0
        assert [r.lsn for r in records] == lsns
        assert [r.payload["i"] for r in records] == list(range(5))

    def test_empty_wal_scans_clean(self):
        records, torn = WriteAheadLog().scan()
        assert records == [] and torn == 0

    def test_unsynced_records_do_not_survive_crash(self):
        wal = WriteAheadLog()
        wal.append(WAL_APPEND, {"i": 0}, epoch=0)
        wal.sync()
        wal.append(WAL_APPEND, {"i": 1}, epoch=0)
        wal.crash(cut=None)
        records, torn = wal.scan()
        assert torn == 0
        assert [r.payload["i"] for r in records] == [0]

    def test_torn_tail_is_detected_and_physically_truncated(self):
        wal = WriteAheadLog()
        wal.append(WAL_APPEND, {"i": 0}, epoch=0)
        wal.sync()
        wal.append(WAL_APPEND, {"i": 1}, epoch=0)
        torn_written = wal.crash(cut=lambda n: n // 2)
        assert torn_written > 0
        before = wal.disk_bytes
        records, torn = wal.scan()
        assert torn == torn_written
        assert [r.payload["i"] for r in records] == [0]
        assert wal.disk_bytes == before - torn_written
        # Idempotent: the tail is gone from the durable image.
        records2, torn2 = wal.scan()
        assert torn2 == 0 and len(records2) == 1

    def test_checksum_mismatch_truncates_from_corruption(self):
        wal = WriteAheadLog()
        for i in range(3):
            wal.append(WAL_APPEND, {"i": i}, epoch=0)
        wal.sync()
        clean, _ = WriteAheadLog().scan()
        # Flip one byte inside the *last* record's payload region.
        wal._disk[-1] ^= 0xFF
        records, torn = wal.scan()
        assert torn > 0
        assert [r.payload["i"] for r in records] == [0, 1]

    def test_lsn_continues_after_recovery_scan(self):
        wal = WriteAheadLog()
        wal.append(WAL_APPEND, {}, epoch=0)
        wal.sync()
        fresh = WriteAheadLog()
        fresh._disk = bytearray(wal._disk)
        fresh.scan()
        assert fresh.next_lsn == 2 and fresh.synced_lsn == 1

    def test_prune_through_reclaims_only_applied_records(self):
        wal = WriteAheadLog()
        for i in range(4):
            wal.append(WAL_APPEND, {"i": i}, epoch=0)
        wal.sync()
        reclaimed = wal.prune_through(2)
        assert reclaimed > 0
        records, _ = wal.scan()
        assert [r.lsn for r in records] == [3, 4]


# ---------------------------------------------------------------------------
# Delta partitions
# ---------------------------------------------------------------------------
class TestDeltaPartition:
    def test_append_stamps_lsns_and_counts(self):
        delta = DeltaPartition(10)
        assert not delta.dirty
        delta.append(make_batch(4, 1), lsn=7)
        delta.append(make_batch(2, 2), lsn=9)
        assert delta.dirty and delta.n_rows == 6
        assert (delta.first_lsn, delta.last_lsn) == (7, 9)
        assert delta.n_bytes > 0

    def test_delete_splits_mask_between_base_and_memtable(self):
        delta = DeltaPartition(3)
        delta.append(make_batch(2, 5), lsn=1)
        mask = np.array([True, False, False, False, True])
        assert delta.delete(mask, lsn=2) == 2
        assert delta.n_deleted == 1 and delta.n_rows == 1
        assert delta.live_base_rows == 2

    def test_no_hit_delete_does_not_stamp(self):
        delta = DeltaPartition(3)
        assert delta.delete(np.zeros(3, dtype=bool), lsn=5) == 0
        assert not delta.dirty and delta.last_lsn == 0

    def test_synopsis_is_cached_per_version(self):
        delta = DeltaPartition(0)
        delta.append(make_batch(8, 3), lsn=1)
        first = delta.synopsis()
        assert first is delta.synopsis()
        delta.append(make_batch(1, 4), lsn=2)
        assert delta.synopsis() is not first


# ---------------------------------------------------------------------------
# Write path: immediate visibility, byte-identity, typed errors
# ---------------------------------------------------------------------------
class TestIngestWritePath:
    @pytest.mark.parametrize("layout", ["row", "column"])
    def test_staged_writes_match_legacy_synchronous_store(self, layout):
        table = make_table(500)
        batches = [make_batch(37, s) for s in (11, 12)]

        legacy = DistributedStore(
            ClusterTopology.single_datacenter(4), layout=layout
        )
        legacy.put_table(table, partitions_per_node=2)
        store, pipeline = ingest_store(layout=layout, table=table)
        for batch in batches:
            legacy.append_rows("data", batch)
            store.append_rows("data", batch)
        predicate = lambda t: t.column("x0") > 80.0
        legacy.delete_rows("data", predicate)
        store.delete_rows("data", predicate)

        # Pre-compaction: the base+delta view is element-identical.
        assert tables_equal(store_image(store), store_image(legacy))
        assert pipeline.pending_delta_rows > 0
        pipeline.flush()
        assert pipeline.pending_delta_rows == 0
        assert tables_equal(store_image(store), store_image(legacy))
        verify_store(store)

    def test_append_visible_before_any_epoch_close(self):
        store, pipeline = ingest_store(table=make_table(200))
        before = store.table("data").n_rows
        lsn = store.ingest.append("data", make_batch(30, 9))
        assert lsn > 0
        assert store.table("data").n_rows == before + 30
        assert pipeline.n_epochs_closed == 0

    def test_staged_writes_do_not_bump_generation(self):
        store, pipeline = ingest_store(table=make_table(200))
        generations = [p.generation for p in store.table("data").partitions]
        store.append_rows("data", make_batch(40, 1))
        assert [
            p.generation for p in store.table("data").partitions
        ] == generations
        pipeline.flush()
        after = [p.generation for p in store.table("data").partitions]
        assert all(b >= a for a, b in zip(generations, after))
        assert any(b == a + 1 for a, b in zip(generations, after))

    def test_node_accounting_tracks_delta_then_compaction(self):
        table = make_table(300)
        store, pipeline = ingest_store(table=table)
        base = node_stored_bytes(store)
        store.append_rows("data", make_batch(50, 2))
        staged = node_stored_bytes(store)
        assert sum(staged.values()) > sum(base.values())
        pipeline.flush()
        compacted = node_stored_bytes(store)
        expected = {
            node.node_id: sum(
                p.stored_bytes
                for p in store.table("data").partitions
                if node.node_id in ([p.primary_node] + list(p.replica_nodes))
            )
            for node in store.topology.nodes
        }
        assert compacted == expected

    def test_unknown_table_raises_write_error(self):
        store, _ = ingest_store(table=make_table(100))
        with pytest.raises(WriteError) as excinfo:
            store.append_rows("ghost", make_batch(5, 1, name="ghost"))
        assert isinstance(excinfo.value, FaultError)
        assert excinfo.value.point == "append"
        with pytest.raises(WriteError):
            store.delete_rows("ghost", lambda t: t.column("x0") > 0)

    def test_schema_mismatch_raises_configuration_error(self):
        store, _ = ingest_store(table=make_table(100))
        bad = Table({"x0": np.arange(3.0)}, name="data")
        with pytest.raises(ConfigurationError):
            store.append_rows("data", bad)

    def test_empty_append_is_a_noop(self):
        store, pipeline = ingest_store(table=make_table(100))
        lsn = store.ingest.append("data", make_batch(0, 1))
        assert lsn == 0
        assert pipeline.wal.pending_records == 0
        assert pipeline.pending_delta_rows == 0


# ---------------------------------------------------------------------------
# Reads over dirty partitions: engines, pruning, degraded mode
# ---------------------------------------------------------------------------
class TestDirtyReads:
    @pytest.mark.parametrize("layout", ["row", "column"])
    def test_exact_engine_answers_include_staged_rows(self, layout):
        from repro.baselines.exact import ExactEngine

        table = make_table(600)
        store, pipeline = ingest_store(layout=layout, table=table)
        engine = ExactEngine(store)
        query = AnalyticsQuery(
            "data",
            RangeSelection(("x0", "x1"), (10.0, 10.0), (70.0, 70.0)),
            Count(),
        )
        before, _ = engine.execute(query)
        store.append_rows(
            "data", make_batch(25, 21, lo=20.0, hi=60.0)
        )
        staged, _ = engine.execute(query)
        assert staged == before + 25
        assert staged == engine.ground_truth(query)
        pipeline.flush()
        compacted, _ = engine.execute(query)
        assert compacted == staged

    def test_dirty_partitions_downgrade_synopsis_to_scan(self):
        from repro.baselines.exact import ExactEngine
        from repro.engine.pruning import SCAN, SYNOPSIS

        table = make_table(600)
        store, pipeline = ingest_store(table=table)
        engine = ExactEngine(store)
        query = AnalyticsQuery(
            "data",
            RangeSelection(("x0", "x1"), (-1e9, -1e9), (1e9, 1e9)),
            Count(),
        )
        plan = engine.plan_for(query)
        assert plan is not None and plan.n_covered == len(plan.actions)
        store.append_rows("data", make_batch(16, 5))
        dirty_plan = engine.plan_for(query)
        dirty = [p.dirty for p in store.table("data").partitions]
        assert any(dirty)
        for flag, action in zip(dirty, dirty_plan.actions):
            assert action == (SCAN if flag else SYNOPSIS)
        value, _ = engine.execute(query)
        assert value == engine.ground_truth(query)
        pipeline.flush()
        assert engine.plan_for(query).n_covered == len(plan.actions)

    def test_skip_survives_only_when_delta_is_also_disjoint(self):
        from repro.baselines.exact import ExactEngine
        from repro.engine.pruning import SCAN, SKIP

        table = make_batch(200, 7, lo=0.0, hi=10.0)
        store, pipeline = ingest_store(table=table)
        engine = ExactEngine(store)
        query = AnalyticsQuery(
            "data",
            RangeSelection(("x0", "x1"), (500.0, 500.0), (600.0, 600.0)),
            Count(),
        )
        plan = engine.plan_for(query)
        assert plan.n_skipped == len(plan.actions)
        # Disjoint delta (values 0..10): SKIP is still provably safe.
        store.append_rows("data", make_batch(12, 8, lo=0.0, hi=10.0))
        assert engine.plan_for(query).n_skipped == len(plan.actions)
        # Overlapping delta: the skip must downgrade to a scan.
        store.append_rows("data", make_batch(12, 9, lo=550.0, hi=560.0))
        downgraded = engine.plan_for(query)
        assert SCAN in downgraded.actions
        value, _ = engine.execute(query)
        assert value == 12.0
        pipeline.flush()
        verify_store(store)

    def test_columnar_fast_path_disabled_while_dirty(self):
        from repro.common.accounting import CostMeter

        table = make_table(400)
        store, pipeline = ingest_store(layout="column", table=table)
        store.append_rows("data", make_batch(10, 3))
        dirty = [p for p in store.table("data").partitions if p.dirty]
        assert dirty
        with pytest.raises(StorageError):
            store.read_columns(dirty[0], ("x0",), CostMeter())
        pipeline.flush()
        assert store.read_columns(dirty[0], ("x0",), CostMeter()) is not None

    def test_parallel_scan_matches_serial_on_dirty_store(self):
        from repro.baselines.exact import ExactEngine
        from repro.parallel import ScanExecutor

        table = make_table(600)
        store, _ = ingest_store(table=table)
        store.append_rows("data", make_batch(31, 13))
        store.delete_rows("data", lambda t: t.column("x1") > 90.0)
        query = AnalyticsQuery(
            "data",
            RangeSelection(("x0", "x1"), (0.0, 0.0), (80.0, 80.0)),
            Sum("x0"),
        )
        serial, _ = ExactEngine(store).execute(query)
        with ScanExecutor(workers=4) as executor:
            parallel, _ = ExactEngine(store, executor=executor).execute(query)
        assert parallel == serial


# ---------------------------------------------------------------------------
# Crash consistency and recovery
# ---------------------------------------------------------------------------
class TestRecovery:
    def test_recovery_replays_synced_prefix_only(self):
        table = make_table(300)
        store, pipeline = ingest_store(table=table)
        reference = DistributedStore(ClusterTopology.single_datacenter(4))
        reference.put_table(table, partitions_per_node=2)

        durable = make_batch(20, 31)
        store.append_rows("data", durable)
        reference.append_rows("data", durable)
        pipeline.flush()  # synced + compacted: survives any crash
        volatile = make_batch(15, 32)
        store.append_rows("data", volatile)  # never synced: must be lost

        pipeline.crash()
        report = store.recover()
        assert report.synopses_ok and report.columnar_ok
        assert tables_equal(store_image(store), store_image(reference))
        verify_store(store)

    def test_crash_blocks_writes_until_recovered(self):
        store, pipeline = ingest_store(table=make_table(100))
        pipeline.crash()
        with pytest.raises(WriteError):
            store.append_rows("data", make_batch(5, 1))
        with pytest.raises(WriteError):
            pipeline.advance(1.0)
        store.recover()
        assert store.ingest.append("data", make_batch(5, 1)) > 0

    def test_recover_without_ingest_raises_recovery_error(self):
        store = DistributedStore(ClusterTopology.single_datacenter(2))
        with pytest.raises(RecoveryError):
            store.recover()

    def test_torn_wal_tail_is_discarded_on_recovery(self):
        store, pipeline = ingest_store(table=make_table(200))
        injector = FaultInjector(seed=5)
        store.attach_faults(injector)
        store.append_rows("data", make_batch(10, 41))
        pipeline.flush()
        durable_image = store_image(store)
        store.append_rows("data", make_batch(10, 42))
        torn = pipeline.crash()
        assert torn > 0  # the seeded cut wrote a partial frame
        report = store.recover()
        assert report.torn_bytes == torn
        assert tables_equal(store_image(store), durable_image)

    def test_corrupted_wal_record_truncates_replay(self):
        store, pipeline = ingest_store(
            table=make_table(200), epoch_seconds=100.0
        )
        store.ingest.append("data", make_batch(10, 1))
        pipeline.wal.sync()  # durable but not compacted
        store.ingest.append("data", make_batch(10, 2))
        pipeline.wal.sync()
        pipeline.crash()
        # Corrupt the second record's tail byte: CRC must reject it and
        # every record after the corruption point.
        pipeline.wal._disk[-1] ^= 0x01
        report = store.recover()
        assert report.torn_bytes > 0
        assert report.records_replayed == 1
        base = 200
        assert store.table("data").n_rows == base + 10
        verify_store(store)

    def test_empty_wal_recovery_restores_checkpoints(self):
        table = make_table(150)
        store, pipeline = ingest_store(table=table)
        image = store_image(store)
        pipeline.crash()
        report = store.recover()
        assert report.records_scanned == 0
        assert report.records_replayed == 0
        assert tables_equal(store_image(store), image)

    def test_crash_mid_compaction_leaves_recoverable_half_merge(self):
        table = make_table(400)
        store, pipeline = ingest_store(table=table)
        injector = FaultInjector(seed=11)
        store.attach_faults(injector)
        store.append_rows("data", make_batch(60, 51))

        # First partition compacts, then the process dies: the WAL is
        # synced, one partition is merged+checkpointed, the rest are not.
        injector.arm_write_crash("compaction", hits=2)
        with pytest.raises(WriteCrashError):
            pipeline.flush()
        assert pipeline.crashed

        report = store.recover()
        assert report.records_replayed >= 1
        # Everything logged before the epoch close was synced by it, so
        # the half-merged epoch recovers completely.
        reference = DistributedStore(ClusterTopology.single_datacenter(4))
        reference.put_table(table, partitions_per_node=2)
        reference.append_rows("data", make_batch(60, 51))
        assert tables_equal(store_image(store), store_image(reference))
        verify_store(store)
        # And the next epoch close finishes the merge cleanly.
        pipeline.flush()
        assert tables_equal(store_image(store), store_image(reference))

    def test_double_recover_is_idempotent(self):
        store, pipeline = ingest_store(table=make_table(250))
        store.append_rows("data", make_batch(20, 61))
        pipeline.flush()
        store.append_rows("data", make_batch(20, 62))
        pipeline.crash()
        first = store.recover()
        image = store_image(store)
        second = store.recover()
        assert tables_equal(store_image(store), image)
        assert second.durable_lsn == first.durable_lsn
        assert second.torn_bytes == 0

    def test_transient_sync_faults_retry_with_backoff(self):
        store, pipeline = ingest_store(table=make_table(100))
        injector = FaultInjector(seed=3)
        store.attach_faults(injector)
        store.append_rows("data", make_batch(10, 71))
        injector.inject_write_faults("wal_sync", count=2)
        clock_before = pipeline.clock
        pipeline.flush()
        assert pipeline.n_retries == 2
        assert pipeline.clock > clock_before  # backoff advanced the clock
        assert injector.n_write_faults == 2
        assert pipeline.pending_delta_rows == 0

    def test_retry_exhaustion_surfaces_write_error_and_preserves_deltas(self):
        store, pipeline = ingest_store(table=make_table(100))
        injector = FaultInjector(seed=3)
        store.attach_faults(injector)
        store.append_rows("data", make_batch(10, 72))
        injector.inject_write_faults(
            "wal_sync", count=pipeline.config.retry_limit + 5
        )
        with pytest.raises(WriteError):
            pipeline.flush()
        # Nothing lost: the staged writes survive for the next attempt.
        assert pipeline.pending_delta_rows == 10
        pipeline.flush()  # remaining armed faults fit the retry budget
        assert pipeline.pending_delta_rows == 0


# ---------------------------------------------------------------------------
# Satellite 2: bounded shared-memory republish after compaction
# ---------------------------------------------------------------------------
class TestRepublishBound:
    def test_republish_bytes_bounded_by_mutated_partitions(self):
        from repro.parallel.procpool import SharedPartitionStore

        table = make_table(800)
        store, pipeline = ingest_store(table=table)
        partitions = store.table("data").partitions
        shm = SharedPartitionStore()
        try:
            for partition in partitions:
                shm.ensure(partition)
            assert shm.republish_bytes == 0

            # A small batch spreads over a strict subset of the 8
            # partitions, so compaction must leave the rest untouched.
            store.append_rows("data", make_batch(3, 19))
            pipeline.flush()
            mutated = [p for p in partitions if p.generation > 0]
            untouched = [p for p in partitions if p.generation == 0]
            assert mutated and untouched

            # Staged-writes-never-bump-generation + compaction's single
            # bump mean the lazy republish touches exactly the mutated
            # partitions — never the whole table.
            for partition in partitions:
                shm.ensure(partition)
            mutated_footprint = sum(
                shm._segments[(p.table_name, p.index)].nbytes
                for p in mutated
            )
            assert shm.republish_bytes > 0
            assert shm.republish_bytes <= mutated_footprint
            # The untouched partitions kept their original segments.
            shm.republish_bytes = 0
            for partition in untouched:
                shm.ensure(partition)
            assert shm.republish_bytes == 0
        finally:
            shm.close()


# ---------------------------------------------------------------------------
# Session facade + per-epoch maintenance
# ---------------------------------------------------------------------------
class TestSessionIngest:
    def test_session_requires_opt_in(self):
        session = SEASession(n_nodes=2)
        assert session.ingest is None
        with pytest.raises(ConfigurationError):
            session.append_rows("data", make_batch(1, 1))
        with pytest.raises(ConfigurationError):
            session.flush()

    def test_append_advance_flush_roundtrip(self):
        session = SEASession(n_nodes=4, ingest=True, epoch_seconds=0.5)
        session.load_table(make_table(300))
        lsn = session.append_rows("data", make_batch(40, 81))
        assert lsn > 0
        answer = session.sql(
            "SELECT COUNT(*) FROM data "
            "WHERE x0 BETWEEN -1e9 AND 1e9 AND x1 BETWEEN -1e9 AND 1e9"
        )
        assert answer.value == 340.0
        assert session.staleness_bound == 0.5
        session.advance(1.0)
        assert session.ingest.pending_delta_rows == 0
        deleted = session.delete_rows("data", lambda t: t.column("x0") > 1e8)
        assert deleted == 0
        session.flush()

    def test_epoch_close_invalidates_overlapping_quanta(self):
        session = SEASession(n_nodes=4, ingest=True, epoch_seconds=1.0)
        session.load_table(make_table(2000, seed=5))
        invalidations = []
        original = session.agent.notify_data_update
        session.agent.notify_data_update = lambda *a, **k: (
            invalidations.append(a) or original(*a, **k)
        )
        session.append_rows("data", make_batch(10, 91, lo=40.0, hi=50.0))
        assert invalidations == []  # staged, not yet epoch-closed
        session.flush()
        assert len(invalidations) == 1
        name, lows, highs = invalidations[0]
        assert name == "data"
        # x0/x1 dims carry the write range; the value dim is [0, 1].
        assert len(lows) == 3 and len(highs) == 3
        assert all(40.0 <= v <= 50.0 for v in (lows[0], lows[1], highs[0], highs[1]))

    def test_profile_reports_delta_rows(self):
        session = SEASession(n_nodes=2, ingest=True)
        session.attach_observer()
        session.load_table(make_table(200))
        session.append_rows("data", make_batch(12, 95))
        answer = session.sql(
            "SELECT COUNT(*) FROM data "
            "WHERE x0 BETWEEN -1e9 AND 1e9 AND x1 BETWEEN -1e9 AND 1e9"
        )
        profile = answer.profile
        assert sum(p.delta_rows for p in profile.partitions) == 12
        rendered = profile.render()
        assert "delta=" in rendered
        session.flush()
        answer2 = session.sql(
            "SELECT COUNT(*) FROM data "
            "WHERE x0 BETWEEN -1e9 AND 1e9 AND x1 BETWEEN -1e9 AND 1e9"
        )
        assert sum(p.delta_rows for p in answer2.profile.partitions) == 0

    def test_session_crash_recover_roundtrip(self):
        session = SEASession(n_nodes=4, ingest=True)
        session.load_table(make_table(300))
        session.append_rows("data", make_batch(25, 97))
        session.flush()
        session.append_rows("data", make_batch(99, 98))
        session.ingest.crash()
        report = session.recover()
        assert report.synopses_ok and report.columnar_ok
        answer = session.sql(
            "SELECT COUNT(*) FROM data "
            "WHERE x0 BETWEEN -1e9 AND 1e9 AND x1 BETWEEN -1e9 AND 1e9"
        )
        assert answer.value == 325.0


class TestSqlManyOverDirtyDeltas:
    def _build(self):
        """Two identically-prepared ingest sessions with dirty deltas."""
        from repro.core import AgentConfig

        sessions = []
        for _ in range(2):
            session = SEASession(
                n_nodes=4,
                ingest=True,
                epoch_seconds=100.0,  # nothing compacts during the test
                config=AgentConfig(training_budget=6, error_threshold=0.3),
            )
            session.load_table(make_table(1500, seed=9))
            session.append_rows("data", make_batch(60, 21, lo=10.0, hi=60.0))
            session.delete_rows("data", lambda t: t.column("x0") > 85.0)
            session.append_rows("data", make_batch(40, 22, lo=30.0, hi=90.0))
            assert session.ingest.pending_delta_rows > 0
            sessions.append(session)
        return sessions

    def _statements(self):
        rng = np.random.default_rng(31)
        statements = []
        for _ in range(14):
            x0 = sorted(rng.uniform(0.0, 100.0, 2))
            x1 = sorted(rng.uniform(0.0, 100.0, 2))
            statements.append(
                f"SELECT COUNT(*) FROM data "
                f"WHERE x0 BETWEEN {x0[0]:.4f} AND {x0[1]:.4f} "
                f"AND x1 BETWEEN {x1[0]:.4f} AND {x1[1]:.4f}"
            )
        return statements

    def test_batch_path_matches_sequential_byte_for_byte(self):
        # The batch serving path must read the same base+delta images as
        # per-statement serving: identical values, modes and cost
        # reports while every partition still carries staged writes.
        batch_session, seq_session = self._build()
        statements = self._statements()
        batched = batch_session.sql_many(statements)
        sequential = [seq_session.sql(s) for s in statements]
        for b, s in zip(batched, sequential):
            assert b.mode == s.mode
            assert np.array_equal(np.asarray(b.value), np.asarray(s.value))
            assert b.cost.__dict__ == s.cost.__dict__
        # Mixed modes prove the comparison covered the learned paths,
        # not just exact scans.
        assert len({a.mode for a in batched}) >= 2
        # Both sessions still have uncompacted deltas afterwards.
        assert batch_session.ingest.pending_delta_rows > 0
        assert seq_session.ingest.pending_delta_rows > 0
        batch_session.close()
        seq_session.close()
