"""Tests for the high-level SEASession facade."""

import numpy as np
import pytest

from repro import SEASession
from repro.core import AgentConfig
from repro.data import Table, gaussian_mixture_table


@pytest.fixture(scope="module")
def session_world():
    session = SEASession(
        n_nodes=4,
        config=AgentConfig(training_budget=200, error_threshold=0.25),
    )
    table = gaussian_mixture_table(
        20_000, dims=("x0", "x1"), seed=9, name="data"
    )
    session.load_table(table)
    return session, table


def sql_around(center, width):
    return (
        f"SELECT COUNT(*) FROM data "
        f"WHERE x0 BETWEEN {center[0]-width:.4f} AND {center[0]+width:.4f} "
        f"AND x1 BETWEEN {center[1]-width:.4f} AND {center[1]+width:.4f}"
    )


class TestSession:
    def test_sql_roundtrip_answers_exactly_in_training(self, session_world):
        session, table = session_world
        answer = session.sql(sql_around([50.0, 50.0], 20.0))
        assert answer.mode in ("train", "fallback", "predicted")
        if answer.mode != "predicted":
            from repro.queries import parse_query

            truth = parse_query(sql_around([50.0, 50.0], 20.0)).evaluate(table)
            assert answer.value == truth

    def test_session_learns_to_serve_datalessly(self, session_world):
        session, table = session_world
        rng = np.random.default_rng(10)
        anchor = table.matrix(("x0", "x1"))[5]
        for _ in range(400):
            center = anchor + rng.normal(scale=2.0, size=2)
            session.sql(sql_around(center, float(rng.uniform(5, 9))))
        stats = session.stats()
        assert stats["dataless_fraction"] > 0.05
        assert stats["estimated_seconds_saved"] > 0.0
        assert stats["bytes_scanned_total"] > 0.0

    def test_explanation_available(self, session_world):
        session, table = session_world
        answer = session.sql(sql_around([50.0, 50.0], 10.0))
        explanation = answer.explanation
        assert explanation.sweep.shape[0] >= 4
        assert np.all(np.isfinite(explanation.answers))

    def test_model_persistence_roundtrip(self, session_world, tmp_path):
        session, table = session_world
        path = str(tmp_path / "session.sea")
        n_bytes = session.save_models(path)
        assert n_bytes > 0
        fresh = SEASession(
            n_nodes=4,
            config=AgentConfig(training_budget=0, error_threshold=0.25),
        )
        fresh.load_table(
            gaussian_mixture_table(20_000, dims=("x0", "x1"), seed=9,
                                   name="data")
        )
        assert fresh.load_models(path) >= 1

    def test_csv_roundtrip(self, tmp_path):
        session = SEASession(n_nodes=2)
        original = gaussian_mixture_table(500, seed=11, name="data")
        path = str(tmp_path / "data.csv")
        original.to_csv(path)
        loaded = session.load_csv(path, name="data")
        assert loaded.n_rows == 500
        assert set(loaded.column_names) == set(original.column_names)
        assert np.allclose(
            np.sort(loaded["x0"]), np.sort(original["x0"]), rtol=1e-9
        )
        answer = session.sql(
            "SELECT COUNT(*) FROM data WHERE x0 BETWEEN 0 AND 100 "
            "AND x1 BETWEEN 0 AND 100"
        )
        assert answer.value == 500.0

    def test_notify_update_reaches_agent(self, session_world):
        session, _ = session_world
        # Outside every queried region: nothing to invalidate.
        assert session.notify_update("data", [1e6, 1e6], [2e6, 2e6]) == 0


class TestSessionClose:
    def _query(self):
        return (
            "SELECT COUNT(*) FROM data WHERE x0 BETWEEN 0 AND 100 "
            "AND x1 BETWEEN 0 AND 100"
        )

    def test_close_is_idempotent(self):
        session = SEASession(n_nodes=2)
        session.load_table(gaussian_mixture_table(500, seed=5, name="data"))
        session.close()
        assert session.closed
        session.close()  # second close is a no-op, not an error
        assert session.closed

    def test_double_close_with_process_executor(self):
        # Regression: the process pool owns shared-memory segments; a
        # second close must not try to release them again.
        session = SEASession(n_nodes=2, workers=2, executor="process")
        session.load_table(gaussian_mixture_table(800, seed=5, name="data"))
        answer = session.sql(self._query())
        assert answer.value == 800.0
        session.close()
        session.close()
        assert session.closed

    def test_queries_survive_a_closed_pool(self):
        # close() tears down the worker pool, not the engine: serving
        # falls back to the serial path with identical answers.
        session = SEASession(n_nodes=2, workers=2, executor="process")
        session.load_table(gaussian_mixture_table(800, seed=5, name="data"))
        before = session.sql(self._query())
        session.close()
        after = session.sql(self._query())
        assert after.value == before.value
        session.close()

    def test_context_manager_closes_once(self):
        with SEASession(n_nodes=2, workers=2, executor="process") as session:
            session.load_table(
                gaussian_mixture_table(500, seed=5, name="data")
            )
            assert session.sql(self._query()).value == 500.0
        assert session.closed
        session.close()  # still safe after the context exit
