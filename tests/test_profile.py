"""The query flight recorder, SLO monitor and anomaly detector (DESIGN §10).

Four families of guarantees:

* **EXPLAIN** — ``session.explain`` plans without executing: nothing is
  charged, no serving statistic moves, and the predicted serving path
  matches what ``submit`` then actually does.
* **EXPLAIN ANALYZE** — every answer served under an observer carries a
  :class:`QueryProfile` whose plan tree reconciles with the CostMeter
  charges, the pruning counters and the fault history, and whose JSON /
  rendered text are deterministic.
* **Health** — the SLO monitor's burn-rate statuses, the late-attach
  replay, and the accuracy-drift z-score detector.
* **Byte-identity** — a hypothesis property drives identically seeded
  sessions (pruning on/off × faults on/off) at ``workers=1`` vs
  ``workers=4`` and requires identical profile JSONL, event JSONL,
  metrics (minus ``parallel_*``) and spans (minus ``parallel:*``).
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AgentConfig,
    Count,
    InterestProfile,
    SEASession,
    WorkloadGenerator,
    gaussian_mixture_table,
)
from repro.common.errors import ConfigurationError
from repro.faults import FaultInjector, FaultSchedule
from repro.obs import (
    AccuracyDriftMonitor,
    SLOPolicy,
    SLOTarget,
    StackObserver,
)
from repro.obs.profile import EXPLAIN, EXPLAIN_ANALYZE


def _make_session(**kwargs):
    defaults = dict(
        n_nodes=4,
        config=AgentConfig(training_budget=6, error_threshold=0.05, warmup=4),
    )
    defaults.update(kwargs)
    session = SEASession(**defaults)
    table = gaussian_mixture_table(4_000, dims=("x0", "x1"), seed=7, name="data")
    session.load_table(table)
    return session, table


def _workload(table, n=24, seed=13):
    profile = InterestProfile.from_table(table, ("x0", "x1"), 3, seed=11)
    gen = WorkloadGenerator(
        "data", ("x0", "x1"), profile, aggregate=Count(), seed=seed
    )
    return gen.batch(n)


# --------------------------------------------------------------------------
# EXPLAIN: plan without executing
# --------------------------------------------------------------------------
class TestExplain:
    STATEMENT = (
        "SELECT COUNT(*) FROM data WHERE x0 BETWEEN 10 AND 40 "
        "AND x1 BETWEEN 10 AND 40"
    )

    def test_explain_is_plan_only_and_non_mutating(self):
        session, table = _make_session()  # no observer: still works
        for query in _workload(table, n=3):
            session.submit(query)
        before_stats = session.stats()
        before_queries = session.agent.n_queries
        profile = session.explain(self.STATEMENT)
        assert profile.kind == EXPLAIN
        assert session.stats() == before_stats
        assert session.agent.n_queries == before_queries
        # Deterministic: planning twice yields byte-identical JSON.
        assert profile.to_json() == session.explain(self.STATEMENT).to_json()

    def test_explain_covers_every_partition_with_plan_actions(self):
        session, _ = _make_session()
        profile = session.explain(self.STATEMENT)
        stored = session.store.table("data")
        assert profile.pruning is True  # zone maps on by default
        assert profile.n_partitions == len(stored.partitions)
        assert {p.action for p in profile.partitions} <= {
            "scan",
            "skip",
            "synopsis",
        }
        assert profile.bytes_scanned + profile.bytes_saved <= sum(
            p.n_bytes for p in stored.partitions
        )
        text = profile.render()
        assert text.startswith("EXPLAIN Query(")
        assert "ANALYZE" not in text
        assert "plan: table=data" in text

    def test_explain_predicts_the_serving_path_submit_takes(self):
        session, table = _make_session()
        queries = _workload(table, n=10)
        for query in queries:  # past the training budget
            session.submit(query)
        for query in _workload(table, n=4, seed=29):
            expected = session.explain(query)
            served = session.submit(query)
            assert expected.mode == served.mode

    def test_explain_without_pruning_scans_everything(self):
        session, _ = _make_session()
        session.engine.pruning = False
        profile = session.explain(self.STATEMENT)
        assert profile.pruning is False
        assert profile.n_scanned == profile.n_partitions
        assert profile.bytes_saved == 0


# --------------------------------------------------------------------------
# EXPLAIN ANALYZE: plan + actuals on every served answer
# --------------------------------------------------------------------------
@pytest.fixture(scope="module")
def analyzed_run():
    session, table = _make_session()
    observer = session.attach_observer()
    answers = [session.submit(q) for q in _workload(table)]
    answers += session.submit_batch(_workload(table, n=8, seed=17))
    return {"session": session, "observer": observer, "answers": answers}


class TestExplainAnalyze:
    def test_every_answer_carries_a_finished_profile(self, analyzed_run):
        for answer in analyzed_run["answers"]:
            profile = answer.profile
            assert profile.kind == EXPLAIN_ANALYZE
            assert profile.mode == answer.mode
            assert profile.answer == repr(answer.value)
            assert profile.error_threshold == 0.05

    def test_plan_tree_reconciles_with_cost_meter(self, analyzed_run):
        exact_modes = 0
        for answer in analyzed_run["answers"]:
            profile = answer.profile
            assert profile.cost["bytes_scanned"] == round(
                answer.cost.bytes_scanned, 9
            )
            if answer.mode in ("train", "fallback"):
                exact_modes += 1
                # Per-partition read_bytes sum to exactly what the meter
                # charged for this query's scan.
                assert (
                    sum(p.read_bytes for p in profile.partitions)
                    == profile.cost["bytes_scanned"]
                )
                assert profile.morsels == profile.n_scanned
            else:
                assert profile.partitions == []
                assert profile.cost["bytes_scanned"] == 0.0
        assert exact_modes  # the workload exercised the exact path

    def test_phase_times_are_simulated_and_exact_path_has_map(
        self, analyzed_run
    ):
        for answer in analyzed_run["answers"]:
            profile = answer.profile
            for seconds in profile.phases.values():
                assert seconds >= 0.0
            if answer.mode in ("train", "fallback"):
                assert "map" in profile.phases
                assert profile.phases["map"] > 0.0
                assert sum(profile.phases.values()) <= (
                    profile.cost["elapsed_sec"] + 1e-9
                )

    def test_pruning_totals_reconcile_with_metrics(self, analyzed_run):
        metrics = analyzed_run["observer"].metrics.as_dict()
        profiles = [a.profile for a in analyzed_run["answers"]]
        skipped = sum(p.n_skipped for p in profiles)
        covered = sum(p.n_covered for p in profiles)
        assert skipped == metrics.get("pruning_partitions_skipped_total", 0.0)
        assert covered == metrics.get(
            "pruning_partitions_synopsis_total", 0.0
        )

    def test_render_and_json_are_deterministic(self, analyzed_run):
        profile = next(
            a.profile
            for a in analyzed_run["answers"]
            if a.mode in ("train", "fallback")
        )
        assert profile.render() == profile.render()
        text = profile.render()
        assert text.startswith("EXPLAIN ANALYZE Query(")
        assert "plan: table=data" in text
        assert "phases:" in text
        assert "cost:" in text
        assert json.loads(profile.to_json()) == profile.as_dict()

    def test_render_truncates_long_plan_trees(self, analyzed_run):
        profile = next(
            a.profile
            for a in analyzed_run["answers"]
            if a.profile.partitions
        )
        text = profile.render(max_partitions=1)
        assert f"... ({profile.n_partitions - 1} more partitions)" in text

    def test_cache_hits_are_noted(self):
        session, table = _make_session(
            config=AgentConfig(training_budget=60, error_threshold=0.3, warmup=4)
        )
        session.attach_observer()
        profile = InterestProfile.from_table(
            table, ("x0", "x1"), 3, seed=11, hotspot_scale=2.5,
            extent_range=(3, 8),
        )
        gen = WorkloadGenerator(
            "data", ("x0", "x1"), profile, aggregate=Count(), seed=13
        )
        for query in gen.batch(150):
            session.submit(query)
        # Freeze learning: a fallback's learning step would invalidate
        # the signature's cache entries between the two waves.
        session.agent.config.keep_learning_on_fallback = False
        repeats = gen.batch(10)
        first = [session.submit(q).profile for q in repeats]
        second = [session.submit(q).profile for q in repeats]
        # A predicted serve fills the cache; re-submitting the identical
        # query then hits it, and the profile says so.
        assert any(p.mode == "predicted" for p in first)
        hits_noted = sum(1 for p in second if p.cache_hit is True)
        assert hits_noted == sum(1 for p in first if p.mode == "predicted")
        metrics = session.observer.metrics.as_dict()
        assert hits_noted == metrics.get("sea_answer_cache_hits_total", 0.0)

    def test_recorder_capacity_bounds_retention_not_answers(self):
        session, table = _make_session()
        observer = session.attach_observer(StackObserver(profile_capacity=2))
        answers = [session.submit(q) for q in _workload(table, n=5)]
        assert all(a.profile is not None for a in answers)  # still returned
        assert len(observer.profiles) == 2
        assert observer.profiles.n_dropped == 3
        assert observer.snapshot()["obs_profiles_dropped"] == 3

    def test_detached_answer_profile_raises_clearly(self):
        session, table = _make_session()  # no observer
        answer = session.submit(_workload(table, n=1)[0])
        with pytest.raises(ConfigurationError, match="no profile"):
            answer.profile


# --------------------------------------------------------------------------
# Fault history in profiles
# --------------------------------------------------------------------------
class TestFaultProfiles:
    def _faulty_session(self, replication, schedule_fn, seed=23):
        session, table = _make_session(replication=replication)
        session.engine.failure_mode = "degrade"
        nodes = list(session.topology.node_ids)
        session.store.attach_faults(
            FaultInjector(schedule_fn(nodes), seed=seed)
        )
        session.attach_observer()
        return session, table

    def test_fault_counters_reconcile_with_metrics(self):
        session, table = self._faulty_session(
            2,
            lambda nodes: FaultSchedule()
            .crash(nodes[1])
            .flaky(nodes[2], 0.4),
        )
        profiles = [
            session.submit(q).profile for q in _workload(table, n=12)
        ]
        metrics = session.observer.metrics.as_dict()

        def metric_total(prefix):
            return sum(
                v for k, v in metrics.items() if k.startswith(prefix)
            )

        assert sum(p.fault_retries for p in profiles) == metric_total(
            "fault_retries_total"
        )
        assert sum(p.fault_probes for p in profiles) == metric_total(
            "fault_probes_total"
        )
        assert sum(p.fault_failovers for p in profiles) == metric_total(
            "fault_failovers_total"
        )
        # The crashed primary forces real fault handling to profile.
        assert any(
            p.fault_probes or p.fault_failovers or p.fault_retries
            for p in profiles
        )

    def test_degraded_answers_profile_lost_partitions_and_bounds(self):
        session, table = self._faulty_session(
            1, lambda nodes: FaultSchedule().crash(nodes[1])
        )
        profiles = [
            session.submit(q).profile for q in _workload(table, n=8)
        ]
        degraded = [p for p in profiles if p.degraded is not None]
        assert degraded
        for profile in degraded:
            assert profile.n_lost >= 1
            assert profile.n_lost == len(profile.degraded["lost"])
            assert 0.0 <= profile.degraded["coverage"] < 1.0
            lost_rows = [p for p in profile.partitions if p.action == "lost"]
            assert all(p.read_bytes == 0 for p in lost_rows)
            text = profile.render()
            assert "degraded: coverage=" in text
            assert " lost=" in text  # the plan line counts lost partitions


# --------------------------------------------------------------------------
# SLO health and anomaly detection
# --------------------------------------------------------------------------
class TestSLOHealth:
    def test_tight_latency_target_breaches(self):
        session, table = _make_session()
        session.attach_slo(
            SLOPolicy(default=SLOTarget(latency_sec=1e-12, objective=0.95))
        )
        for query in _workload(table, n=6):
            session.submit(query)
        snapshot = session.health()
        assert snapshot["status"] == "breach"
        info = snapshot["classes"]["count"]
        assert info["violation_rate"] == 1.0
        assert info["burn_rate"] >= info["violation_rate"]

    def test_disabled_targets_stay_ok(self):
        session, table = _make_session()
        session.attach_slo(SLOPolicy(default=SLOTarget(latency_sec=None)))
        for query in _workload(table, n=6):
            session.submit(query)
        snapshot = session.health()
        assert snapshot["status"] == "ok"
        assert snapshot["queries_recorded"] == 6
        assert snapshot["clock_sec"] > 0.0

    def test_late_attach_replays_history_identically(self):
        live, table = _make_session()
        live.attach_slo()
        late, _ = _make_session()
        for q1, q2 in zip(_workload(table, n=8), _workload(table, n=8)):
            live.submit(q1)
            late.submit(q2)
        assert late.health() == live.health()

    def test_status_transitions_emit_events(self):
        session, table = _make_session()
        observer = session.attach_observer()
        session.attach_slo(
            SLOPolicy(default=SLOTarget(latency_sec=1e-12, objective=0.95))
        )
        for query in _workload(table, n=4):
            session.submit(query)
        session.health()
        events = [e.as_dict() for e in observer.events.events]
        statuses = [e for e in events if e["type"] == "slo_status"]
        assert statuses  # at least the none -> breach transition
        assert statuses[0]["previous"] == "none"
        assert statuses[-1]["status"] == "breach"
        healths = [e for e in events if e["type"] == "slo_health"]
        assert healths and healths[-1]["status"] == "breach"


class TestAccuracyAnomaly:
    def test_outlier_fires_after_stable_window(self):
        monitor = AccuracyDriftMonitor(window=32, z_threshold=3.5, min_samples=12)
        for i in range(16):
            assert monitor.observe("sig", 0, 0.01 + 0.001 * (i % 3)) is None
        event = monitor.observe("sig", 0, 1.0)
        assert event is not None
        assert event.signature == "sig"
        assert abs(event.zscore) > 3.5
        assert event.n >= 12
        summary = monitor.summary()
        assert summary["accuracy_anomalies"] == 1.0
        assert summary["accuracy_quanta_flagged"] == 1.0

    def test_no_firing_before_min_samples(self):
        monitor = AccuracyDriftMonitor(min_samples=12)
        assert monitor.observe("sig", 0, 100.0) is None
        assert monitor.observe("sig", 0, 0.0) is None

    def test_quanta_tracked_independently(self):
        monitor = AccuracyDriftMonitor(min_samples=2, z_threshold=3.0)
        for _ in range(8):
            monitor.observe("sig", 0, 0.01)
            monitor.observe("sig", 1, 5.0)
        # Quantum 1's large residuals are its own normal, not an anomaly.
        assert monitor.observe("sig", 1, 5.0) is None
        assert monitor.summary()["accuracy_quanta_tracked"] == 2.0

    def test_session_stats_carry_anomaly_counters(self):
        session, table = _make_session()
        for query in _workload(table, n=10):
            session.submit(query)
        stats = session.stats()
        assert stats["accuracy_residuals_observed"] >= 0.0
        assert "accuracy_anomalies" in stats


# --------------------------------------------------------------------------
# Export ergonomics
# --------------------------------------------------------------------------
class TestExportErgonomics:
    def _observed_session(self):
        session, table = _make_session()
        session.attach_observer()
        for query in _workload(table, n=4):
            session.submit(query)
        return session

    def test_exports_create_parent_directories(self, tmp_path):
        session = self._observed_session()
        path = session.export_profiles(str(tmp_path / "a" / "b" / "p.jsonl"))
        lines = open(path).read().splitlines()
        assert len(lines) == len(session.observer.profiles)
        for line in lines:
            assert json.loads(line)["kind"] == EXPLAIN_ANALYZE

    def test_exports_refuse_silent_overwrite(self, tmp_path):
        session = self._observed_session()
        target = str(tmp_path / "trace.json")
        session.export_trace(target)
        with pytest.raises(ConfigurationError, match="overwrite"):
            session.export_trace(target)
        assert session.export_trace(target, overwrite=True) == target

    def test_export_observability_writes_every_surface(self, tmp_path):
        session = self._observed_session()
        out = str(tmp_path / "dump")
        paths = session.export_observability(out)
        assert sorted(paths) == [
            "events",
            "health",
            "metrics",
            "profiles",
            "trace",
        ]
        health = json.load(open(paths["health"]))
        assert health["status"] in ("ok", "warn", "breach")
        assert "anomaly" in health
        with pytest.raises(ConfigurationError, match="overwrite"):
            session.export_observability(out)
        session.export_observability(out, overwrite=True)

    def test_export_without_observer_raises(self, tmp_path):
        session, _ = _make_session()
        with pytest.raises(ConfigurationError, match="observer"):
            session.export_profiles(str(tmp_path / "p.jsonl"))


# --------------------------------------------------------------------------
# Byte-identity: profiles/events/metrics/spans at any worker count
# --------------------------------------------------------------------------
def _observability_fingerprint(workers, seed, pruning, faulty):
    """Everything observability must keep worker-independent."""
    session = SEASession(
        n_nodes=4,
        replication=2 if faulty else 1,
        config=AgentConfig(training_budget=6, error_threshold=0.05, warmup=4),
        workers=workers,
    )
    try:
        table = gaussian_mixture_table(
            3_000, dims=("x0", "x1"), seed=seed, name="data"
        )
        session.load_table(table)
        session.engine.pruning = pruning
        if faulty:
            session.engine.failure_mode = "degrade"
            nodes = list(session.topology.node_ids)
            schedule = (
                FaultSchedule().crash(nodes[1]).flaky(nodes[2], 0.3)
            )
            session.store.attach_faults(
                FaultInjector(schedule, seed=seed + 1)
            )
        observer = session.attach_observer()
        queries = _workload(table, n=12, seed=seed + 2)
        for query in queries[:6]:
            session.submit(query)
        session.submit_batch(queries[6:])
        health = session.health()
        metrics = {
            k: v
            for k, v in observer.metrics.as_dict().items()
            if not k.startswith("parallel_")
        }
        spans = [
            (s.name, s.category, s.track, s.depth,
             round(s.start, 9), round(s.duration, 9))
            for s in observer.trace.spans
            if not s.name.startswith("parallel")
        ]
        return {
            "profiles": observer.profiles.to_jsonl(),
            "renders": [p.render() for p in observer.profiles.profiles],
            "events": observer.events.to_jsonl(),
            "metrics": metrics,
            "spans": spans,
            "health": health,
        }
    finally:
        session.close()


class TestProfileByteIdentity:
    @given(
        seed=st.integers(0, 30),
        pruning=st.booleans(),
        faulty=st.booleans(),
    )
    @settings(max_examples=6, deadline=None)
    def test_workers_never_change_observability(self, seed, pruning, faulty):
        serial = _observability_fingerprint(1, seed, pruning, faulty)
        parallel = _observability_fingerprint(4, seed, pruning, faulty)
        assert serial == parallel
