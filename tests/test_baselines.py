"""Tests for the baseline engines: exact, BlinkDB-like, Canopy-like, DBL-like."""

import numpy as np
import pytest

from repro.baselines import DBLEngine, ExactEngine, SamplingAQPEngine, SegmentStatsCache
from repro.baselines.sampling import uniform_sample_error_bound
from repro.cluster import ClusterTopology, DistributedStore
from repro.common.errors import ConfigurationError
from repro.data import gaussian_mixture_table
from repro.queries import AnalyticsQuery, Count, Mean, RangeSelection, Std, Sum


@pytest.fixture(scope="module")
def world():
    topo = ClusterTopology.single_datacenter(4)
    store = DistributedStore(topo)
    table = gaussian_mixture_table(20000, dims=("x0", "x1"), seed=3, name="data")
    store.put_table(table, partitions_per_node=2)
    return store, table


def range_query(lo, hi, aggregate=None):
    return AnalyticsQuery(
        "data",
        RangeSelection(("x0", "x1"), [lo, lo], [hi, hi]),
        aggregate or Count(),
    )


class TestExactEngine:
    def test_answers_match_ground_truth(self, world):
        store, table = world
        engine = ExactEngine(store)
        for aggregate in (Count(), Mean("value"), Sum("value")):
            query = range_query(20.0, 70.0, aggregate)
            answer, _ = engine.execute(query)
            assert answer == pytest.approx(query.evaluate(table))

    def test_cost_scans_whole_table(self, world):
        store, table = world
        engine = ExactEngine(store)
        _, report = engine.execute(range_query(20.0, 30.0))
        assert report.bytes_scanned == store.table("data").n_bytes
        assert report.nodes_touched >= 4

    def test_ground_truth_no_cost(self, world):
        store, table = world
        engine = ExactEngine(store)
        query = range_query(10.0, 90.0)
        assert engine.ground_truth(query) == pytest.approx(query.evaluate(table))


class TestSamplingAQP:
    def test_count_estimate_within_statistical_bound(self, world):
        store, table = world
        engine = SamplingAQPEngine(store, sample_rate=0.1, seed=0)
        engine.build_sample("data", ["x0", "x1"])
        query = range_query(20.0, 80.0)
        truth = query.evaluate(table)
        answer, _ = engine.execute(query)
        n_sampled = int(truth * 0.1)
        bound = 4 * uniform_sample_error_bound(max(n_sampled, 1))
        assert abs(answer - truth) / truth < max(bound, 0.2)

    def test_selective_queries_are_less_accurate(self, world):
        """The paper's criticism: accuracy degrades with selectivity."""
        store, table = world
        engine = SamplingAQPEngine(store, sample_rate=0.02, seed=1)
        engine.build_sample("data", ["x0", "x1"])
        rng = np.random.default_rng(2)

        def mean_rel_error(width, n=40):
            errors = []
            for _ in range(n):
                lo = rng.uniform(10, 90 - width)
                query = range_query(lo, lo + width)
                truth = query.evaluate(table)
                answer, _ = engine.execute(query)
                errors.append(abs(answer - truth) / max(truth, 1.0))
            return np.mean(errors)

        assert mean_rel_error(3.0) > mean_rel_error(40.0)

    def test_cost_proportional_to_sample_not_table(self, world):
        store, table = world
        engine = SamplingAQPEngine(store, sample_rate=0.05, seed=3)
        engine.build_sample("data", ["x0", "x1"])
        _, report = engine.execute(range_query(20.0, 60.0))
        assert report.bytes_scanned < store.table("data").n_bytes / 5

    def test_sample_bytes_reported(self, world):
        store, _ = world
        engine = SamplingAQPEngine(store, sample_rate=0.05, seed=4)
        n = engine.build_sample("data", ["x0", "x1"])
        assert engine.sample_bytes("data") > n * 8

    def test_mean_answers_unscaled(self, world):
        store, table = world
        engine = SamplingAQPEngine(store, sample_rate=0.2, seed=5)
        engine.build_sample("data", ["x0", "x1"])
        query = range_query(10.0, 90.0, Mean("value"))
        answer, _ = engine.execute(query)
        assert answer == pytest.approx(query.evaluate(table), abs=1.0)

    def test_query_without_sample_rejected(self, world):
        store, _ = world
        engine = SamplingAQPEngine(store, seed=6)
        with pytest.raises(ConfigurationError):
            engine.execute(range_query(0.0, 10.0))

    def test_invalid_rate_rejected(self, world):
        store, _ = world
        with pytest.raises(ConfigurationError):
            SamplingAQPEngine(store, sample_rate=1.5)


class TestSegmentStatsCache:
    def make_cache(self, store, cells=16):
        return SegmentStatsCache(store, "data", ("x0", "x1"), cells_per_dim=cells)

    def test_answers_are_exact(self, world):
        store, table = world
        cache = self.make_cache(store)
        for aggregate in (Count(), Sum("value"), Mean("value"), Std("value")):
            query = range_query(25.0, 75.0, aggregate)
            answer, _ = cache.execute(query)
            assert answer == pytest.approx(query.evaluate(table), rel=1e-9)

    def test_repeat_queries_get_cheaper(self, world):
        store, _ = world
        cache = self.make_cache(store)
        query = range_query(20.0, 70.0)
        _, first = cache.execute(query)
        _, second = cache.execute(query)
        assert second.bytes_scanned < first.bytes_scanned
        assert cache.hits > 0

    def test_footprint_grows_with_touched_regions(self, world):
        """The paper's criticism: cache state grows with exploration."""
        store, _ = world
        cache = self.make_cache(store)
        cache.execute(range_query(10.0, 30.0))
        small = cache.n_cached_cells
        cache.execute(range_query(50.0, 95.0))
        assert cache.n_cached_cells > small
        assert cache.state_bytes() > 0

    def test_only_range_selections_supported(self, world):
        store, _ = world
        cache = self.make_cache(store)
        from repro.queries import RadiusSelection

        bad = AnalyticsQuery(
            "data", RadiusSelection(("x0", "x1"), [50, 50], 5.0), Count()
        )
        with pytest.raises(ConfigurationError):
            cache.execute(bad)


class TestDBLEngine:
    def test_learning_reduces_error_on_seen_workload(self, world):
        """DBL corrects the sample's systematic error on (re)seen queries.

        The paper notes such approaches "typically only benefit previously
        seen queries" — so the test evaluates on the training workload
        itself, where the correction must clearly help.
        """
        store, table = world
        aqp = SamplingAQPEngine(store, sample_rate=0.02, seed=7)
        aqp.build_sample("data", ["x0", "x1"])
        dbl = DBLEngine(aqp, min_training=15, refit_every=5)
        rng = np.random.default_rng(8)
        queries = [
            range_query(lo, lo + 20) for lo in rng.uniform(20, 50, size=40)
        ]
        truths = [q.evaluate(table) for q in queries]

        def eval_error():
            errors = []
            for query, truth in zip(queries, truths):
                answer, _ = dbl.execute(query)
                errors.append(abs(answer - truth) / max(truth, 1.0))
            return np.mean(errors)

        before = eval_error()
        for query, truth in zip(queries, truths):
            dbl.learn(query, truth)
        after = eval_error()
        assert after < before

    def test_state_grows_linearly_with_history(self, world):
        """The paper's criticism: DBL stores every past query."""
        store, table = world
        aqp = SamplingAQPEngine(store, sample_rate=0.02, seed=9)
        aqp.build_sample("data", ["x0", "x1"])
        dbl = DBLEngine(aqp, min_training=5)
        base = dbl.state_bytes()
        for i in range(50):
            query = range_query(20.0 + i * 0.1, 40.0 + i * 0.1)
            dbl.learn(query, query.evaluate(table))
        grown = dbl.state_bytes()
        assert grown - base >= 50 * 8  # at least one stored float per query
        assert dbl.n_observed == 50
