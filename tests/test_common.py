"""Unit tests for repro.common: accounting, rng, validation."""

import numpy as np
import pytest

from repro.common import (
    ConfigurationError,
    CostMeter,
    CostRates,
    CostReport,
    make_rng,
    require,
    require_in_range,
    require_matrix,
    require_positive,
    spawn_rngs,
)


class TestCostRates:
    def test_defaults_positive(self):
        rates = CostRates()
        assert rates.disk_bytes_per_sec > 0

    def test_invalid_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            CostRates(disk_bytes_per_sec=0)


class TestCostMeter:
    def test_scan_charges_bytes_and_time(self):
        meter = CostMeter()
        seconds = meter.charge_scan("n1", 100_000_000, rows=10)
        assert seconds == pytest.approx(1.0)
        report = meter.freeze()
        assert report.bytes_scanned == 100_000_000
        assert report.rows_examined == 10
        assert report.node_sec == pytest.approx(1.0)

    def test_nodes_touched_counts_unique(self):
        meter = CostMeter()
        meter.charge_scan("n1", 10)
        meter.charge_scan("n1", 10)
        meter.charge_scan("n2", 10)
        assert meter.freeze().nodes_touched == 2

    def test_wan_vs_lan_transfer(self):
        meter = CostMeter()
        lan = meter.charge_transfer("a", "b", 10**9, wan=False)
        wan = meter.charge_transfer("a", "b", 10**9, wan=True)
        assert wan > lan
        report = meter.freeze()
        assert report.bytes_shipped_lan == 10**9
        assert report.bytes_shipped_wan == 10**9
        assert report.messages == 2

    def test_advance_rejects_negative(self):
        meter = CostMeter()
        with pytest.raises(ValueError):
            meter.advance(-1.0)

    def test_elapsed_accumulates(self):
        meter = CostMeter()
        meter.advance(1.0)
        meter.advance(0.5)
        assert meter.freeze().elapsed_sec == pytest.approx(1.5)

    def test_layers_and_tasks(self):
        meter = CostMeter()
        meter.charge_layers("n1", 5)
        meter.charge_task_startup("n1", count=3)
        report = meter.freeze()
        assert report.layers_crossed == 5
        assert report.tasks_launched == 3

    def test_freeze_is_snapshot(self):
        meter = CostMeter()
        meter.charge_scan("n1", 100)
        first = meter.freeze()
        meter.charge_scan("n2", 100)
        assert first.bytes_scanned == 100
        assert meter.freeze().bytes_scanned == 200


class TestCostReport:
    def test_parallel_merge_takes_max_elapsed(self):
        a = CostReport(elapsed_sec=2.0, node_sec=2.0, bytes_scanned=10)
        b = CostReport(elapsed_sec=3.0, node_sec=3.0, bytes_scanned=20)
        merged = a.merged_parallel(b)
        assert merged.elapsed_sec == 3.0
        assert merged.node_sec == 5.0
        assert merged.bytes_scanned == 30

    def test_sequential_merge_adds_elapsed(self):
        a = CostReport(elapsed_sec=2.0)
        b = CostReport(elapsed_sec=3.0)
        assert a.merged_sequential(b).elapsed_sec == 5.0

    def test_dollars_includes_wan_egress(self):
        report = CostReport(node_sec=3600.0, bytes_shipped_wan=10**9)
        rates = CostRates()
        expected = 0.10 + rates.dollars_per_wan_gb
        assert report.dollars(rates) == pytest.approx(expected)

    def test_total_folds_reports(self):
        reports = [CostReport(elapsed_sec=1.0, node_sec=1.0)] * 3
        seq = CostMeter.total(reports, parallel=False)
        par = CostMeter.total(reports, parallel=True)
        assert seq.elapsed_sec == 3.0
        assert par.elapsed_sec == 1.0
        assert seq.node_sec == par.node_sec == 3.0

    def test_as_dict_fields(self):
        d = CostReport().as_dict()
        assert "elapsed_sec" in d and "bytes_scanned" in d

    def test_total_of_empty_iterable_is_zero_report(self):
        for parallel in (False, True):
            report = CostMeter.total([], parallel=parallel)
            assert report.elapsed_sec == 0.0
            assert report.node_sec == 0.0
            assert report.bytes_scanned == 0

    def test_total_of_single_report_is_identity(self):
        one = CostReport(
            elapsed_sec=2.5, node_sec=4.0, bytes_scanned=7, nodes_touched=3
        )
        for parallel in (False, True):
            total = CostMeter.total([one], parallel=parallel)
            assert total.as_dict() == one.as_dict()

    def test_total_accepts_any_iterable(self):
        gen = (CostReport(elapsed_sec=1.0) for _ in range(4))
        assert CostMeter.total(gen).elapsed_sec == 4.0

    def test_parallel_total_elapsed_is_max_of_branches(self):
        reports = [
            CostReport(elapsed_sec=float(i), node_sec=float(i))
            for i in (3, 1, 2)
        ]
        par = CostMeter.total(reports, parallel=True)
        assert par.elapsed_sec == 3.0  # critical path, order-independent
        assert par.node_sec == 6.0  # occupancy always adds

    def test_merge_does_not_mutate_operands(self):
        a = CostReport(elapsed_sec=1.0, bytes_scanned=5)
        b = CostReport(elapsed_sec=2.0, bytes_scanned=6)
        a.merged_parallel(b)
        a.merged_sequential(b)
        assert a.bytes_scanned == 5 and b.bytes_scanned == 6
        assert a.elapsed_sec == 1.0 and b.elapsed_sec == 2.0

    def test_merge_sums_every_consumption_field(self):
        a = CostReport(
            elapsed_sec=1.0,
            node_sec=1.0,
            bytes_scanned=1,
            bytes_shipped_lan=2,
            bytes_shipped_wan=3,
            nodes_touched=4,
            tasks_launched=5,
            layers_crossed=6,
            rows_examined=7,
            messages=8,
        )
        merged = a.merged_sequential(a)
        for field, value in merged.as_dict().items():
            if field == "elapsed_sec":
                assert value == 2.0
            else:
                assert value == 2 * a.as_dict()[field], field


class TestRng:
    def test_same_seed_same_stream(self):
        assert make_rng(7).integers(1000) == make_rng(7).integers(1000)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert make_rng(gen) is gen

    def test_spawn_independent_streams(self):
        a, b = spawn_rngs(0, 2)
        assert a.integers(10**9) != b.integers(10**9)

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestValidation:
    def test_require(self):
        require(True, "fine")
        with pytest.raises(ConfigurationError, match="broken"):
            require(False, "broken")

    def test_require_positive(self):
        require_positive(1.0, "x")
        with pytest.raises(ConfigurationError):
            require_positive(0.0, "x")

    def test_require_in_range(self):
        require_in_range(0.5, "q", 0.0, 1.0)
        with pytest.raises(ConfigurationError):
            require_in_range(1.5, "q", 0.0, 1.0)
        with pytest.raises(ConfigurationError):
            require_in_range(0.0, "q", 0.0, 1.0, inclusive=False)

    def test_require_matrix_promotes_1d(self):
        out = require_matrix([1.0, 2.0], "v")
        assert out.shape == (1, 2)

    def test_require_matrix_checks_columns(self):
        with pytest.raises(ConfigurationError):
            require_matrix(np.zeros((3, 2)), "m", n_cols=3)
