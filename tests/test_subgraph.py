"""Tests for subgraph matching and the semantic graph cache ([34], [35])."""

import numpy as np
import pytest

from repro.bigdataless import GraphStore, SemanticGraphCache, SubgraphMatcher
from repro.bigdataless.subgraph import QueryGraph
from repro.cluster import ClusterTopology
from repro.common import CostMeter


def triangle_store():
    """A small hand-built graph: one labelled triangle plus a path."""
    topo = ClusterTopology.single_datacenter(2)
    labels = ["A", "B", "C", "A", "B"]
    edges = [(0, 1), (1, 2), (2, 0), (3, 4)]
    return GraphStore(topo, labels, edges)


class TestQueryGraph:
    def test_canonical_key_isomorphism_invariant(self):
        a = QueryGraph(["A", "B"], [(0, 1)])
        b = QueryGraph(["B", "A"], [(0, 1)])
        assert a.canonical_key() == b.canonical_key()

    def test_canonical_key_distinguishes_structures(self):
        path = QueryGraph(["A", "A", "A"], [(0, 1), (1, 2)])
        triangle = QueryGraph(["A", "A", "A"], [(0, 1), (1, 2), (2, 0)])
        assert path.canonical_key() != triangle.canonical_key()

    def test_contains_pattern_finds_embedding(self):
        host = QueryGraph(["A", "B", "C"], [(0, 1), (1, 2), (2, 0)])
        pattern = QueryGraph(["A", "B"], [(0, 1)])
        mapping = host.contains_pattern(pattern)
        assert mapping is not None
        assert host.labels[mapping[0]] == "A"
        assert host.labels[mapping[1]] == "B"

    def test_contains_pattern_rejects_missing(self):
        host = QueryGraph(["A", "B"], [(0, 1)])
        pattern = QueryGraph(["C"], [])
        assert host.contains_pattern(pattern) is None

    def test_self_loops_dropped(self):
        g = QueryGraph(["A"], [(0, 0)])
        assert g.edges == ()


class TestGraphStore:
    def test_random_graph_properties(self):
        topo = ClusterTopology.single_datacenter(4)
        store = GraphStore.random(topo, 500, avg_degree=4.0, seed=0)
        assert store.n_vertices == 500
        degrees = [len(store.adjacency[v]) for v in range(500)]
        assert 2.0 < np.mean(degrees) < 8.0

    def test_fetch_adjacency_charges_owner(self):
        store = triangle_store()
        meter = CostMeter()
        neighbors = store.fetch_adjacency(0, meter)
        assert set(neighbors) == {1, 2}
        assert meter.freeze().bytes_scanned > 0

    def test_vertices_with_label(self):
        store = triangle_store()
        assert store.vertices_with_label("A") == [0, 3]
        assert store.vertices_with_label("Z") == []


class TestSubgraphMatcher:
    def test_finds_labelled_edge(self):
        store = triangle_store()
        matcher = SubgraphMatcher(store)
        query = QueryGraph(["A", "B"], [(0, 1)])
        embeddings, _ = matcher.match(query)
        assert set(embeddings) == {(0, 1), (3, 4)}

    def test_finds_triangle(self):
        store = triangle_store()
        matcher = SubgraphMatcher(store)
        query = QueryGraph(["A", "B", "C"], [(0, 1), (1, 2), (2, 0)])
        embeddings, _ = matcher.match(query)
        assert (0, 1, 2) in embeddings

    def test_no_match_for_absent_pattern(self):
        store = triangle_store()
        matcher = SubgraphMatcher(store)
        query = QueryGraph(["C", "C"], [(0, 1)])
        embeddings, _ = matcher.match(query)
        assert embeddings == []

    def test_match_on_random_graph_verified_bruteforce(self):
        topo = ClusterTopology.single_datacenter(2)
        store = GraphStore.random(topo, 60, avg_degree=3.0, seed=3)
        matcher = SubgraphMatcher(store)
        query = QueryGraph(["A", "B"], [(0, 1)])
        embeddings, _ = matcher.match(query)
        expected = {
            (u, v)
            for u in range(60)
            for v in store.adjacency[u]
            if store.labels[u] == "A" and store.labels[v] == "B"
        }
        assert set(embeddings) == expected

    def test_max_embeddings_cap(self):
        topo = ClusterTopology.single_datacenter(2)
        store = GraphStore.random(topo, 300, avg_degree=6.0, seed=4)
        matcher = SubgraphMatcher(store, max_embeddings=5)
        query = QueryGraph(["A", "B"], [(0, 1)])
        embeddings, _ = matcher.match(query)
        assert len(embeddings) <= 5

    def test_seeds_restrict_anchor(self):
        store = triangle_store()
        matcher = SubgraphMatcher(store)
        query = QueryGraph(["A", "B"], [(0, 1)])
        embeddings, _ = matcher.match(query, seeds=[0])
        assert set(embeddings) == {(0, 1)}

    def test_cost_metered(self):
        store = triangle_store()
        matcher = SubgraphMatcher(store)
        query = QueryGraph(["A", "B", "C"], [(0, 1), (1, 2)])
        _, report = matcher.match(query)
        assert report.bytes_scanned > 0
        assert report.elapsed_sec > 0


class TestSemanticGraphCache:
    def make_world(self, seed=5, n=400):
        topo = ClusterTopology.single_datacenter(4)
        store = GraphStore.random(topo, n, avg_degree=4.0, seed=seed)
        return SemanticGraphCache(SubgraphMatcher(store))

    def test_exact_hit_costs_almost_nothing(self):
        cache = self.make_world()
        query = QueryGraph(["A", "B", "C"], [(0, 1), (1, 2)])
        first, cold = cache.query(query)
        second, warm = cache.query(query)
        assert first == second
        assert cache.exact_hits == 1
        assert warm.bytes_scanned == 0
        assert warm.elapsed_sec < cold.elapsed_sec / 10

    def test_isomorphic_query_is_exact_hit(self):
        cache = self.make_world(seed=6)
        a = QueryGraph(["A", "B"], [(0, 1)])
        b = QueryGraph(["B", "A"], [(0, 1)])  # same pattern, renumbered
        cache.query(a)
        result_b, _ = cache.query(b)
        assert cache.exact_hits == 1
        assert set(result_b) == set(cache.query(a)[0])

    def test_subsumption_reduces_cost(self):
        cache = self.make_world(seed=7)
        edge = QueryGraph(["A", "B"], [(0, 1)])
        path = QueryGraph(["A", "B", "C"], [(0, 1), (1, 2)])
        cache.query(edge)
        _, with_cache = cache.query(path)
        fresh = self.make_world(seed=7)
        _, without = fresh.query(path)
        assert cache.subsumption_hits == 1
        assert with_cache.bytes_scanned <= without.bytes_scanned

    def test_subsumption_answers_match_cold_run(self):
        cache = self.make_world(seed=8)
        edge = QueryGraph(["A", "B"], [(0, 1)])
        path = QueryGraph(["A", "B", "A"], [(0, 1), (1, 2)])
        cache.query(edge)
        via_cache, _ = cache.query(path)
        fresh = self.make_world(seed=8)
        cold, _ = fresh.query(path)
        assert set(via_cache) == set(cold)

    def test_state_bytes_grow_with_entries(self):
        cache = self.make_world(seed=9)
        cache.query(QueryGraph(["A", "B"], [(0, 1)]))
        small = cache.state_bytes()
        cache.query(QueryGraph(["C", "D"], [(0, 1)]))
        assert cache.state_bytes() >= small

    def test_miss_counter(self):
        cache = self.make_world(seed=10)
        cache.query(QueryGraph(["A", "B"], [(0, 1)]))
        assert cache.misses == 1


class TestNetworkxInterop:
    def test_from_networkx_roundtrip(self):
        import networkx as nx

        graph = nx.Graph()
        graph.add_node("u", label="A")
        graph.add_node("v", label="B")
        graph.add_node("w", label="C")
        graph.add_edge("u", "v")
        graph.add_edge("v", "w")
        topo = ClusterTopology.single_datacenter(2)
        store = GraphStore.from_networkx(topo, graph)
        assert store.n_vertices == 3
        assert sorted(store.labels) == ["A", "B", "C"]
        back = store.to_networkx()
        assert back.number_of_edges() == 2
        assert {d["label"] for _, d in back.nodes(data=True)} == {"A", "B", "C"}

    def test_missing_labels_get_default(self):
        import networkx as nx

        graph = nx.path_graph(4)
        topo = ClusterTopology.single_datacenter(2)
        store = GraphStore.from_networkx(topo, graph, default_label="X")
        assert store.labels == ["X"] * 4

    def test_matcher_runs_on_imported_graph(self):
        import networkx as nx

        graph = nx.complete_graph(5)
        nx.set_node_attributes(graph, "A", "label")
        topo = ClusterTopology.single_datacenter(2)
        store = GraphStore.from_networkx(topo, graph)
        matcher = SubgraphMatcher(store)
        query = QueryGraph(["A", "A"], [(0, 1)])
        embeddings, _ = matcher.match(query)
        assert len(embeddings) == 5 * 4  # ordered pairs of a K5
