"""Unit tests for repro.core.quantization (RT1.1)."""

import numpy as np
import pytest

from repro.common.errors import NotTrainedError
from repro.core import QuerySpaceQuantizer


def feed(quantizer, vectors):
    return [quantizer.observe(v) for v in vectors]


def two_cluster_stream(n=100, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal(loc=(0, 0, 1), scale=0.3, size=(n, 3))
    b = rng.normal(loc=(50, 50, 2), scale=0.3, size=(n, 3))
    out = np.empty((2 * n, 3))
    out[0::2] = a
    out[1::2] = b
    return out


class TestWarmup:
    def test_not_warm_before_warmup_queries(self):
        q = QuerySpaceQuantizer(warmup=10)
        for v in np.random.default_rng(0).normal(size=(9, 3)):
            q.observe(v)
        assert not q.is_warm
        assert q.n_quanta == 0

    def test_warm_after_warmup(self):
        q = QuerySpaceQuantizer(warmup=10)
        feed(q, np.random.default_rng(1).normal(size=(10, 3)))
        assert q.is_warm
        assert q.n_quanta >= 1

    def test_centroids_raise_before_warm(self):
        with pytest.raises(NotTrainedError):
            QuerySpaceQuantizer().centroids

    def test_novelty_infinite_before_warm(self):
        q = QuerySpaceQuantizer()
        assert q.novelty([0.0, 0.0]) == float("inf")


class TestQuantization:
    def test_separated_interests_get_distinct_quanta(self):
        q = QuerySpaceQuantizer(n_quanta=2, warmup=16, grow_threshold=1.0)
        stream = two_cluster_stream()
        feed(q, stream)
        a_id = q.assign(np.array([0.0, 0.0, 1.0]))
        b_id = q.assign(np.array([50.0, 50.0, 2.0]))
        assert a_id != b_id

    def test_assign_does_not_learn(self):
        q = QuerySpaceQuantizer(warmup=8)
        feed(q, two_cluster_stream(n=20))
        before = q.centroids.copy()
        q.assign(np.array([100.0, 100.0, 100.0]))
        assert np.array_equal(q.centroids, before)

    def test_growth_bounded_by_max_quanta(self):
        q = QuerySpaceQuantizer(
            n_quanta=2, max_quanta=4, warmup=8, grow_threshold=0.1
        )
        rng = np.random.default_rng(3)
        feed(q, rng.uniform(-100, 100, size=(200, 2)))
        assert q.n_quanta <= 4

    def test_novelty_small_near_training_large_far(self):
        q = QuerySpaceQuantizer(warmup=16)
        feed(q, two_cluster_stream(n=50, seed=4))
        near = q.novelty(np.array([0.0, 0.0, 1.0]))
        far = q.novelty(np.array([500.0, -500.0, 99.0]))
        assert near < 1.0 < far

    def test_centroids_in_original_units(self):
        q = QuerySpaceQuantizer(n_quanta=2, warmup=16, grow_threshold=1.0)
        feed(q, two_cluster_stream(n=50, seed=5))
        centroids = q.centroids
        # One centroid near (0,0,1), another near (50,50,2).
        dists_a = np.linalg.norm(centroids - [0, 0, 1], axis=1)
        dists_b = np.linalg.norm(centroids - [50, 50, 2], axis=1)
        assert dists_a.min() < 2.0
        assert dists_b.min() < 2.0

    def test_state_bytes_positive_and_bounded(self):
        q = QuerySpaceQuantizer(n_quanta=4, max_quanta=8, warmup=8)
        feed(q, two_cluster_stream(n=100, seed=6))
        bytes_1 = q.state_bytes()
        feed(q, two_cluster_stream(n=100, seed=7))
        bytes_2 = q.state_bytes()
        assert 0 < bytes_1
        # Codebook is bounded: more data does not blow up state.
        assert bytes_2 <= bytes_1 * 2

    def test_remove_quantum_shrinks(self):
        q = QuerySpaceQuantizer(n_quanta=2, warmup=8, grow_threshold=1.0)
        feed(q, two_cluster_stream(n=20, seed=8))
        n = q.n_quanta
        q.remove_quantum(0)
        assert q.n_quanta == n - 1
