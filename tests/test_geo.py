"""Tests for geo-distributed SEA (RT5): topology, edges, federation, routing."""

import numpy as np
import pytest

from repro.baselines import ExactEngine
from repro.common.errors import ConfigurationError, RoutingError
from repro.core import AgentConfig
from repro.data import InterestProfile, WorkloadGenerator, gaussian_mixture_table
from repro.geo import CoreCoordinator, EdgeAgent, GeoRouter, GeoSites, ModelRegistry
from repro.queries import Count


@pytest.fixture(scope="module")
def geo_world():
    sites = GeoSites(n_cores=2, nodes_per_core=2, n_edges=3)
    table = gaussian_mixture_table(10000, dims=("x0", "x1"), seed=1, name="data")
    sites.put_table(table, partitions_per_node=1)
    engine = ExactEngine(sites.store)
    profile = InterestProfile.from_table(
        table, ("x0", "x1"), 2, seed=2, hotspot_scale=2.0, extent_range=(4, 9)
    )
    return sites, table, engine, profile


def make_edges(sites, engine, config):
    return [
        EdgeAgent(name, sites.edge_node(name), engine, sites.core_gateway(), config)
        for name in sites.edge_names
    ]


def edge_config(**kwargs):
    defaults = dict(training_budget=0, error_threshold=0.2)
    defaults.update(kwargs)
    return AgentConfig(**defaults)


class TestGeoSites:
    def test_layout(self, geo_world):
        sites, *_ = geo_world
        assert len(sites.core_nodes) == 4
        assert len(sites.edge_names) == 3
        for name in sites.edge_names:
            node = sites.edge_node(name)
            assert sites.topology.is_wan(node, sites.core_gateway())

    def test_data_only_on_core_nodes(self, geo_world):
        sites, *_ = geo_world
        stored = sites.store.table("data")
        assert set(stored.nodes) <= set(sites.core_nodes)
        for name in sites.edge_names:
            assert sites.topology.node(sites.edge_node(name)).stored_bytes == 0

    def test_unknown_edge_rejected(self, geo_world):
        sites, *_ = geo_world
        with pytest.raises(ConfigurationError):
            sites.edge_node("edge99")


class TestEdgeAgent:
    def test_untrained_edge_goes_to_core(self, geo_world):
        sites, table, engine, profile = geo_world
        edge = make_edges(sites, engine, edge_config())[0]
        workload = WorkloadGenerator(
            "data", ("x0", "x1"), profile, aggregate=Count(), seed=3
        )
        served = edge.submit(workload.next_query())
        assert served.origin == "core"
        assert served.cost.bytes_shipped_wan > 0

    def test_edge_learns_and_serves_locally(self, geo_world):
        sites, table, engine, profile = geo_world
        edge = make_edges(sites, engine, edge_config())[0]
        workload = WorkloadGenerator(
            "data", ("x0", "x1"), profile, aggregate=Count(), seed=4
        )
        for query in workload.batch(250):
            edge.submit(query)
        stats = edge.stats()
        assert stats["local"] > 0
        assert 0 < stats["local_fraction"] < 1

    def test_local_answers_have_zero_wan(self, geo_world):
        sites, table, engine, profile = geo_world
        edge = make_edges(sites, engine, edge_config())[0]
        workload = WorkloadGenerator(
            "data", ("x0", "x1"), profile, aggregate=Count(), seed=5
        )
        local = None
        for query in workload.batch(300):
            served = edge.submit(query)
            if served.origin == "local":
                local = served
        assert local is not None
        assert local.cost.bytes_shipped_wan == 0
        assert local.cost.bytes_scanned == 0

    def test_local_answers_accurate(self, geo_world):
        sites, table, engine, profile = geo_world
        edge = make_edges(sites, engine, edge_config())[0]
        workload = WorkloadGenerator(
            "data", ("x0", "x1"), profile, aggregate=Count(), seed=6
        )
        errors = []
        for query in workload.batch(300):
            served = edge.submit(query)
            if served.origin == "local":
                truth = query.evaluate(table)
                errors.append(abs(served.answer - truth) / max(truth, 1.0))
        assert errors and np.median(errors) < 0.25


class TestFederation:
    def test_collaborative_training_and_push(self, geo_world):
        sites, table, engine, profile = geo_world
        config = edge_config()
        edges = make_edges(sites, engine, config)
        core = CoreCoordinator(engine, sites.core_gateway(), config)
        generators = [
            WorkloadGenerator("data", ("x0", "x1"), profile, aggregate=Count(), seed=10 + i)
            for i in range(len(edges))
        ]
        for _ in range(80):
            for edge, wg in zip(edges, generators):
                core.train_from_edge(edge.name, wg.next_query())
        report = core.push_models(edges)
        assert report.bytes_shipped_wan > 0
        # All contributing edges received the shared model.
        signature = generators[0].next_query().signature()
        for edge in edges:
            assert core.registry.holders(signature)
            assert edge.has_model(signature)

    def test_shared_model_beats_isolated_training(self, geo_world):
        """RT5.2: edges training together reach local serving faster."""
        sites, table, engine, profile = geo_world
        config = edge_config()
        per_edge_budget = 60  # too few alone, enough when pooled x3

        # Isolated: each edge trains only on its own 60 queries.
        isolated = make_edges(sites, engine, config)[0]
        wg = WorkloadGenerator("data", ("x0", "x1"), profile, aggregate=Count(), seed=20)
        for query in wg.batch(per_edge_budget):
            isolated.predictor_for(query).observe(
                query.vector(), query.evaluate(table)
            )

        # Collaborative: core pools 3 edges' queries then pushes.
        edges = make_edges(sites, engine, config)
        core = CoreCoordinator(engine, sites.core_gateway(), config)
        generators = [
            WorkloadGenerator("data", ("x0", "x1"), profile, aggregate=Count(), seed=21 + i)
            for i in range(3)
        ]
        for _ in range(per_edge_budget):
            for edge, wg in zip(edges, generators):
                core.train_from_edge(edge.name, wg.next_query())
        core.push_models(edges)

        eval_wg = WorkloadGenerator(
            "data", ("x0", "x1"), profile, aggregate=Count(), seed=30
        )
        queries = eval_wg.batch(120)

        def local_fraction(agent):
            served = 0
            for query in queries:
                predictor = agent.predictor_for(query)
                try:
                    prediction = predictor.predict(query.vector())
                except Exception:
                    continue
                if (
                    prediction.reliable
                    and prediction.error_estimate is not None
                    and prediction.error_estimate <= config.error_threshold
                ):
                    served += 1
            return served / len(queries)

        assert local_fraction(edges[0]) >= local_fraction(isolated)

    def test_purge_signature(self, geo_world):
        sites, table, engine, profile = geo_world
        config = edge_config()
        edges = make_edges(sites, engine, config)
        core = CoreCoordinator(engine, sites.core_gateway(), config)
        wg = WorkloadGenerator("data", ("x0", "x1"), profile, aggregate=Count(), seed=40)
        query = wg.next_query()
        core.train_from_edge(edges[0].name, query)
        core.push_models(edges)
        signature = query.signature()
        core.purge_signature(signature, edges)
        assert core.predictor(signature) is None
        assert core.registry.holders(signature) == []

    def test_registry_roundtrip(self):
        registry = ModelRegistry()
        registry.register("sig", "edge0")
        registry.register("sig", "edge1")
        assert registry.holders("sig") == ["edge0", "edge1"]
        registry.unregister("sig", "edge0")
        assert registry.holders("sig") == ["edge1"]
        assert registry.state_bytes() > 0


class TestGeoRouter:
    def test_routes_through_tiers(self, geo_world):
        sites, table, engine, profile = geo_world
        config = edge_config()
        edges = make_edges(sites, engine, config)
        core = CoreCoordinator(engine, sites.core_gateway(), config)
        generators = [
            WorkloadGenerator("data", ("x0", "x1"), profile, aggregate=Count(), seed=50 + i)
            for i in range(3)
        ]
        # Train only edge0's model via the core, then push to edge0.
        for _ in range(150):
            core.train_from_edge(edges[0].name, generators[0].next_query())
        core.push_models(edges)
        router = GeoRouter(edges, core)
        # Queries at edge1 (no local model) should hit edge0 as a peer.
        origins = []
        for query in generators[1].batch(60):
            origins.append(router.submit(edges[1].name, query).origin)
        assert "peer" in origins or "core" in origins
        if "peer" in origins:
            served = [o for o in origins if o == "peer"]
            assert served

    def test_peer_answers_cost_less_wan_than_core(self, geo_world):
        sites, table, engine, profile = geo_world
        config = edge_config()
        edges = make_edges(sites, engine, config)
        core = CoreCoordinator(engine, sites.core_gateway(), config)
        wg = WorkloadGenerator("data", ("x0", "x1"), profile, aggregate=Count(), seed=60)
        for _ in range(200):
            core.train_from_edge(edges[0].name, wg.next_query())
        core.push_models(edges)
        router = GeoRouter(edges, core)
        peer_costs, core_costs = [], []
        for query in wg.batch(100):
            served = router.submit(edges[1].name, query)
            if served.origin == "peer":
                peer_costs.append(served.cost.bytes_shipped_wan)
            elif served.origin == "core":
                core_costs.append(served.cost.bytes_shipped_wan)
        if peer_costs and core_costs:
            assert np.mean(peer_costs) <= np.mean(core_costs)

    def test_unknown_edge_rejected(self, geo_world):
        sites, table, engine, profile = geo_world
        edges = make_edges(sites, engine, edge_config())
        core = CoreCoordinator(engine, sites.core_gateway())
        router = GeoRouter(edges, core)
        wg = WorkloadGenerator("data", ("x0", "x1"), profile, aggregate=Count(), seed=70)
        with pytest.raises(RoutingError):
            router.submit("edge99", wg.next_query())

    def test_no_edges_rejected(self, geo_world):
        sites, *_ = geo_world
        core = CoreCoordinator(ExactEngine(sites.store), sites.core_gateway())
        with pytest.raises(RoutingError):
            GeoRouter([], core)


class TestColdModelPurging:
    """RT5.3: models for no-longer-queried subspaces get purged."""

    def test_idle_models_purged_active_kept(self, geo_world):
        sites, table, engine, profile = geo_world
        config = edge_config()
        edges = make_edges(sites, engine, config)
        core = CoreCoordinator(engine, sites.core_gateway(), config)
        count_wl = WorkloadGenerator(
            "data", ("x0", "x1"), profile, aggregate=Count(), seed=80
        )
        from repro.queries import Mean

        mean_wl = WorkloadGenerator(
            "data", ("x0", "x1"), profile, aggregate=Mean("value"), seed=81
        )
        # Both signatures trained; then only count queries keep arriving.
        for _ in range(40):
            core.train_from_edge(edges[0].name, count_wl.next_query())
            core.train_from_edge(edges[0].name, mean_wl.next_query())
        core.push_models(edges)
        mean_signature = mean_wl.next_query().signature()
        count_signature = count_wl.next_query().signature()
        for _ in range(60):
            core.record_use(count_signature)
        purged = core.purge_cold(edges, max_idle=50)
        assert mean_signature in purged
        assert count_signature not in purged
        assert core.predictor(mean_signature) is None
        assert core.predictor(count_signature) is not None
        assert core.registry.holders(mean_signature) == []

    def test_fresh_core_purges_nothing(self, geo_world):
        sites, table, engine, profile = geo_world
        core = CoreCoordinator(engine, sites.core_gateway())
        assert core.purge_cold([], max_idle=10) == []

    def test_idle_age_tracks_clock(self, geo_world):
        sites, table, engine, profile = geo_world
        core = CoreCoordinator(engine, sites.core_gateway())
        core.record_use("sig-a")
        core.record_use("sig-b")
        core.record_use("sig-b")
        assert core.idle_age("sig-a") == 2
        assert core.idle_age("sig-b") == 0
        assert core.idle_age("never-seen") == core._clock


class TestModelPushIsolation:
    def test_pushed_models_are_independent_copies(self, geo_world):
        """After push-down, an edge's local learning must not mutate the
        core's master model (the WAN shipped state, not a reference)."""
        sites, table, engine, profile = geo_world
        config = edge_config()
        edges = make_edges(sites, engine, config)
        core = CoreCoordinator(engine, sites.core_gateway(), config)
        wg = WorkloadGenerator(
            "data", ("x0", "x1"), profile, aggregate=Count(), seed=90
        )
        for _ in range(60):
            core.train_from_edge(edges[0].name, wg.next_query())
        core.push_models(edges)
        signature = wg.next_query().signature()
        master = core.predictor(signature)
        copy_at_edge = edges[0]._predictors[signature]
        assert copy_at_edge is not master
        before = master.n_observed
        # The edge keeps learning locally...
        query = wg.next_query()
        copy_at_edge.observe(query.vector(), query.evaluate(table))
        # ...without touching the core's model.
        assert master.n_observed == before
        assert copy_at_edge.n_observed == before + 1
