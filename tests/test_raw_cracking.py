"""Tests for raw-data analytics via adaptive cracking (RT2.3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bigdataless import (
    AdaptiveCrackingEngine,
    ColdScanEngine,
    EagerETLEngine,
    RawDataStore,
)
from repro.bigdataless.raw import _CrackedFile, RawFile
from repro.cluster import ClusterTopology
from repro.common import CostMeter


@pytest.fixture(scope="module")
def raw_world():
    topo = ClusterTopology.single_datacenter(4)
    store = RawDataStore.synthetic(topo, 20_000, files_per_node=2, seed=0)
    return topo, store


class TestRawStore:
    def test_synthetic_layout(self, raw_world):
        topo, store = raw_world
        assert len(store.files) == 8
        assert store.n_rows == 20_000
        assert store.n_bytes > store.n_rows * 8  # raw encoding is wide

    def test_true_range_count(self, raw_world):
        _, store = raw_world
        assert store.true_range_count(0.0, 1000.0) == store.n_rows
        assert store.true_range_count(500.0, 500.0) == 0


class TestColdScan:
    def test_exact_and_expensive(self, raw_world):
        _, store = raw_world
        engine = ColdScanEngine(store)
        count, report = engine.range_count(100.0, 300.0)
        assert count == store.true_range_count(100.0, 300.0)
        assert report.bytes_scanned == store.n_bytes

    def test_every_query_pays_again(self, raw_world):
        _, store = raw_world
        engine = ColdScanEngine(store)
        _, first = engine.range_count(100.0, 300.0)
        _, second = engine.range_count(100.0, 300.0)
        assert second.bytes_scanned == first.bytes_scanned


class TestEagerETL:
    def test_queries_fast_after_etl(self, raw_world):
        _, store = raw_world
        engine = EagerETLEngine(store)
        etl_report = engine.etl()
        assert etl_report.bytes_scanned == store.n_bytes
        count, report = engine.range_count(100.0, 300.0)
        assert count == store.true_range_count(100.0, 300.0)
        assert report.bytes_scanned == 0
        assert report.elapsed_sec < etl_report.elapsed_sec / 100

    def test_query_before_etl_rejected(self, raw_world):
        _, store = raw_world
        with pytest.raises(Exception):
            EagerETLEngine(store).range_count(0.0, 1.0)


class TestCrackedFile:
    def make_file(self, values):
        return _CrackedFile(
            RawFile("f", "n0", np.asarray(values, dtype=float))
        )

    def test_crack_partitions_rows(self):
        cracked = self.make_file([5.0, 1.0, 9.0, 3.0, 7.0])
        cracked.crack(5.0, CostMeter())
        keys = cracked.raw.values[cracked.order]
        split = cracked.positions[cracked.bounds.index(5.0)]
        assert np.all(keys[:split] < 5.0)
        assert np.all(keys[split:] >= 5.0)

    def test_count_between_matches_truth(self):
        rng = np.random.default_rng(1)
        values = rng.uniform(0, 100, size=500)
        cracked = self.make_file(values)
        count, _ = cracked.count_between(20.0, 60.0, CostMeter())
        assert count == int(((values >= 20.0) & (values < 60.0)).sum())

    def test_repeated_cracks_idempotent(self):
        cracked = self.make_file([1.0, 2.0, 3.0])
        meter = CostMeter()
        cracked.crack(2.0, meter)
        pieces = cracked.n_pieces
        assert cracked.crack(2.0, meter) == 0.0
        assert cracked.n_pieces == pieces

    def test_pieces_shrink_costs(self):
        rng = np.random.default_rng(2)
        cracked = self.make_file(rng.uniform(0, 100, size=2000))
        meter = CostMeter()
        first = cracked.count_between(10.0, 90.0, meter)[1]
        later = cracked.count_between(40.0, 60.0, meter)[1]
        assert later < first

    @given(st.lists(st.floats(0, 100), min_size=2, max_size=60),
           st.floats(10, 90), st.floats(10, 90))
    @settings(max_examples=40, deadline=None)
    def test_count_always_exact_property(self, values, a, b):
        lo, hi = min(a, b), max(a, b)
        cracked = self.make_file(values)
        count, _ = cracked.count_between(lo, hi, CostMeter())
        expected = int(
            ((np.asarray(values) >= lo) & (np.asarray(values) < hi)).sum()
        )
        assert count == expected


class TestAdaptiveCracking:
    def test_exactness_across_query_sequence(self, raw_world):
        _, store = raw_world
        engine = AdaptiveCrackingEngine(store)
        rng = np.random.default_rng(3)
        for _ in range(25):
            lo = float(rng.uniform(0, 900))
            hi = lo + float(rng.uniform(1, 100))
            count, _ = engine.range_count(lo, hi)
            assert count == store.true_range_count(lo, hi)

    def test_costs_decline_over_time(self, raw_world):
        _, store = raw_world
        engine = AdaptiveCrackingEngine(store)
        rng = np.random.default_rng(4)
        costs = []
        for _ in range(30):
            lo = float(rng.uniform(200, 700))
            costs.append(engine.range_count(lo, lo + 50.0)[1].elapsed_sec)
        assert np.mean(costs[-10:]) < np.mean(costs[:3]) / 5

    def test_time_to_first_insight_beats_etl_pipeline(self, raw_world):
        """Data-to-insight: cracking's first answer lands before the
        eager pipeline (wrangle everything, then query) delivers one."""
        _, store = raw_world
        cracking = AdaptiveCrackingEngine(store)
        _, first = cracking.range_count(100.0, 200.0)
        eager = EagerETLEngine(store)
        etl = eager.etl()
        _, first_eager = eager.range_count(100.0, 200.0)
        time_to_insight_eager = etl.elapsed_sec + first_eager.elapsed_sec
        assert first.elapsed_sec < time_to_insight_eager

    def test_pieces_accumulate(self, raw_world):
        _, store = raw_world
        engine = AdaptiveCrackingEngine(store)
        engine.range_count(100.0, 200.0)
        before = engine.n_pieces
        engine.range_count(300.0, 400.0)
        assert engine.n_pieces > before

    def test_state_bytes_reported(self, raw_world):
        _, store = raw_world
        engine = AdaptiveCrackingEngine(store)
        engine.range_count(100.0, 200.0)
        assert engine.state_bytes() > 0

    def test_inverted_range_rejected(self, raw_world):
        _, store = raw_world
        with pytest.raises(Exception):
            AdaptiveCrackingEngine(store).range_count(10.0, 5.0)
