"""Chaos property: recovery after ANY injected write-path crash is
byte-identical to a clean run stopped at the last durable LSN.

The property drives a seeded mixed workload (appends, deletes, clock
advances, explicit flushes) against a store with durable ingest enabled,
arms one crash window at a hypothesis-chosen write-path fault point
(``wal_record`` mid-WAL-frame, ``delta_append`` mid-staging,
``compaction`` mid-merge, ``checkpoint`` between merge and checkpoint),
optionally layers transient ``wal_sync`` faults on top, and lets the
crash land wherever the schedule puts it.  After ``recover()``:

* the rebuilt image must equal, element for element, a fault-free
  reference store that applied exactly the ops whose WAL records are
  durable (``lsn <= report.durable_lsn``) — nothing more, nothing less;
* synopses and columnar images must verify against the rebuilt bases;
* the store must accept and correctly serve new writes.

``INGEST_CHAOS_EXAMPLES`` scales the ``chaos``-marked deep variant (CI's
write-path fuzz job raises it well past the default)."""

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterTopology, DistributedStore
from repro.cluster.columnar import columnar_consistent
from repro.cluster.synopsis import synopses_consistent
from repro.common.errors import WriteCrashError, WriteError
from repro.data.tabular import Table
from repro.faults import FaultInjector
from repro.ingest import IngestConfig

COLUMNS = ("x0", "x1", "value")
CRASH_POINTS = ("wal_record", "delta_append", "compaction", "checkpoint")


def batch(seed: int, n: int, lo: float, hi: float) -> Table:
    rng = np.random.default_rng(seed)
    return Table(
        {c: rng.uniform(lo, hi, n) for c in COLUMNS}, name="data"
    )


def base_table(seed: int = 0, n: int = 240) -> Table:
    return batch(seed, n, 0.0, 100.0)


def build_store(layout: str, table: Table):
    store = DistributedStore(
        ClusterTopology.single_datacenter(4), layout=layout
    )
    store.put_table(table, partitions_per_node=2)
    pipeline = store.enable_ingest(IngestConfig(epoch_seconds=1.0))
    return store, pipeline


def full_image(store) -> Table:
    return store.table("data").full_table()


def images_equal(a: Table, b: Table) -> bool:
    if a.n_rows != b.n_rows or a.column_names != b.column_names:
        return False
    return all(
        np.array_equal(a.column(c), b.column(c), equal_nan=True)
        for c in a.column_names
    )


def check_consistency(store) -> None:
    stored = store.table("data")
    bases = [p.data for p in stored.partitions]
    assert synopses_consistent(store.synopses("data"), bases)
    if all(p.columnar is not None for p in stored.partitions):
        assert columnar_consistent(
            [p.columnar for p in stored.partitions], bases
        )


def apply_op(store, pipeline, op):
    """Apply one workload op; returns the op's WAL lsn (0 = not logged)."""
    kind = op[0]
    if kind == "append":
        _, seed, n, lo, hi = op
        return pipeline.append("data", batch(seed, n, lo, hi))
    if kind == "delete":
        _, column, threshold = op
        before = pipeline.wal.next_lsn
        pipeline.delete(
            "data", lambda t: t.column(column) > threshold
        )
        return before  # the delete's WAL record
    if kind == "advance":
        pipeline.advance(op[1])
        return 0
    pipeline.flush()
    return 0


ops_strategy = st.lists(
    st.one_of(
        st.tuples(
            st.just("append"),
            st.integers(0, 2**16),
            st.integers(1, 40),
            st.floats(0.0, 50.0),
            st.floats(60.0, 120.0),
        ),
        st.tuples(
            st.just("delete"),
            st.sampled_from(COLUMNS),
            st.floats(10.0, 110.0),
        ),
        st.tuples(st.just("advance"), st.floats(0.1, 2.5)),
        st.tuples(st.just("flush")),
    ),
    min_size=3,
    max_size=12,
)

chaos_params = dict(
    ops=ops_strategy,
    layout=st.sampled_from(["row", "column"]),
    crash_point=st.sampled_from(CRASH_POINTS),
    crash_hits=st.integers(1, 4),
    sync_faults=st.integers(0, 2),
    fault_seed=st.integers(0, 2**16),
)


def run_chaos_case(
    ops, layout, crash_point, crash_hits, sync_faults, fault_seed
):
    table = base_table()
    store, pipeline = build_store(layout, table)
    injector = FaultInjector(seed=fault_seed)
    store.attach_faults(injector)
    injector.arm_write_crash(crash_point, hits=crash_hits)
    if sync_faults:
        injector.inject_write_faults("wal_sync", count=sync_faults)

    # --- Chaos run: apply ops until the armed crash fires (if it does).
    op_lsns = []
    crashed = False
    for op in ops:
        try:
            op_lsns.append((op, apply_op(store, pipeline, op)))
        except WriteCrashError:
            crashed = True
            break
        except WriteError:
            # Transient wal_sync faults can exhaust the retry budget;
            # the epoch close failed but nothing was lost.  Keep going.
            op_lsns.append((op, 0))
    if crashed:
        assert pipeline.crashed
        report = store.recover()
    else:
        report = None

    # --- Reference run: fault-free, truncated at the durable LSN.
    ref_store, ref_pipeline = build_store(layout, table)
    for op, lsn in op_lsns:
        if op[0] in ("append", "delete"):
            if report is not None and lsn > report.durable_lsn:
                continue
            apply_op(ref_store, ref_pipeline, op)
    ref_pipeline.flush()

    assert images_equal(full_image(store), full_image(ref_store)), (
        f"post-recovery image diverged (crash={crash_point}x{crash_hits}, "
        f"durable_lsn={report.durable_lsn if report else 'n/a'})"
    )
    check_consistency(store)
    if report is not None:
        assert report.synopses_ok and report.columnar_ok

    # --- The recovered store is live: new writes land and compact.
    # (Disarm leftover fault state first: a crash window the workload
    # never reached must not fire during the liveness check.)
    store.clear_faults()
    extra = batch(99, 7, 0.0, 100.0)
    pipeline.append("data", extra)
    ref_pipeline.append("data", extra)
    pipeline.flush()
    ref_pipeline.flush()
    assert images_equal(full_image(store), full_image(ref_store))
    check_consistency(store)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(**chaos_params)
def test_recovery_matches_clean_run_at_durable_lsn(
    ops, layout, crash_point, crash_hits, sync_faults, fault_seed
):
    run_chaos_case(
        ops, layout, crash_point, crash_hits, sync_faults, fault_seed
    )


@pytest.mark.chaos
@settings(
    max_examples=int(os.environ.get("INGEST_CHAOS_EXAMPLES", "200")),
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(**chaos_params)
def test_recovery_matches_clean_run_at_durable_lsn_deep(
    ops, layout, crash_point, crash_hits, sync_faults, fault_seed
):
    run_chaos_case(
        ops, layout, crash_point, crash_hits, sync_faults, fault_seed
    )
