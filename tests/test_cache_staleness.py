"""Serve-time answer-cache version validation (the stale-read tripwire).

The invalidation discipline (learning steps evict signatures, epoch
closes evict overlapping quanta) is supposed to make a stale cache hit
impossible.  These tests pin that from both sides: a *manufactured* hole
must be caught by the serve-time version check and counted, and the real
gateway-over-ingest interleaving must keep the counters at zero.
"""

import numpy as np
import pytest

from repro.core import AgentConfig, SEAAgent
from repro.data import gaussian_mixture_table, InterestProfile, WorkloadGenerator
from repro.queries import Count
from repro.serve import GatewayConfig, ServingGateway
from repro.session import SEASession


def make_workload(table, seed=13):
    profile = InterestProfile.from_table(
        table, ("x0", "x1"), 3, seed=11, hotspot_scale=2.5,
        extent_range=(3.0, 8.0),
    )
    return WorkloadGenerator(
        "data", ("x0", "x1"), profile, aggregate=Count(), seed=seed
    )


def warm_to_cached_hit(agent, workload, attempts=400):
    """Serve until some query has a cached predicted answer; return it."""
    for query in workload.batch(attempts):
        record = agent.submit(query)
        if record.mode == "predicted" and agent.cache.peek(query) is not None:
            return query
    pytest.fail("no query reached the answer cache within the budget")


class TestManufacturedStaleEntry:
    def test_version_mismatch_is_rejected_and_counted(self):
        session = SEASession(n_nodes=4)
        session.load_table(
            gaussian_mixture_table(3000, dims=("x0", "x1"), seed=7, name="data")
        )
        observer = session.attach_observer()
        agent = session.agent
        agent.config.training_budget = 12
        agent.config.error_threshold = 0.3
        workload = make_workload(
            gaussian_mixture_table(3000, dims=("x0", "x1"), seed=7, name="data")
        )
        query = warm_to_cached_hit(agent, workload)
        entry = agent.cache.peek(query)
        predictor = agent.predictor(query)
        # Manufacture the hole the discipline is supposed to prevent:
        # mutate the producing quantum's learned state *without* evicting
        # its cache entries (reset_quantum bumps the version; a correct
        # maintenance path would also evict).
        predictor.reset_quantum(entry.quantum_id)
        assert predictor.version_of(entry.quantum_id) != entry.version
        before = agent.cache.stale_rejected
        record = agent.submit(query)
        # The stale entry was surfaced by lookup, caught by the version
        # check, dropped, and counted — never served.
        assert agent.cache.stale_rejected == before + 1
        assert agent.cache.peek(query) is None or (
            agent.cache.peek(query).version
            == predictor.version_of(entry.quantum_id)
        )
        assert observer.snapshot().get("cache_stale_served_total") == 1.0
        # The query itself still got a live answer (fresh prediction or
        # exact fallback — the reset quantum has no reliable model).
        assert record.mode in ("predicted", "fallback", "train")
        session.close()

    def test_stats_expose_the_invariant_counter(self):
        session = SEASession(n_nodes=2)
        session.load_table(
            gaussian_mixture_table(500, dims=("x0", "x1"), seed=3, name="data")
        )
        stats = session.agent.cache.stats()
        assert stats["answer_cache_stale_rejected"] == 0.0
        session.close()


class TestGatewayNeverServesStaleDuringIngest:
    def test_interleaved_epoch_closes_keep_counters_at_zero(self, event_loop):
        from tests.test_ingest import make_batch

        session = SEASession(n_nodes=4, ingest=True, epoch_seconds=0.5)
        table = gaussian_mixture_table(
            3000, dims=("x0", "x1"), seed=7, name="data"
        )
        session.load_table(table)
        observer = session.attach_observer()
        workload = make_workload(table)
        gateway = ServingGateway(
            session,
            GatewayConfig(),
            agent_config=AgentConfig(training_budget=60, error_threshold=0.35),
            own_session=False,
        )

        # A dashboard-style hot set: the same queries repeat every
        # round, which is exactly what populates (and re-hits) the
        # answer cache between invalidations.
        hot = workload.batch(20)

        async def run():
            async with gateway:
                # Warm both tenants into the predicted/cached regime,
                # then freeze learning: a learning step on fallback
                # would invalidate the whole signature (evicting the
                # cache for the *right* reason), and this test needs
                # entries that survive between epoch closes so the
                # data-update eviction path is the one being exercised.
                for query in workload.batch(300):
                    await gateway.submit(query, tenant="alice", timeout=30.0)
                    await gateway.submit(query, tenant="bob", timeout=30.0)
                for name in ("alice", "bob"):
                    handle = gateway.tenant(name)
                    handle.config.keep_learning_on_fallback = False
                for query in hot:
                    await gateway.submit(query, tenant="alice", timeout=30.0)
                    await gateway.submit(query, tenant="bob", timeout=30.0)
                # Now interleave gateway reads with ingest epoch closes:
                # every flush() compacts deltas and fires the data-update
                # invalidation that must evict overlapping cache entries
                # in *every* tenant's cache before the next read.
                for round_no in range(6):
                    session.append_rows(
                        "data",
                        make_batch(25, 100 + round_no, lo=10.0, hi=90.0),
                    )
                    session.flush()
                    for query in hot + hot:
                        await gateway.submit(query, tenant="alice", timeout=30.0)
                        await gateway.submit(query, tenant="bob", timeout=30.0)

        event_loop.run_until_complete(run())
        # The serve-time version check found nothing to reject, in any
        # tenant's cache partition: no stale answer was ever served.
        for name in ("alice", "bob"):
            cache = gateway.tenant(name).agent.cache
            assert cache.stale_rejected == 0
        assert observer.snapshot().get("cache_stale_served_total", 0.0) == 0.0
        # Sanity: the runs actually exercised the cache and the deltas.
        hits = sum(
            gateway.tenant(name).agent.cache.hits for name in ("alice", "bob")
        )
        assert hits > 0
        # And a post-compaction count is exactly the base + appended rows.
        answer = session.sql(
            "SELECT COUNT(*) FROM data "
            "WHERE x0 BETWEEN -1e9 AND 1e9 AND x1 BETWEEN -1e9 AND 1e9"
        )
        assert answer.value == 3000.0 + 6 * 25
        session.close()
