"""Worked example: full observability of a mixed SEA workload.

Runs a train/serve workload through :class:`SEASession` with a
``StackObserver`` attached, exports all three artefacts, and asserts the
acceptance shape: a Chrome trace with nested spans (query -> engine
phase -> per-node task), a Prometheus exposition with serve-mode
counters and a latency histogram, and a JSONL event log containing at
least one fallback and at least one optimizer event.  Also asserts the
null-observer hot path allocates nothing in ``repro.obs``.
"""

import json
import tracemalloc

import pytest

from repro import (
    AgentConfig,
    CostModelSelector,
    Count,
    ExecutionLog,
    InterestProfile,
    SEASession,
    TaskFeatures,
    WorkloadGenerator,
    gaussian_mixture_table,
)
from repro.common.errors import ConfigurationError
from repro.obs import EventLog


def _make_session():
    session = SEASession(
        n_nodes=4,
        config=AgentConfig(training_budget=6, error_threshold=0.05, warmup=4),
    )
    table = gaussian_mixture_table(
        4_000, dims=("x0", "x1"), seed=7, name="data"
    )
    session.load_table(table)
    return session, table


def _workload(table, n=24):
    profile = InterestProfile.from_table(table, ("x0", "x1"), 3, seed=11)
    gen = WorkloadGenerator(
        "data", ("x0", "x1"), profile, aggregate=Count(), seed=13
    )
    return gen.batch(n)


def _attach_optimizer(session):
    """A learned optimizer sharing the session's event stream."""
    log = ExecutionLog()
    for scale in (1, 2, 4, 8):
        features = TaskFeatures.for_subspace_aggregate(
            1000 * scale, 0.1 / scale, 2, 4
        )
        log.record(
            features,
            {"mapreduce": 1.0 / scale, "coordinator": 0.2 * scale},
        )
    selector = CostModelSelector(max_depth=2).fit(log)
    selector.attach_observer(session.observer)
    return selector, log


@pytest.fixture(scope="module")
def observed_run(tmp_path_factory):
    out = tmp_path_factory.mktemp("obs")
    session, table = _make_session()
    observer = session.attach_observer()
    modes = [session.submit(q).mode for q in _workload(table)]

    selector, log = _attach_optimizer(session)
    for entry in log.entries[:2]:
        selector.choose(entry.features)

    trace_path = session.export_trace(str(out / "trace.json"))
    metrics_path = session.export_metrics(str(out / "metrics.prom"))
    events_path = session.export_events(str(out / "events.jsonl"))
    return {
        "session": session,
        "observer": observer,
        "modes": modes,
        "trace": json.load(open(trace_path)),
        "metrics": open(metrics_path).read(),
        "events": EventLog.load_jsonl(events_path),
    }


class TestWorkedExample:
    def test_workload_mixed_modes(self, observed_run):
        modes = observed_run["modes"]
        assert "train" in modes
        assert "fallback" in modes  # tight error_threshold forces these

    def test_trace_has_nested_query_phase_task_spans(self, observed_run):
        spans = observed_run["observer"].trace.spans
        queries = [s for s in spans if s.name == "query"]
        jobs = [s for s in spans if s.name == "mapreduce"]
        phases = [s for s in spans if s.category == "phase"]
        tasks = [s for s in spans if s.category == "task"]
        assert queries and jobs and phases and tasks

        # Every engine job nests inside some query span, map phases
        # inside a job, and per-node tasks inside the map phase.
        assert all(any(q.contains(j) for q in queries) for j in jobs)
        map_phases = [p for p in phases if p.name == "map"]
        assert all(any(j.contains(p) for j in jobs) for p in map_phases)
        map_tasks = [t for t in tasks if t.name.startswith("map:")]
        assert map_tasks
        assert all(
            any(p.contains(t) for p in map_phases) for t in map_tasks
        )
        # Parallel tasks run on per-node tracks, not the main track.
        assert {t.track for t in map_tasks} != {"main"}
        assert len({t.track for t in map_tasks}) > 1

    def test_chrome_trace_document_is_perfetto_shaped(self, observed_run):
        doc = observed_run["trace"]
        events = doc["traceEvents"]
        complete = [e for e in events if e.get("ph") == "X"]
        meta = [e for e in events if e.get("ph") == "M"]
        assert complete and meta
        for event in complete:
            assert event["ts"] >= 0
            assert event["dur"] >= 0
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
        assert any(e["name"] == "query" for e in complete)
        assert any(e["name"].startswith("map:") for e in complete)

    def test_metrics_exposition_has_serve_counters_and_histogram(
        self, observed_run
    ):
        text = observed_run["metrics"]
        assert "# TYPE sea_queries_total counter" in text
        assert 'sea_queries_total{mode="train"}' in text
        assert 'sea_queries_total{mode="fallback"}' in text
        assert "# TYPE sea_query_latency_seconds summary" in text
        assert 'sea_query_latency_seconds{quantile="0.5"}' in text
        assert "sea_query_latency_seconds_count" in text
        assert 'sea_charges_total{kind="scan"}' in text

    def test_events_jsonl_has_fallback_and_optimizer_events(
        self, observed_run
    ):
        events = observed_run["events"]
        fallbacks = [e for e in events if e["type"] == "fallback"]
        assert fallbacks
        for event in fallbacks:
            assert "error_estimate" in event
            assert "signature" in event
            assert event["ts"] >= 0
        decisions = [
            e
            for e in events
            if e["type"] in ("optimizer_choice", "drift", "data_update")
        ]
        assert decisions
        choices = [e for e in events if e["type"] == "optimizer_choice"]
        assert choices
        assert all("chosen" in e and "predicted_costs" in e for e in choices)

    def test_stats_merges_observer_snapshot(self, observed_run):
        stats = observed_run["session"].stats()
        assert stats["estimated_seconds_saved"] >= 0.0
        assert stats["bytes_scanned_total"] > 0.0
        assert stats["obs_spans_recorded"] > 0
        assert stats["obs_events_recorded"] > 0
        assert stats["obs_simulated_seconds"] > 0


class TestSessionObservabilitySurface:
    def test_export_without_observer_raises(self, tmp_path):
        session, _ = _make_session()
        with pytest.raises(ConfigurationError):
            session.export_trace(str(tmp_path / "t.json"))

    def test_stats_keys_present_on_fresh_session(self):
        session, _ = _make_session()
        stats = session.stats()
        assert stats["estimated_seconds_saved"] == 0.0
        assert stats["bytes_scanned_total"] == 0.0

    def test_detached_answer_explanation_raises_clearly(self):
        session, table = _make_session()
        answer = session.submit(_workload(table, n=1)[0])
        assert answer.explanation is not None  # attached: works
        answer._session = None
        with pytest.raises(ConfigurationError, match="detached"):
            answer.explanation

    def test_null_observer_adds_no_obs_allocations(self):
        session, table = _make_session()  # no observer attached
        queries = _workload(table, n=6)
        session.submit(queries[0])  # warm caches outside the window
        tracemalloc.start()
        try:
            for query in queries[1:]:
                session.submit(query)
            snapshot = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        obs_allocs = [
            stat
            for stat in snapshot.statistics("filename")
            if "repro/obs" in stat.traceback[0].filename
        ]
        assert obs_allocs == []
