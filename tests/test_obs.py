"""Unit + property tests for repro.obs: spans, metrics, events, observer."""

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import CostMeter
from repro.obs import (
    NULL_OBSERVER,
    EventLog,
    MetricsRegistry,
    Observer,
    StackObserver,
    TraceRecorder,
)


class TestTraceRecorder:
    def test_metered_span_duration_follows_simulated_clock(self):
        rec = TraceRecorder()
        meter = CostMeter()
        with rec.span("job", meter=meter):
            meter.advance(2.5)
        (span,) = rec.spans
        assert span.start == pytest.approx(0.0)
        assert span.duration == pytest.approx(2.5)
        assert rec.now == pytest.approx(2.5)

    def test_sequential_jobs_lay_out_back_to_back(self):
        rec = TraceRecorder()
        for seconds in (1.0, 2.0):
            meter = CostMeter()
            with rec.span("job", meter=meter):
                meter.advance(seconds)
        first, second = rec.spans
        assert first.start == pytest.approx(0.0)
        assert second.start == pytest.approx(1.0)
        assert second.end == pytest.approx(3.0)

    def test_outer_unmetered_span_brackets_inner_metered_work(self):
        rec = TraceRecorder()
        with rec.span("query"):
            meter = CostMeter()
            with rec.span("engine", meter=meter):
                meter.advance(4.0)
        engine, query = rec.spans  # inner closes (appends) first
        assert engine.name == "engine"
        assert query.duration == pytest.approx(4.0)
        assert query.contains(engine)
        assert query.depth == 0 and engine.depth == 1

    def test_nested_phases_share_the_meter(self):
        rec = TraceRecorder()
        meter = CostMeter()
        with rec.span("job", meter=meter):
            with rec.span("map", meter=meter):
                meter.advance(1.0)
            with rec.span("reduce", meter=meter):
                meter.advance(0.5)
        by_name = {s.name: s for s in rec.spans}
        assert by_name["map"].start == pytest.approx(0.0)
        assert by_name["map"].duration == pytest.approx(1.0)
        assert by_name["reduce"].start == pytest.approx(1.0)
        assert by_name["job"].duration == pytest.approx(1.5)
        assert by_name["job"].contains(by_name["map"])
        assert by_name["job"].contains(by_name["reduce"])

    def test_span_records_cost_deltas(self):
        rec = TraceRecorder()
        meter = CostMeter()
        meter.charge_scan("n0", 1000)
        with rec.span("phase", meter=meter):
            meter.charge_scan("n1", 500)
            meter.charge_transfer("n1", "n2", 200)
            meter.advance(0.1)
        (span,) = rec.spans
        assert span.args["bytes_scanned"] == 500  # delta, not total
        assert span.args["bytes_shipped"] == 200
        assert span.args["nodes_touched"] == 2  # n1, n2 are new

    def test_record_lays_parallel_tasks_on_tracks(self):
        rec = TraceRecorder()
        start = rec.now
        rec.record("task-a", start, 2.0, track="node-0")
        rec.record("task-b", start, 3.0, track="node-1")
        doc = rec.to_chrome_trace()
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["tid"] for e in xs} == {1, 2}  # distinct non-main threads
        names = {
            e["args"]["name"] for e in doc["traceEvents"] if e["ph"] == "M"
        }
        assert {"main", "node-0", "node-1"} <= names

    def test_chrome_trace_round_trip(self, tmp_path):
        rec = TraceRecorder()
        meter = CostMeter()
        with rec.span("job", meter=meter, category="job", table="t"):
            meter.advance(1.25)
        path = rec.export(str(tmp_path / "trace.json"))
        doc = json.loads(open(path).read())
        (meta, event) = doc["traceEvents"]
        assert event["name"] == "job"
        assert event["ph"] == "X"
        assert event["ts"] == pytest.approx(0.0)
        assert event["dur"] == pytest.approx(1.25e6)  # simulated sec -> us
        assert event["args"]["table"] == "t"

    def test_inner_foreign_meter_folds_time_outward(self):
        # An inner engine meter (its own clock) must push the outer
        # span's timeline forward, not vanish.
        rec = TraceRecorder()
        outer = CostMeter()
        with rec.span("geo", meter=outer):
            outer.advance(1.0)
            inner = CostMeter()
            with rec.span("core_job", meter=inner):
                inner.advance(5.0)
            outer.advance(0.5)
        by_name = {s.name: s for s in rec.spans}
        assert by_name["core_job"].start == pytest.approx(1.0)
        assert by_name["geo"].duration == pytest.approx(6.5)
        assert by_name["geo"].contains(by_name["core_job"])


class TestMetricsRegistry:
    def test_counter_accumulates_and_exposes(self):
        reg = MetricsRegistry()
        reg.counter("queries_total", "Total queries").labels(mode="train").inc()
        reg.counter("queries_total").labels(mode="train").inc(2)
        reg.counter("queries_total").labels(mode="predicted").inc()
        text = reg.exposition()
        assert "# TYPE queries_total counter" in text
        assert 'queries_total{mode="train"} 3' in text
        assert 'queries_total{mode="predicted"} 1' in text

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(Exception):
            reg.counter("c").inc(-1)

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(Exception):
            reg.gauge("x")

    def test_gauge_sets(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(4.5)
        assert reg.as_dict()["g"] == 4.5

    def test_histogram_quantiles_from_reservoir(self):
        reg = MetricsRegistry()
        hist = reg.histogram("latency_seconds").labels()
        for v in np.linspace(0.0, 1.0, 101):
            hist.observe(float(v))
        assert hist.count == 101
        assert hist.quantile(0.5) == pytest.approx(0.5, abs=0.05)
        text = reg.exposition()
        assert "# TYPE latency_seconds summary" in text
        assert "latency_seconds_count 101" in text
        assert 'quantile="0.5"' in text

    def test_empty_histogram_is_nan_not_crash(self):
        reg = MetricsRegistry()
        reg.histogram("h")
        h = reg.histogram("h").labels()
        assert math.isnan(h.quantile(0.5))
        assert "NaN" in reg.exposition()

    def test_as_dict_flattens_histograms(self):
        reg = MetricsRegistry()
        reg.histogram("h").observe(2.0)
        flat = reg.as_dict()
        assert flat["h_count"] == 1.0
        assert flat["h_sum"] == 2.0
        assert flat["h_p50"] == pytest.approx(2.0)

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_property_histogram_sum_count_exact(self, values):
        reg = MetricsRegistry()
        h = reg.histogram("h").labels()
        for v in values:
            h.observe(v)
        assert h.count == len(values)
        assert h.total == pytest.approx(sum(values), rel=1e-9, abs=1e-9)
        q = h.quantile(0.5)
        assert min(values) <= q <= max(values)

    @given(
        st.lists(
            st.tuples(st.sampled_from("abc"), st.floats(0, 100)),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_property_labeled_counters_partition_the_total(self, incs):
        reg = MetricsRegistry()
        for label, amount in incs:
            reg.counter("c").labels(kind=label).inc(amount)
        flat = reg.as_dict()
        total = sum(v for k, v in flat.items() if k.startswith("c{"))
        assert total == pytest.approx(sum(a for _, a in incs))


class TestEventLog:
    def test_jsonl_round_trip(self, tmp_path):
        log = EventLog()
        log.emit("fallback", ts=1.5, signature="t:count", error_estimate=0.2)
        log.emit("drift", ts=2.0, quantum_id=3)
        path = log.export(str(tmp_path / "events.jsonl"))
        loaded = EventLog.load_jsonl(path)
        assert len(loaded) == 2
        assert loaded[0]["type"] == "fallback"
        assert loaded[0]["ts"] == 1.5
        assert loaded[0]["error_estimate"] == 0.2
        assert loaded[1]["quantum_id"] == 3

    def test_numpy_fields_serialize(self, tmp_path):
        log = EventLog()
        log.emit("x", value=np.float64(0.5), count=np.int64(3))
        path = log.export(str(tmp_path / "e.jsonl"))
        (row,) = EventLog.load_jsonl(path)
        assert row["value"] == 0.5
        assert row["count"] == 3

    def test_capacity_drops_and_counts(self):
        log = EventLog(capacity=2)
        for i in range(5):
            log.emit("e", i=i)
        assert len(log) == 2
        assert log.n_dropped == 3

    def test_of_type_filters(self):
        log = EventLog()
        log.emit("a")
        log.emit("b")
        log.emit("a")
        assert len(log.of_type("a")) == 2
        assert len(log.of_type("a", "b")) == 3


class TestObserver:
    def test_null_observer_is_inert_and_shared(self):
        assert NULL_OBSERVER.enabled is False
        assert NULL_OBSERVER.now == 0.0
        with NULL_OBSERVER.span("anything", meter=None) as args:
            assert args == {}
        NULL_OBSERVER.on_charge("scan", "n", 10, 0.1)
        NULL_OBSERVER.inc("c")
        NULL_OBSERVER.event("e", x=1)  # all no-ops, no state anywhere

    def test_null_meter_hot_path_has_no_observer(self):
        meter = CostMeter()
        assert meter.observer is None
        meter_with_null = CostMeter(observer=Observer())
        # A disabled observer is dropped at construction: the per-charge
        # path stays a plain None check.
        assert meter_with_null.observer is None

    def test_stack_observer_on_charge_feeds_metrics(self):
        obs = StackObserver()
        meter = CostMeter(observer=obs)
        meter.charge_scan("n0", 1000)
        meter.charge_transfer("n0", "n1", 500, wan=True)
        flat = obs.metrics.as_dict()
        assert flat['sea_charge_bytes_total{kind="scan"}'] == 1000
        assert flat['sea_charge_bytes_total{kind="transfer_wan"}'] == 500
        assert flat['sea_charges_total{kind="scan"}'] == 1.0

    def test_stack_observer_event_stamps_simulated_time(self):
        obs = StackObserver()
        meter = CostMeter(observer=obs)
        with obs.span("job", meter=meter):
            meter.advance(3.0)
        obs.event("after", note="done")
        (event,) = obs.events.of_type("after")
        assert event.ts == pytest.approx(3.0)

    def test_snapshot_includes_volumes(self):
        obs = StackObserver()
        with obs.span("s"):
            pass
        obs.event("e")
        snap = obs.snapshot()
        assert snap["obs_spans_recorded"] == 1.0
        assert snap["obs_events_recorded"] == 1.0
