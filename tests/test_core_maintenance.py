"""Unit tests for repro.core.maintenance (RT1.4)."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.core import (
    AnswerModelFactory,
    DatalessPredictor,
    DriftDetector,
    DataUpdateMonitor,
    PrequentialErrorEstimator,
    QuerySpaceQuantizer,
)


def estimator_with_residuals(good=20, bad=0):
    est = PrequentialErrorEstimator(window=64, min_observations=1)
    for _ in range(good):
        est.record(0, 100.0, 100.0)
    for _ in range(bad):
        est.record(0, 0.0, 100.0)
    return est


class TestDriftDetector:
    def test_stable_errors_never_flag(self):
        detector = DriftDetector()
        est = PrequentialErrorEstimator(min_observations=1)
        flagged = False
        for _ in range(50):
            est.record(0, 95.0, 100.0)
            flagged = flagged or detector.check(est, 0)
        assert not flagged

    def test_degradation_flags_quantum(self):
        detector = DriftDetector(factor=2.0, min_history=10, recent_window=4)
        est = PrequentialErrorEstimator(window=64, min_observations=1)
        flagged = False
        for _ in range(20):
            est.record(0, 99.0, 100.0)  # 1% error regime
        for _ in range(6):
            est.record(0, 20.0, 100.0)  # 80% error regime
            flagged = flagged or detector.check(est, 0)
        assert flagged
        assert detector.is_flagged(0)

    def test_no_flag_before_min_history(self):
        detector = DriftDetector(min_history=30)
        est = estimator_with_residuals(good=5, bad=5)
        assert not detector.check(est, 0)

    def test_flag_recovers_after_observations(self):
        detector = DriftDetector(
            factor=2.0, min_history=10, recent_window=4, recovery_observations=3
        )
        est = PrequentialErrorEstimator(window=64, min_observations=1)
        for _ in range(20):
            est.record(0, 99.0, 100.0)
        for _ in range(6):
            est.record(0, 20.0, 100.0)
            detector.check(est, 0)
        assert detector.is_flagged(0)
        for _ in range(4):
            est.record(0, 99.0, 100.0)
            detector.check(est, 0)
        assert not detector.is_flagged(0)

    def test_absolute_floor_ignores_noise_near_zero(self):
        detector = DriftDetector(factor=2.0, absolute_floor=0.5, min_history=10)
        est = PrequentialErrorEstimator(min_observations=1)
        for _ in range(20):
            est.record(0, 100.0, 100.0)  # 0 error history
        est.record(0, 99.0, 100.0)  # tiny recent error; > 2 * 0 historical
        assert not detector.check(est, 0)  # floor suppresses the flag

    def test_invalid_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            DriftDetector(factor=1.0)

    def test_flagged_quanta_set(self):
        detector = DriftDetector(factor=2.0, min_history=10, recent_window=4)
        est = PrequentialErrorEstimator(min_observations=1)
        for _ in range(20):
            est.record(3, 99.0, 100.0)
        for _ in range(6):
            est.record(3, 10.0, 100.0)
            detector.check(est, 3)
        assert detector.flagged_quanta == {3}


class TestDataUpdateMonitor:
    def trained_predictor(self):
        predictor = DatalessPredictor(
            quantizer=QuerySpaceQuantizer(n_quanta=2, warmup=8, grow_threshold=2.0),
            factory=AnswerModelFactory("linear"),
        )
        rng = np.random.default_rng(0)
        # Range-query vectors: (cx, cy, hwx, hwy) near two interest regions.
        for _ in range(60):
            c = rng.normal(loc=(10.0, 10.0), scale=1.0, size=2)
            predictor.observe(np.concatenate([c, [2.0, 2.0]]), c.sum())
        for _ in range(60):
            c = rng.normal(loc=(80.0, 80.0), scale=1.0, size=2)
            predictor.observe(np.concatenate([c, [2.0, 2.0]]), c.sum())
        return predictor

    def test_overlapping_update_invalidates_only_that_region(self):
        predictor = self.trained_predictor()
        monitor = DataUpdateMonitor()
        n = monitor.invalidate_overlapping(
            predictor, np.array([5.0, 5.0]), np.array([15.0, 15.0])
        )
        assert n >= 1
        # The far region's quanta survive with their samples.
        survivors = [
            predictor.model_for(q).n_samples for q in predictor.quantum_ids()
        ]
        assert max(survivors) > 0

    def test_disjoint_update_invalidates_nothing(self):
        predictor = self.trained_predictor()
        monitor = DataUpdateMonitor()
        n = monitor.invalidate_overlapping(
            predictor, np.array([500.0, 500.0]), np.array([600.0, 600.0])
        )
        assert n == 0

    def test_cold_predictor_resets_conservatively(self):
        predictor = DatalessPredictor()
        monitor = DataUpdateMonitor()
        # Not warm yet: no centroids to reason about; must not crash.
        monitor.invalidate_overlapping(
            predictor, np.zeros(2), np.ones(2)
        )

    def test_quantum_box_radius_encoding(self):
        # (cx, cy, radius) vectors: box = center +- radius in each dim.
        lo, hi = DataUpdateMonitor._quantum_box(
            np.array([10.0, 20.0, 3.0]), d=2
        )
        assert lo.tolist() == [7.0, 17.0]
        assert hi.tolist() == [13.0, 23.0]

    def test_quantum_box_range_encoding(self):
        lo, hi = DataUpdateMonitor._quantum_box(
            np.array([10.0, 20.0, 1.0, 2.0]), d=2
        )
        assert lo.tolist() == [9.0, 18.0]
        assert hi.tolist() == [11.0, 22.0]

    def test_quantum_box_unknown_encoding_is_conservative(self):
        lo, hi = DataUpdateMonitor._quantum_box(
            np.array([10.0, 20.0, 1.0, 2.0, 3.0]), d=2
        )
        assert np.all(np.isinf(lo)) and np.all(np.isinf(hi))
