"""Unit tests for repro.core.predictor (objective O3)."""

import numpy as np
import pytest

from repro.common.errors import NotTrainedError
from repro.core import AnswerModelFactory, DatalessPredictor, QuerySpaceQuantizer


def linear_world(v):
    """Ground truth: answer is a linear function of the query vector."""
    return 2.0 * v[0] + 0.5 * v[1] + 10.0


def train_predictor(n=200, seed=0, **kwargs):
    predictor = DatalessPredictor(
        quantizer=QuerySpaceQuantizer(n_quanta=4, warmup=16, grow_threshold=2.0),
        factory=AnswerModelFactory("linear"),
        **kwargs,
    )
    rng = np.random.default_rng(seed)
    for _ in range(n):
        v = rng.normal(loc=(10.0, 5.0), scale=2.0, size=2)
        predictor.observe(v, linear_world(v))
    return predictor


class TestTrainingAndPrediction:
    def test_predicts_learned_function(self):
        predictor = train_predictor()
        v = np.array([10.0, 5.0])
        prediction = predictor.predict(v)
        assert prediction.scalar == pytest.approx(linear_world(v), rel=0.05)

    def test_prediction_before_any_training_raises(self):
        predictor = DatalessPredictor()
        with pytest.raises(NotTrainedError):
            predictor.predict([0.0, 0.0])

    def test_error_estimate_populated_after_training(self):
        predictor = train_predictor()
        prediction = predictor.predict([10.0, 5.0])
        assert prediction.error_estimate is not None
        assert prediction.error_estimate < 0.1
        assert prediction.reliable

    def test_unreliable_far_from_training(self):
        predictor = train_predictor()
        prediction = predictor.predict([1000.0, -1000.0])
        assert prediction.novelty > predictor.novelty_limit
        assert not prediction.reliable

    def test_observe_returns_quantum_id(self):
        predictor = train_predictor(n=50)
        qid = predictor.observe([10.0, 5.0], linear_world([10.0, 5.0]))
        assert qid in predictor.quantum_ids()

    def test_vector_answers(self):
        predictor = DatalessPredictor(
            answer_dim=2,
            quantizer=QuerySpaceQuantizer(n_quanta=2, warmup=8),
        )
        rng = np.random.default_rng(1)
        for _ in range(60):
            v = rng.normal(size=2)
            predictor.observe(v, [v[0], v[1] * 3.0])
        prediction = predictor.predict([0.5, 0.5])
        assert prediction.value.shape == (2,)
        assert prediction.value[1] == pytest.approx(1.5, abs=0.15)

    def test_nearest_trained_quantum_serves_untrained_one(self):
        predictor = DatalessPredictor(
            quantizer=QuerySpaceQuantizer(
                n_quanta=2, warmup=8, grow_threshold=0.5, max_quanta=16
            ),
        )
        rng = np.random.default_rng(2)
        # Train heavily in one region only.
        for _ in range(80):
            v = rng.normal(loc=(0.0, 0.0), scale=0.5, size=2)
            predictor.observe(v, linear_world(v))
        # A fresh far-away quantum exists but is untrained after one sample.
        predictor.observe([50.0, 50.0], linear_world([50.0, 50.0]))
        prediction = predictor.predict([50.0, 50.0])
        assert np.isfinite(prediction.scalar)


class TestMaintenanceHooks:
    def test_reset_quantum_clears_model_and_errors(self):
        predictor = train_predictor()
        qid = predictor.quantizer.assign(
            predictor._scale_probe([10.0, 5.0])
            if hasattr(predictor, "_scale_probe")
            else [10.0, 5.0]
        )
        qid = predictor.predict([10.0, 5.0]).quantum_id
        predictor.reset_quantum(qid)
        model = predictor.model_for(qid)
        assert model.n_samples == 0
        assert predictor.errors.estimate(qid) is None

    def test_reset_all(self):
        predictor = train_predictor(n=60)
        predictor.reset_all()
        with pytest.raises(NotTrainedError):
            predictor.predict([10.0, 5.0])

    def test_set_decay_applies_to_all_models(self):
        predictor = train_predictor(n=60)
        predictor.set_decay(0.1)
        for qid in predictor.quantum_ids():
            assert predictor.model_for(qid).decay_rate == 0.1


class TestFootprint:
    def test_state_bounded_as_stream_grows(self):
        # Per-quantum buffers are bounded, so once they saturate, 4x the
        # stream adds almost no state (contrast DBL's linear growth).
        large = train_predictor(n=2000, seed=3)
        xlarge = train_predictor(n=8000, seed=3)
        # 4x the stream may still spawn a few new quanta (bounded by
        # max_quanta), but growth is sublinear: < 3x state for 4x data.
        assert xlarge.state_bytes() < large.state_bytes() * 3

    def test_centroid_of_valid_quantum(self):
        predictor = train_predictor()
        qid = predictor.predict([10.0, 5.0]).quantum_id
        centroid = predictor.centroid_of(qid)
        assert centroid.shape == (2,)

    def test_centroid_of_invalid_quantum_rejected(self):
        predictor = train_predictor()
        with pytest.raises(Exception):
            predictor.centroid_of(999)
