"""Unit tests for repro.cluster: nodes, topology, distributed storage."""

import numpy as np
import pytest

from repro.common import CostMeter
from repro.common.errors import ConfigurationError, StorageError
from repro.cluster import ClusterTopology, DataNode, DistributedStore
from repro.data import Table, uniform_table


class TestDataNode:
    def test_partition_accounting(self):
        node = DataNode("n0")
        node.add_partition("t/p0", 1000)
        assert node.stored_bytes == 1000
        node.drop_partition("t/p0", 1000)
        assert node.stored_bytes == 0

    def test_duplicate_partition_rejected(self):
        node = DataNode("n0")
        node.add_partition("t/p0", 10)
        with pytest.raises(ValueError):
            node.add_partition("t/p0", 10)

    def test_drop_unknown_partition_rejected(self):
        with pytest.raises(KeyError):
            DataNode("n0").drop_partition("t/p0", 10)

    def test_index_bytes(self):
        node = DataNode("n0")
        node.add_index_bytes(256)
        assert node.total_bytes == 256


class TestTopology:
    def test_single_datacenter(self):
        topo = ClusterTopology.single_datacenter(4)
        assert len(topo) == 4
        assert topo.datacenters == ["dc0"]
        assert not topo.is_wan(topo.node_ids[0], topo.node_ids[1])

    def test_geo_distributed_wan_detection(self):
        topo = ClusterTopology.geo_distributed({"eu": 2, "us": 2})
        eu = topo.nodes_in("eu")
        us = topo.nodes_in("us")
        assert topo.is_wan(eu[0], us[0])
        assert not topo.is_wan(eu[0], eu[1])

    def test_duplicate_node_rejected(self):
        topo = ClusterTopology()
        topo.add_node(DataNode("n0"))
        with pytest.raises(ConfigurationError):
            topo.add_node(DataNode("n0"))

    def test_unknown_lookups_raise(self):
        topo = ClusterTopology.single_datacenter(2)
        with pytest.raises(ConfigurationError):
            topo.node("zzz")
        with pytest.raises(ConfigurationError):
            topo.nodes_in("nowhere")

    def test_pick_coordinator_deterministic(self):
        topo = ClusterTopology.single_datacenter(3)
        assert topo.pick_coordinator() == topo.pick_coordinator()

    def test_storage_bytes_totals_nodes(self):
        topo = ClusterTopology.single_datacenter(2)
        topo.node(topo.node_ids[0]).add_index_bytes(100)
        assert topo.storage_bytes() == 100


class TestDistributedStore:
    def test_put_table_spreads_partitions(self):
        topo = ClusterTopology.single_datacenter(4)
        store = DistributedStore(topo)
        table = uniform_table(1000, seed=0, name="t")
        stored = store.put_table(table, partitions_per_node=2)
        assert len(stored.partitions) == 8
        assert stored.n_rows == 1000
        assert len(set(stored.nodes)) == 4

    def test_replication_places_copies(self):
        topo = ClusterTopology.single_datacenter(4)
        store = DistributedStore(topo, replication=2)
        stored = store.put_table(uniform_table(100, seed=1, name="t"))
        for partition in stored.partitions:
            assert len(partition.all_nodes) == 2

    def test_replication_exceeding_nodes_rejected(self):
        topo = ClusterTopology.single_datacenter(2)
        with pytest.raises(ConfigurationError):
            DistributedStore(topo, replication=3)

    def test_duplicate_table_rejected(self):
        topo = ClusterTopology.single_datacenter(2)
        store = DistributedStore(topo)
        store.put_table(uniform_table(10, seed=2, name="t"))
        with pytest.raises(StorageError):
            store.put_table(uniform_table(10, seed=3, name="t"))

    def test_unknown_table_rejected(self):
        store = DistributedStore(ClusterTopology.single_datacenter(1))
        with pytest.raises(StorageError):
            store.table("nope")

    def test_drop_table_frees_node_bytes(self):
        topo = ClusterTopology.single_datacenter(2)
        store = DistributedStore(topo)
        store.put_table(uniform_table(100, seed=4, name="t"))
        assert topo.storage_bytes() > 0
        store.drop_table("t")
        assert topo.storage_bytes() == 0
        assert "t" not in store

    def test_full_table_roundtrip(self):
        topo = ClusterTopology.single_datacenter(3)
        store = DistributedStore(topo)
        table = uniform_table(500, seed=5, name="t")
        stored = store.put_table(table, partitions_per_node=2)
        merged = stored.full_table()
        assert np.array_equal(np.sort(merged["x0"]), np.sort(table["x0"]))

    def test_read_partition_charges_meter(self):
        topo = ClusterTopology.single_datacenter(2)
        store = DistributedStore(topo)
        stored = store.put_table(uniform_table(100, seed=6, name="t"))
        meter = CostMeter()
        data = store.read_partition(stored.partitions[0], meter)
        report = meter.freeze()
        assert report.bytes_scanned == data.n_bytes
        assert report.nodes_touched == 1

    def test_read_rows_charges_proportionally(self):
        topo = ClusterTopology.single_datacenter(2)
        store = DistributedStore(topo)
        stored = store.put_table(uniform_table(100, seed=7, name="t"))
        partition = stored.partitions[0]
        meter = CostMeter()
        rows = store.read_rows(partition, [0, 1, 2], meter)
        assert rows.n_rows == 3
        assert meter.freeze().bytes_scanned == 3 * partition.data.row_bytes

    def test_read_from_wrong_replica_rejected(self):
        topo = ClusterTopology.single_datacenter(3)
        store = DistributedStore(topo)
        stored = store.put_table(uniform_table(30, seed=8, name="t"))
        partition = stored.partitions[0]
        other = next(
            n for n in topo.node_ids if n not in partition.all_nodes
        )
        with pytest.raises(StorageError):
            store.read_partition(partition, CostMeter(), node_id=other)

    def test_append_rows_grows_table(self):
        topo = ClusterTopology.single_datacenter(2)
        store = DistributedStore(topo)
        store.put_table(uniform_table(100, seed=9, name="t"))
        extra = uniform_table(50, seed=10, name="t")
        store.append_rows("t", extra)
        assert store.table("t").n_rows == 150

    def test_append_schema_mismatch_rejected(self):
        topo = ClusterTopology.single_datacenter(2)
        store = DistributedStore(topo)
        store.put_table(uniform_table(10, seed=11, name="t"))
        bad = Table({"zzz": np.zeros(5)}, name="t")
        with pytest.raises(ConfigurationError):
            store.append_rows("t", bad)

    def test_delete_rows_by_predicate(self):
        topo = ClusterTopology.single_datacenter(2)
        store = DistributedStore(topo)
        store.put_table(uniform_table(200, seed=12, name="t"))
        deleted = store.delete_rows("t", lambda t: t["x0"] < 50.0)
        assert deleted > 0
        assert store.table("t").n_rows == 200 - deleted
        assert np.all(store.table("t").full_table()["x0"] >= 50.0)

    def test_put_table_on_subset_of_nodes(self):
        topo = ClusterTopology.single_datacenter(4)
        store = DistributedStore(topo)
        targets = topo.node_ids[:2]
        stored = store.put_table(
            uniform_table(100, seed=13, name="t"), nodes=targets
        )
        assert set(stored.nodes) <= set(targets)


class TestReplicaLoadBalancing:
    def test_reads_spread_across_replicas(self):
        topo = ClusterTopology.single_datacenter(4)
        store = DistributedStore(topo, replication=2)
        stored = store.put_table(uniform_table(4000, seed=20, name="t"))
        partition = stored.partitions[0]
        meter = CostMeter()
        for _ in range(10):
            node = store.pick_replica(partition)
            store.read_rows(partition, [0, 1, 2], meter, node_id=node)
        served = [store.served_bytes(n) for n in partition.all_nodes]
        # Both replicas served work; neither hoards it all.
        assert all(s > 0 for s in served)
        assert max(served) <= sum(served) * 0.7

    def test_pick_replica_prefers_idle_node(self):
        topo = ClusterTopology.single_datacenter(3)
        store = DistributedStore(topo, replication=2)
        stored = store.put_table(uniform_table(300, seed=21, name="t"))
        partition = stored.partitions[0]
        meter = CostMeter()
        primary = partition.primary_node
        store.read_partition(partition, meter, node_id=primary)
        assert store.pick_replica(partition) != primary

    def test_served_bytes_tracks_scans(self):
        topo = ClusterTopology.single_datacenter(2)
        store = DistributedStore(topo)
        stored = store.put_table(uniform_table(100, seed=22, name="t"))
        partition = stored.partitions[0]
        store.read_partition(partition, CostMeter())
        assert store.served_bytes(partition.primary_node) == partition.n_bytes
