"""The benchmark regression sentinel (``benchmarks/regress.py``).

Drives :func:`regress.main` against synthetic trajectory files in a tmp
directory: a 20% slowdown in the newest entry must flag (exit 1), stable
or improved trajectories must pass, thin histories are skipped, noisy
histories widen the tolerance band, and lower-is-better metrics flag in
the opposite direction.
"""

import json
import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "benchmarks"))

import regress  # noqa: E402


def _write_serving(root, batched_values, sequential=2000.0):
    entries = [
        {
            "experiment": "e03_throughput",
            "recorded_at": f"2026-08-0{i + 1}T00:00:00",
            "rows": 50000,
            "queries": 1000,
            "batched_qps": value,
            "batched_qps_iqr": 0.0,
            "sequential_qps": sequential,
            "sequential_qps_iqr": 0.0,
        }
        for i, value in enumerate(batched_values)
    ]
    path = os.path.join(root, "BENCH_serving.json")
    with open(path, "w") as handle:
        json.dump({"entries": entries}, handle)
    return path


def _write_parallel(root, wall_values):
    entries = [
        {
            "experiment": "e19_parallel",
            "n_rows": 60000,
            "partitions": 16,
            "sweep": [
                {"workers": 1, "wall_sec_median": value, "wall_sec_iqr": 0.0},
                {"workers": 4, "wall_sec_median": value / 2},
            ],
        }
        for value in wall_values
    ]
    path = os.path.join(root, "BENCH_parallel.json")
    with open(path, "w") as handle:
        json.dump({"entries": entries}, handle)
    return path


def _write_gateway(root, goodput_values, ratios=None):
    ratios = ratios or [1.0] * len(goodput_values)
    entries = [
        {
            "experiment": "e24_gateway",
            "rows": 20000,
            "requests": 400,
            "tenants": 2,
            "host_cpus": 1,
            "high_rate_goodput_qps": goodput,
            "high_rate_goodput_iqr": 0.0,
            "passthrough_p50_ratio": ratio,
        }
        for goodput, ratio in zip(goodput_values, ratios)
    ]
    path = os.path.join(root, "BENCH_serving_gateway.json")
    with open(path, "w") as handle:
        json.dump({"entries": entries}, handle)
    return path


class TestRegressionSentinel:
    def test_flags_synthetic_20pct_slowdown(self, tmp_path, capsys):
        _write_serving(str(tmp_path), [1000.0, 1000.0, 800.0])
        assert regress.main(["--root", str(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert "REGRESSION" in err
        assert "batched_qps=800" in err

    def test_passes_on_stable_and_improved_trajectories(self, tmp_path):
        _write_serving(str(tmp_path), [1000.0, 1000.0, 1000.0])
        assert regress.main(["--root", str(tmp_path)]) == 0
        _write_serving(str(tmp_path), [1000.0, 1000.0, 1300.0])
        assert regress.main(["--root", str(tmp_path)]) == 0

    def test_small_dip_within_tolerance_passes(self, tmp_path):
        _write_serving(str(tmp_path), [1000.0, 1000.0, 950.0])
        assert regress.main(["--root", str(tmp_path)]) == 0

    def test_thin_history_is_skipped_not_gated(self, tmp_path, capsys):
        # One prior entry is not a trend: even a 50% drop passes.
        _write_serving(str(tmp_path), [1000.0, 500.0])
        assert regress.main(["--root", str(tmp_path)]) == 0
        assert "checked" not in capsys.readouterr().out

    def test_noisy_history_widens_the_band(self, tmp_path):
        # Prior IQR ~300: a drop that the flat-history gate would flag
        # stays within 1.5x IQR of this noisy trajectory.
        _write_serving(str(tmp_path), [700.0, 1000.0, 1300.0, 800.0])
        assert regress.main(["--root", str(tmp_path)]) == 0

    def test_lower_is_better_flags_slowdowns_only(self, tmp_path):
        _write_parallel(str(tmp_path), [10.0, 10.0, 12.5])
        assert regress.main(["--root", str(tmp_path)]) == 1
        _write_parallel(str(tmp_path), [10.0, 10.0, 8.0])
        assert regress.main(["--root", str(tmp_path)]) == 0

    def test_gateway_goodput_and_p50_ratio_directions(self, tmp_path, capsys):
        # Goodput is higher-is-better: a 20% drop flags.
        _write_gateway(str(tmp_path), [2800.0, 2800.0, 2240.0])
        assert regress.main(["--root", str(tmp_path)]) == 1
        assert "high_rate_goodput_qps" in capsys.readouterr().err
        # The pass-through p50 ratio is lower-is-better: creeping past
        # the historical band flags even while goodput holds.
        _write_gateway(
            str(tmp_path),
            [2800.0, 2800.0, 2800.0],
            ratios=[0.97, 0.99, 1.25],
        )
        assert regress.main(["--root", str(tmp_path)]) == 1
        assert "passthrough_p50_ratio" in capsys.readouterr().err
        _write_gateway(
            str(tmp_path),
            [2800.0, 2800.0, 2900.0],
            ratios=[0.97, 0.99, 1.00],
        )
        assert regress.main(["--root", str(tmp_path)]) == 0

    def test_groups_never_mix_scales(self, tmp_path):
        # A reduced-scale smoke entry trails full-scale history: its
        # different (rows, queries) key forms a separate (thin) group.
        path = _write_serving(str(tmp_path), [1000.0, 1000.0, 1000.0])
        payload = json.load(open(path))
        smoke = dict(payload["entries"][-1])
        smoke.update({"rows": 10000, "queries": 300, "batched_qps": 100.0})
        payload["entries"].append(smoke)
        json.dump(payload, open(path, "w"))
        assert regress.main(["--root", str(tmp_path)]) == 0

    def test_missing_and_corrupt_files_are_tolerated(self, tmp_path):
        assert regress.main(["--root", str(tmp_path)]) == 0
        with open(os.path.join(str(tmp_path), "BENCH_serving.json"), "w") as f:
            f.write("not json")
        assert regress.main(["--root", str(tmp_path)]) == 0

    def test_committed_repo_trajectories_pass(self):
        repo_root = os.path.abspath(
            os.path.join(os.path.dirname(__file__), "..")
        )
        assert regress.main(["--root", repo_root]) == 0
