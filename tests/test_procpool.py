"""Process-pool scan execution over shared-memory partition views (DESIGN §12).

Four families of guarantees:

* **Shipping** — every engine task spec pickles, and a published
  partition (row and columnar layouts) rebuilds bitwise-identical
  zero-copy views from its shared segment.
* **Generations** — republish traffic after a mutation is bounded to
  the mutated partitions' footprints; untouched partitions keep their
  segments.
* **Byte-identity** — a hypothesis property drives the full engine
  stack through serial, thread, and process executors and requires
  identical answers and cost reports; session-level metrics agree
  modulo the ``parallel_*`` family.
* **Lifecycle** — a SIGKILLed worker surfaces as a recorded
  :class:`WorkerCrashError` with a clean inline fallback (same
  results), and a session dropped without ``close()`` unlinks its
  segments via the executor finalizer.
"""

import gc
import os
import pickle
import signal
import time
from multiprocessing.shared_memory import SharedMemory

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import ExactEngine
from repro.cluster import ClusterTopology, DistributedStore
from repro.common.errors import WorkerCrashError
from repro.data import gaussian_mixture_table
from repro.engine import CoordinatorEngine
from repro.engine.specs import (
    BatchPartialSpec,
    GridAssignSpec,
    QueryPartialSpec,
    RowTakeSpec,
)
from repro.faults import FaultInjector, FaultSchedule
from repro.obs import StackObserver
from repro.parallel import (
    BoundSpec,
    ProcessScanExecutor,
    ScanExecutor,
    SharedPartitionStore,
    partition_morsels,
)
from repro.parallel import procpool
from repro.queries import (
    AnalyticsQuery,
    Count,
    Mean,
    Median,
    RangeSelection,
    Std,
)
from repro.session import SEASession
from tests.test_parallel import _drive


def make_store(n_rows=2000, seed=3, layout="row", n_nodes=3, parts_per_node=2):
    topo = ClusterTopology.single_datacenter(n_nodes)
    store = DistributedStore(topo, layout=layout)
    table = gaussian_mixture_table(
        n_rows, dims=("x0", "x1"), seed=seed, name="data"
    )
    store.put_table(table, partitions_per_node=parts_per_node)
    return store


def selection(lo=(5.0, 5.0), hi=(60.0, 70.0)):
    return RangeSelection(("x0", "x1"), np.asarray(lo), np.asarray(hi))


@pytest.fixture
def worker_caches():
    """Isolate the worker-side module caches when attaching in-process."""
    yield
    for name, shm in list(procpool._ATTACHED.items()):
        try:
            shm.close()
        except BufferError:
            pass
        procpool._ATTACHED.pop(name, None)
    procpool._REBUILT.clear()


# --------------------------------------------------------------------------
# Specs pickle and survive the trip
# --------------------------------------------------------------------------
class TestSpecPicklability:
    def test_engine_specs_pickle_and_compute_identically(self):
        store = make_store()
        partition = store.table("data").partitions[0]
        specs = [
            QueryPartialSpec(selection(), Mean("x0")),
            BatchPartialSpec([selection()], [Count(), Std("x1")]),
            BoundSpec(BatchPartialSpec([selection()], [Count()]), ((0,),)),
            RowTakeSpec((np.arange(4), np.array([9, 2]))),
            GridAssignSpec(
                ("x0", "x1"), np.zeros(2), np.ones(2) * 100.0, 8
            ),
        ]
        for spec in specs:
            clone = pickle.loads(pickle.dumps(spec))
            if isinstance(spec, RowTakeSpec):
                got, want = clone(partition), spec(partition)
                assert np.array_equal(got[0], want[0])
                assert repr(got[1].matrix(("x0", "x1"))) == repr(
                    want[1].matrix(("x0", "x1"))
                )
            else:
                assert repr(clone(partition.data)) == repr(spec(partition.data))

    def test_row_take_spec_payload_kind(self):
        spec = RowTakeSpec((np.arange(3),))
        assert spec.payload_kind == "partition"
        assert BoundSpec(spec).payload_kind == "partition"


# --------------------------------------------------------------------------
# Shared segments: publish, attach, republish accounting
# --------------------------------------------------------------------------
class TestSharedPartitionStore:
    @pytest.mark.parametrize("layout", ["row", "column"])
    def test_round_trip_is_bitwise(self, layout, worker_caches):
        store = make_store(layout=layout)
        shared = SharedPartitionStore()
        try:
            for partition in store.table("data").partitions:
                header = shared.ensure(partition)
                table, columnar = procpool._attach_partition(header)
                for name in partition.data.column_names:
                    assert (
                        table.column(name).tobytes()
                        == partition.data.column(name).tobytes()
                    )
                    assert not table.column(name).flags.writeable
                if layout == "column":
                    assert columnar is not None
                    decoded = columnar.to_table()
                    want = partition.columnar.to_table()
                    for name in want.column_names:
                        assert (
                            decoded.column(name).tobytes()
                            == want.column(name).tobytes()
                        )
                else:
                    assert columnar is None
        finally:
            shared.close()

    def test_ensure_is_idempotent_per_generation(self):
        store = make_store()
        shared = SharedPartitionStore()
        try:
            partitions = store.table("data").partitions
            first = [shared.ensure(p) for p in partitions]
            published = shared.publish_bytes
            second = [shared.ensure(p) for p in partitions]
            assert first == second
            assert shared.publish_bytes == published
            assert shared.republish_bytes == 0
        finally:
            shared.close()

    def test_republish_bounded_to_mutated_partitions(self):
        store = make_store(n_rows=3000)
        shared = SharedPartitionStore()
        try:
            stored = store.table("data")
            before = {
                p.index: shared.ensure(p)["segment"] for p in stored.partitions
            }
            assert shared.republish_bytes == 0
            store.append_rows(
                "data",
                gaussian_mixture_table(
                    40, dims=("x0", "x1"), seed=9, name="data"
                ),
            )
            stored = store.table("data")
            mutated = {
                p.index for p in stored.partitions if p.generation > 0
            }
            assert mutated  # the append touched at least one partition
            for p in stored.partitions:
                shared.ensure(p)
            expected = sum(
                entry.nbytes
                for (table, index), entry in shared._segments.items()
                if index in mutated
            )
            assert shared.republish_bytes == expected
            for p in stored.partitions:
                if p.index not in mutated and p.index in before:
                    # Untouched partitions keep their original segment.
                    assert shared.ensure(p)["segment"] == before[p.index]
        finally:
            shared.close()


# --------------------------------------------------------------------------
# Byte-identity: serial vs thread vs process across the whole stack
# --------------------------------------------------------------------------
def _build_world(seed, parts_per_node, pruning, faulty, make_executor):
    topo = ClusterTopology.single_datacenter(4)
    store = DistributedStore(topo, replication=2 if faulty else 1)
    table = gaussian_mixture_table(
        900, dims=("x0", "x1"), seed=seed, name="data"
    )
    store.put_table(table, partitions_per_node=parts_per_node)
    if faulty:
        schedule = (
            FaultSchedule().crash("node-1").flaky("node-2", 0.3).slow("node-3", 2.0)
        )
        store.attach_faults(FaultInjector(schedule, seed=seed + 1))
    executor = make_executor()
    engine = ExactEngine(
        store,
        pruning=pruning,
        executor=executor,
        failure_mode="degrade" if faulty else "fail",
    )
    coordinator = CoordinatorEngine(store, executor=executor)
    return store, engine, coordinator, executor


class TestByteIdentityAcrossExecutors:
    @given(
        seed=st.integers(0, 30),
        parts_per_node=st.sampled_from([1, 3]),
        pruning=st.booleans(),
        faulty=st.booleans(),
    )
    @settings(max_examples=5, deadline=None)
    def test_serial_thread_process_agree(
        self, seed, parts_per_node, pruning, faulty
    ):
        outputs = []
        for make_executor in (
            lambda: ScanExecutor(1),
            lambda: ScanExecutor(3),
            lambda: ProcessScanExecutor(3),
        ):
            store, engine, coordinator, executor = _build_world(
                seed, parts_per_node, pruning, faulty, make_executor
            )
            try:
                outputs.append(_drive(store, engine, coordinator, seed))
            finally:
                executor.close()
        assert outputs[0] == outputs[1]
        assert outputs[0] == outputs[2]

    @pytest.mark.parametrize("layout", ["row", "column"])
    def test_session_metrics_agree_modulo_parallel(self, layout):
        def drive(executor):
            session = SEASession(
                n_nodes=3, workers=2, layout=layout, executor=executor
            )
            obs = session.attach_observer(StackObserver())
            table = gaussian_mixture_table(
                1500, dims=("x0", "x1"), seed=4, name="data"
            )
            session.store.put_table(table, partitions_per_node=2)
            answers = []
            for aggregate in (Count(), Mean("x0"), Median("x1")):
                query = AnalyticsQuery("data", selection(), aggregate)
                answer, report = session.engine.execute(query)
                answers.append((repr(answer), report.as_dict()))
            metrics = {
                key: value
                for key, value in obs.metrics.as_dict().items()
                if not key.startswith("parallel_")
            }
            session.close()
            return answers, metrics

        thread_out = drive("thread")
        process_out = drive("process")
        assert thread_out == process_out


# --------------------------------------------------------------------------
# Lifecycle: crash recovery, idle reaping, finalizer teardown
# --------------------------------------------------------------------------
class TestLifecycle:
    def test_killed_worker_records_typed_error_and_falls_back(self):
        store = make_store(n_rows=1200)
        stored = store.table("data")
        spec = QueryPartialSpec(selection(), Mean("x0"))
        expected = [spec(p.data) for p in stored.partitions]
        executor = ProcessScanExecutor(workers=2)
        try:
            executor.warm()
            victim = next(iter(executor._resources.pool._processes))
            os.kill(victim, signal.SIGKILL)
            time.sleep(0.3)  # let the pool notice the corpse
            morsels = partition_morsels(stored.partitions, spec=spec)
            results = executor.run(morsels, spec, label="crash_test")
            assert results == expected
            assert executor.crashes
            assert all(
                isinstance(c, WorkerCrashError) for c in executor.crashes
            )
            assert "crash_test" in str(executor.crashes[-1])
            # The pool was rebuilt: the next batch runs in processes again.
            n_crashes = len(executor.crashes)
            again = executor.run(morsels, spec, label="after_crash")
            assert again == expected
            assert len(executor.crashes) == n_crashes
        finally:
            executor.close()

    def test_morsels_without_spec_compute_inline(self):
        store = make_store(n_rows=600)
        stored = store.table("data")
        executor = ProcessScanExecutor(workers=2)
        try:
            morsels = partition_morsels(stored.partitions)  # no spec
            fn = lambda data: float(data.column("x0").sum())  # unpicklable
            assert executor.run(morsels, fn) == [
                fn(p.data) for p in stored.partitions
            ]
            assert len(executor.store) == 0  # nothing was shipped
        finally:
            executor.close()

    def test_idle_pool_is_reaped_and_respawns(self):
        store = make_store(n_rows=400)
        stored = store.table("data")
        spec = QueryPartialSpec(selection(), Count())
        executor = ProcessScanExecutor(workers=2, idle_ttl=0.2)
        try:
            morsels = partition_morsels(stored.partitions, spec=spec)
            expected = executor.run(morsels, spec)
            deadline = time.monotonic() + 5.0
            while executor._resources.pool is not None:
                assert time.monotonic() < deadline, "idle pool never reaped"
                time.sleep(0.05)
            # Segments survive the reap; the pool respawns on demand.
            assert len(executor.store) == len(stored.partitions)
            assert executor.run(morsels, spec) == expected
        finally:
            executor.close()

    def test_close_unlinks_segments_and_is_idempotent(self):
        store = make_store(n_rows=500)
        stored = store.table("data")
        spec = QueryPartialSpec(selection(), Count())
        executor = ProcessScanExecutor(workers=2)
        executor.run(partition_morsels(stored.partitions, spec=spec), spec)
        names = executor.store.segment_names()
        assert names
        executor.close()
        executor.close()
        for name in names:
            with pytest.raises(FileNotFoundError):
                SharedMemory(name=name)

    def test_dropped_session_finalizer_unlinks_segments(self):
        session = SEASession(n_nodes=2, workers=2, executor="process")
        table = gaussian_mixture_table(
            800, dims=("x0", "x1"), seed=6, name="data"
        )
        session.store.put_table(table, partitions_per_node=2)
        query = AnalyticsQuery("data", selection(), Mean("x0"))
        session.engine.execute(query)
        names = session.executor.store.segment_names()
        assert names
        del session  # no close(): the finalizer must tear everything down
        gc.collect()
        for name in names:
            with pytest.raises(FileNotFoundError):
                SharedMemory(name=name)
