"""Unit tests for repro.ml.linear."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError, NotTrainedError
from repro.ml import (
    LinearRegression,
    RidgeRegression,
    polynomial_features,
    r2_score,
)


def make_linear_data(n=100, d=3, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, d))
    coef = np.arange(1, d + 1, dtype=float)
    y = x @ coef + 2.5 + noise * rng.normal(size=n)
    return x, y, coef


class TestLinearRegression:
    def test_recovers_exact_coefficients(self):
        x, y, coef = make_linear_data()
        model = LinearRegression().fit(x, y)
        assert np.allclose(model.coef_, coef, atol=1e-8)
        assert model.intercept_ == pytest.approx(2.5, abs=1e-8)

    def test_predict_matches_truth(self):
        x, y, _ = make_linear_data()
        model = LinearRegression().fit(x, y)
        assert r2_score(y, model.predict(x)) == pytest.approx(1.0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotTrainedError):
            LinearRegression().predict([[1.0, 2.0]])

    def test_sample_weight_downweights_outlier(self):
        x, y, _ = make_linear_data(n=50, d=1)
        x_bad = np.vstack([x, [[0.0]]])
        y_bad = np.append(y, 1000.0)
        weights = np.append(np.ones(50), 1e-9)
        model = LinearRegression().fit(x_bad, y_bad, sample_weight=weights)
        clean = LinearRegression().fit(x, y)
        assert np.allclose(model.coef_, clean.coef_, atol=1e-3)

    def test_mismatched_rows_raises(self):
        with pytest.raises(ConfigurationError):
            LinearRegression().fit(np.zeros((5, 2)), np.zeros(4))

    def test_n_params_counts_intercept(self):
        x, y, _ = make_linear_data(d=4)
        model = LinearRegression().fit(x, y)
        assert model.n_params == 5

    def test_single_feature_1d_input_promoted(self):
        model = LinearRegression().fit([[1.0], [2.0], [3.0]], [2.0, 4.0, 6.0])
        pred = model.predict([[4.0]])
        assert pred[0] == pytest.approx(8.0)


class TestRidgeRegression:
    def test_zero_alpha_matches_ols(self):
        x, y, _ = make_linear_data(noise=0.1, seed=3)
        ols = LinearRegression().fit(x, y)
        ridge = RidgeRegression(alpha=0.0).fit(x, y)
        assert np.allclose(ridge.coef_, ols.coef_, atol=1e-6)

    def test_large_alpha_shrinks_coefficients(self):
        x, y, _ = make_linear_data(seed=4)
        small = RidgeRegression(alpha=0.01).fit(x, y)
        large = RidgeRegression(alpha=1e6).fit(x, y)
        assert np.linalg.norm(large.coef_) < np.linalg.norm(small.coef_) / 10

    def test_intercept_not_penalised(self):
        # Constant-shifted targets must shift the intercept, not the slopes.
        x, y, _ = make_linear_data(seed=5)
        base = RidgeRegression(alpha=10.0).fit(x, y)
        shifted = RidgeRegression(alpha=10.0).fit(x, y + 100.0)
        assert np.allclose(base.coef_, shifted.coef_, atol=1e-8)
        assert shifted.intercept_ - base.intercept_ == pytest.approx(100.0)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ConfigurationError):
            RidgeRegression(alpha=-1.0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotTrainedError):
            RidgeRegression().predict([[0.0]])

    def test_sample_weights_respected(self):
        x = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0.0, 1.0, 2.0, 100.0])
        w = np.array([1.0, 1.0, 1.0, 1e-9])
        model = RidgeRegression(alpha=1e-9).fit(x, y, sample_weight=w)
        assert model.predict([[4.0]])[0] == pytest.approx(4.0, abs=1e-3)

    @given(
        st.integers(min_value=5, max_value=40),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=25, deadline=None)
    def test_prediction_is_finite_for_random_data(self, n, d):
        rng = np.random.default_rng(n * 10 + d)
        x = rng.normal(size=(n, d))
        y = rng.normal(size=n)
        model = RidgeRegression(alpha=1.0).fit(x, y)
        assert np.all(np.isfinite(model.predict(x)))


class TestPolynomialFeatures:
    def test_degree_two_with_interactions(self):
        x = np.array([[2.0, 3.0]])
        out = polynomial_features(x, degree=2, interaction=True)
        assert out.tolist() == [[2.0, 3.0, 4.0, 9.0, 6.0]]

    def test_degree_two_without_interactions(self):
        x = np.array([[2.0, 3.0]])
        out = polynomial_features(x, degree=2, interaction=False)
        assert out.tolist() == [[2.0, 3.0, 4.0, 9.0]]

    def test_degree_one_is_identity(self):
        x = np.array([[1.0, 2.0], [3.0, 4.0]])
        assert np.array_equal(polynomial_features(x, degree=1), x)

    def test_degree_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            polynomial_features(np.ones((2, 2)), degree=0)

    def test_quadratic_fit_captures_curvature(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-2, 2, size=(200, 1))
        y = 3 * x[:, 0] ** 2 - x[:, 0] + 1
        model = LinearRegression().fit(polynomial_features(x, 2), y)
        pred = model.predict(polynomial_features(x, 2))
        assert r2_score(y, pred) > 0.999
