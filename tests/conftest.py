"""Shared fixtures: a small cluster, stored tables, and workloads."""

import asyncio

import numpy as np
import pytest

from repro.cluster import ClusterTopology, DistributedStore
from repro.data import gaussian_mixture_table, InterestProfile, WorkloadGenerator
from repro.queries import Count


@pytest.fixture
def event_loop():
    """A fresh asyncio loop per test, closed afterwards.

    pytest-asyncio is deliberately not a dependency; async tests drive
    their coroutines explicitly via ``event_loop.run_until_complete``,
    which also keeps the loop's lifetime (and any tasks leaked onto it)
    visible in the test body.
    """
    loop = asyncio.new_event_loop()
    try:
        yield loop
    finally:
        loop.close()


@pytest.fixture
def topology():
    return ClusterTopology.single_datacenter(4)


@pytest.fixture
def store(topology):
    return DistributedStore(topology)


@pytest.fixture
def small_table():
    return gaussian_mixture_table(
        5000, dims=("x0", "x1"), seed=7, name="data"
    )


@pytest.fixture
def stored_table(store, small_table):
    store.put_table(small_table, partitions_per_node=2)
    return store.table("data")


@pytest.fixture
def workload(small_table):
    profile = InterestProfile.from_table(
        small_table, ("x0", "x1"), 3, seed=11, hotspot_scale=2.5,
        extent_range=(3.0, 8.0),
    )
    return WorkloadGenerator(
        "data", ("x0", "x1"), profile, aggregate=Count(), seed=13
    )
