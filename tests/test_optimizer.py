"""Tests for the learned optimizer (RT3) and model selection ([48])."""

import numpy as np
import pytest

from repro.common import CostReport
from repro.common.errors import NotTrainedError, OptimizationError
from repro.core import AnswerModelFactory, DatalessPredictor, QuerySpaceQuantizer
from repro.optimizer import (
    AlternativeSet,
    ExecutionAlternative,
    ExecutionLog,
    LearnedSelector,
    ModelSelector,
    TaskFeatures,
    apply_per_quantum_selection,
    select_family_cv,
)
from repro.optimizer.alternatives import metric_of


class TestTaskFeatures:
    def test_join_features_log_scaled(self):
        f = TaskFeatures.for_join(10**6, 10**6, 10**4, 10, 8)
        assert f["log_rows_r"] == pytest.approx(6.0)
        assert f["log_key_space"] == pytest.approx(4.0)
        assert f["match_rate"] == pytest.approx(100.0)

    def test_knn_features(self):
        f = TaskFeatures.for_knn(10**5, 3, 10, 16, density_cv=2.5)
        assert f["dim"] == 3.0
        assert f["density_cv"] == 2.5

    def test_subspace_features_floor_selectivity(self):
        f = TaskFeatures.for_subspace_aggregate(1000, 0.0, 2, 4)
        assert f["log_selectivity"] == pytest.approx(-12.0)

    def test_array_and_dict_views(self):
        f = TaskFeatures(names=("a", "b"), values=(1.0, 2.0))
        assert f.as_array().tolist() == [1.0, 2.0]
        assert f.as_dict() == {"a": 1.0, "b": 2.0}

    def test_unknown_name_raises(self):
        f = TaskFeatures(names=("a",), values=(1.0,))
        with pytest.raises(KeyError):
            f["zzz"]


class TestAlternatives:
    def make_set(self):
        def cheap(x):
            return x * 2, CostReport(elapsed_sec=1.0, node_sec=1.0)

        def costly(x):
            return x * 2, CostReport(elapsed_sec=10.0, node_sec=10.0)

        return AlternativeSet(
            [
                ExecutionAlternative("cheap", cheap),
                ExecutionAlternative("costly", costly),
            ]
        )

    def test_run_all_produces_outcomes(self):
        outcomes = self.make_set().run_all(21)
        assert [o.result for o in outcomes] == [42, 42]

    def test_best_by_metric(self):
        outcomes = self.make_set().run_all(1)
        best = AlternativeSet.best(outcomes, "elapsed_sec")
        assert best.name == "cheap"

    def test_run_one_unknown_rejected(self):
        with pytest.raises(OptimizationError):
            self.make_set().run_one("teleport", 1)

    def test_duplicate_names_rejected(self):
        alt = ExecutionAlternative("x", lambda: (0, CostReport()))
        with pytest.raises(Exception):
            AlternativeSet([alt, alt])

    def test_metric_of_dollars(self):
        report = CostReport(node_sec=3600.0)
        assert metric_of(report, "dollars") == pytest.approx(0.10)
        with pytest.raises(Exception):
            metric_of(report, "fame")


def synthetic_log(n=120, seed=0, noise=0.0):
    """Tasks where method A wins below a selectivity threshold, B above."""
    rng = np.random.default_rng(seed)
    log = ExecutionLog()
    for _ in range(n):
        selectivity = 10 ** rng.uniform(-6, -0.5)
        features = TaskFeatures.for_subspace_aggregate(
            10**6, selectivity, 2, 8
        )
        index_cost = 1.0 + 1e6 * selectivity  # grows with matched rows
        scan_cost = 50.0 * (1 + noise * rng.normal())
        log.record(features, {"index": index_cost, "fullscan": scan_cost})
    return log


class TestLearnedSelector:
    def test_learns_crossover_rule(self):
        train = synthetic_log(n=150, seed=1)
        test = synthetic_log(n=80, seed=2)
        selector = LearnedSelector().fit(train)
        metrics = selector.evaluate(test)
        assert metrics["accuracy"] > 0.9
        assert metrics["mean_regret"] < 0.5

    def test_beats_fixed_policies(self):
        train = synthetic_log(n=150, seed=3)
        test = synthetic_log(n=80, seed=4)
        selector = LearnedSelector().fit(train)
        metrics = selector.evaluate(test)
        assert metrics["mean_regret"] < metrics["regret_always_index"]
        assert metrics["mean_regret"] < metrics["regret_always_fullscan"]

    def test_choose_returns_known_method(self):
        selector = LearnedSelector().fit(synthetic_log(n=50, seed=5))
        choice = selector.choose(
            TaskFeatures.for_subspace_aggregate(10**6, 1e-5, 2, 8)
        )
        assert choice in ("index", "fullscan")

    def test_choose_before_fit_raises(self):
        with pytest.raises(NotTrainedError):
            LearnedSelector().choose(
                TaskFeatures.for_subspace_aggregate(10, 0.5, 1, 1)
            )

    def test_tiny_log_rejected(self):
        log = ExecutionLog()
        features = TaskFeatures.for_subspace_aggregate(10, 0.5, 1, 1)
        log.record(features, {"a": 1.0, "b": 2.0})
        with pytest.raises(Exception):
            LearnedSelector().fit(log)

    def test_log_entry_regret(self):
        log = synthetic_log(n=10, seed=6)
        entry = log.entries[0]
        assert entry.regret_of(entry.best_method) == 0.0
        other = next(m for m in entry.costs if m != entry.best_method)
        assert entry.regret_of(other) > 0.0


class TestModelSelectionCV:
    def test_picks_quadratic_for_curvature(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-3, 3, size=(80, 1))
        y = x[:, 0] ** 2 + 0.01 * rng.normal(size=80)
        best, scores = select_family_cv(x, y, families=("linear", "quadratic"))
        assert best == "quadratic"
        assert scores["quadratic"] < scores["linear"]

    def test_picks_simple_model_for_constant(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(40, 2))
        y = np.full(40, 5.0)
        best, scores = select_family_cv(x, y, families=("mean", "gbm"))
        assert best == "mean"

    def test_tiny_buffer_degrades_to_mean(self):
        best, _ = select_family_cv(np.ones((2, 1)), np.ones(2), n_folds=2)
        assert best in ("mean", "linear")

    def test_model_selector_tracks_choices(self):
        selector = ModelSelector(families=("mean", "linear"))
        rng = np.random.default_rng(2)
        x = rng.normal(size=(40, 1))
        y = 2 * x[:, 0]
        assert selector.select_for_quantum(3, x, y) == "linear"
        assert selector.choices[3] == "linear"
        assert "linear" in selector.scores[3]

    def test_apply_per_quantum_selection(self):
        predictor = DatalessPredictor(
            quantizer=QuerySpaceQuantizer(n_quanta=2, warmup=8, grow_threshold=3.0),
            factory=AnswerModelFactory("mean"),
        )
        rng = np.random.default_rng(3)
        # Quantum near origin: linear world; far quantum: constant world.
        for _ in range(60):
            v = rng.normal(loc=(0, 0), scale=1.0, size=2)
            predictor.observe(v, 5.0 * v[0])
        for _ in range(60):
            v = rng.normal(loc=(100, 100), scale=1.0, size=2)
            predictor.observe(v, 7.0)
        chosen = apply_per_quantum_selection(
            predictor, families=("mean", "linear")
        )
        assert len(chosen) >= 2
        assert "linear" in chosen.values()
        # After re-selection the predictor still answers sensibly.
        assert predictor.predict([0.0, 0.0]).scalar == pytest.approx(0.0, abs=2.0)


class TestCostModelSelector:
    def test_learns_crossover_and_predicts_costs(self):
        from repro.optimizer import CostModelSelector

        train = synthetic_log(n=150, seed=7)
        test = synthetic_log(n=80, seed=8)
        selector = CostModelSelector().fit(train)
        metrics = selector.evaluate(test)
        assert metrics["accuracy"] > 0.85
        assert metrics["mean_regret"] < 1.0
        # Cost predictions land within about half an order of magnitude.
        assert metrics["mean_log10_cost_error"] < 0.5

    def test_predicted_costs_cover_all_methods(self):
        from repro.optimizer import CostModelSelector

        selector = CostModelSelector().fit(synthetic_log(n=60, seed=9))
        costs = selector.predict_costs(
            TaskFeatures.for_subspace_aggregate(10**6, 1e-4, 2, 8)
        )
        assert set(costs) == {"index", "fullscan"}
        assert all(v > 0 for v in costs.values())

    def test_agrees_with_classifier_on_clear_cases(self):
        from repro.optimizer import CostModelSelector

        log = synthetic_log(n=150, seed=10)
        regressor = CostModelSelector().fit(log)
        classifier = LearnedSelector().fit(log)
        for selectivity in (1e-6, 1e-1):
            features = TaskFeatures.for_subspace_aggregate(
                10**6, selectivity, 2, 8
            )
            assert regressor.choose(features) == classifier.choose(features)

    def test_predict_before_fit_raises(self):
        from repro.optimizer import CostModelSelector

        with pytest.raises(NotTrainedError):
            CostModelSelector().choose(
                TaskFeatures.for_subspace_aggregate(10, 0.5, 1, 1)
            )
