"""Unit tests for repro.ml.kmeans (batch and online)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError, NotTrainedError
from repro.ml import KMeans, OnlineKMeans


def three_blobs(seed=0, n=60):
    rng = np.random.default_rng(seed)
    return np.vstack(
        [
            rng.normal(loc=(0, 0), scale=0.5, size=(n, 2)),
            rng.normal(loc=(10, 10), scale=0.5, size=(n, 2)),
            rng.normal(loc=(-10, 10), scale=0.5, size=(n, 2)),
        ]
    )


class TestKMeans:
    def test_separated_blobs_recovered(self):
        x = three_blobs()
        model = KMeans(n_clusters=3, seed=1).fit(x)
        labels = model.predict(x)
        # Each blob should be internally homogeneous.
        for i in range(3):
            blob = labels[i * 60 : (i + 1) * 60]
            assert len(set(blob.tolist())) == 1

    def test_inertia_decreases_with_more_clusters(self):
        x = three_blobs(seed=2)
        inertia = [
            KMeans(n_clusters=k, seed=3).fit(x).inertia_ for k in (1, 2, 3)
        ]
        assert inertia[0] > inertia[1] > inertia[2]

    def test_deterministic_given_seed(self):
        x = three_blobs(seed=4)
        a = KMeans(n_clusters=3, seed=5).fit(x).cluster_centers_
        b = KMeans(n_clusters=3, seed=5).fit(x).cluster_centers_
        assert np.array_equal(a, b)

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotTrainedError):
            KMeans(2).predict([[0.0, 0.0]])

    def test_fewer_samples_than_clusters_rejected(self):
        with pytest.raises(ConfigurationError):
            KMeans(5).fit(np.zeros((3, 2)))

    def test_duplicate_points_handled(self):
        x = np.ones((20, 2))
        model = KMeans(n_clusters=2, seed=0).fit(x)
        assert model.inertia_ == pytest.approx(0.0)

    def test_fit_predict_shape(self):
        x = three_blobs(seed=6)
        labels = KMeans(n_clusters=3, seed=0).fit_predict(x)
        assert labels.shape == (180,)
        assert set(labels.tolist()) <= {0, 1, 2}


class TestOnlineKMeans:
    def test_seeds_first_samples_as_centroids(self):
        model = OnlineKMeans(n_clusters=3)
        for v in ([0, 0], [10, 10], [-10, 10]):
            model.partial_fit(v)
        assert model.n_active == 3

    def test_centroid_tracks_stream_mean(self):
        model = OnlineKMeans(n_clusters=1)
        rng = np.random.default_rng(0)
        points = rng.normal(loc=5.0, size=(500, 2))
        for p in points:
            model.partial_fit(p)
        assert np.allclose(
            model.cluster_centers_[0], points.mean(axis=0), atol=0.2
        )

    def test_growth_spawns_new_quantum_for_far_point(self):
        model = OnlineKMeans(n_clusters=1, grow_threshold=5.0, max_clusters=4)
        model.partial_fit([0.0, 0.0])
        model.partial_fit([0.1, 0.1])
        assert model.n_active == 1
        model.partial_fit([100.0, 100.0])
        assert model.n_active == 2

    def test_growth_respects_capacity(self):
        model = OnlineKMeans(n_clusters=1, grow_threshold=0.1, max_clusters=2)
        for v in ([0, 0], [10, 10], [20, 20], [30, 30]):
            model.partial_fit(v)
        assert model.n_active == 2

    def test_assign_does_not_mutate(self):
        model = OnlineKMeans(n_clusters=2)
        model.partial_fit([0.0, 0.0])
        model.partial_fit([10.0, 10.0])
        before = model.cluster_centers_.copy()
        assert model.assign([9.0, 9.0]) == 1
        assert np.array_equal(model.cluster_centers_, before)

    def test_decay_allows_drift_tracking(self):
        tracking = OnlineKMeans(n_clusters=1, decay=0.9)
        frozen = OnlineKMeans(n_clusters=1, decay=1.0)
        for v in np.zeros((200, 1)):
            tracking.partial_fit(v)
            frozen.partial_fit(v)
        for v in np.full((50, 1), 10.0):
            tracking.partial_fit(v)
            frozen.partial_fit(v)
        assert tracking.cluster_centers_[0][0] > frozen.cluster_centers_[0][0]

    def test_remove_quantum(self):
        model = OnlineKMeans(n_clusters=2)
        model.partial_fit([0.0])
        model.partial_fit([10.0])
        model.remove(0)
        assert model.n_active == 1
        with pytest.raises(IndexError):
            model.remove(5)

    def test_empty_model_raises(self):
        with pytest.raises(NotTrainedError):
            OnlineKMeans().cluster_centers_

    def test_invalid_decay_rejected(self):
        with pytest.raises(ConfigurationError):
            OnlineKMeans(decay=0.0)

    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_assignment_always_within_active_range(self, values):
        model = OnlineKMeans(n_clusters=4, grow_threshold=10.0, max_clusters=8)
        for v in values:
            idx = model.partial_fit([v])
            assert 0 <= idx < model.n_active
