"""Batched serving: equivalence with the sequential path, and the cache.

The batch path's whole contract is *observational equivalence*: answers,
modes, and per-query simulated cost reports from one ``submit_batch``
must be byte-identical to N sequential ``submit`` calls, whatever mix of
training, prediction, learning fallback, and cache traffic the batch
straddles.  These tests pin that contract (property-based over batch
shape and agent configuration), plus the cache's invalidation rules and
the shared-scan building blocks underneath (``run_many``, shuffle byte
accounting, ``batch_masks``, ``predict_batch``, ``fetch_rows_many``).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import ExactEngine
from repro.cluster import ClusterTopology, DistributedStore
from repro.core import AgentConfig, SEAAgent
from repro.core.answer_cache import AnswerCache, cache_key
from repro.data import InterestProfile, WorkloadGenerator, gaussian_mixture_table
from repro.engine import CoordinatorEngine, MapReduceEngine
from repro.engine.mapreduce import (
    _KV_OVERHEAD_BYTES,
    estimate_payload_bytes,
    stable_hash,
)
from repro.common import CostMeter
from repro.queries import (
    Count,
    Mean,
    Median,
    RadiusSelection,
    RangeSelection,
    AnalyticsQuery,
    batch_masks,
)
from repro.session import SEASession


def build_world(n_rows=2000, n_nodes=4, seed=5):
    topo = ClusterTopology.single_datacenter(n_nodes)
    store = DistributedStore(topo)
    table = gaussian_mixture_table(
        n_rows, dims=("x0", "x1"), seed=seed, name="data"
    )
    store.put_table(table, partitions_per_node=2)
    return store, table


def query_pool(table, n, seed=13, aggregate=None):
    profile = InterestProfile.from_table(
        table, ("x0", "x1"), 3, seed=seed + 1, hotspot_scale=2.5,
        extent_range=(3.0, 8.0),
    )
    workload = WorkloadGenerator(
        "data", ("x0", "x1"), profile,
        aggregate=aggregate or Count(), seed=seed,
    )
    return workload.batch(n)


@pytest.fixture(scope="module")
def world():
    return build_world()


@pytest.fixture(scope="module")
def pool(world):
    _, table = world
    return query_pool(table, 40)


def fresh_agent(store, budget, learn=True, cache=True):
    return SEAAgent(
        ExactEngine(store),
        AgentConfig(
            training_budget=budget,
            error_threshold=0.5,
            keep_learning_on_fallback=learn,
            answer_cache_size=64 if cache else 0,
        ),
    )


def assert_equivalent(seq_records, bat_records):
    assert len(seq_records) == len(bat_records)
    for a, b in zip(seq_records, bat_records):
        assert a.mode == b.mode
        assert np.array_equal(
            np.asarray(a.answer, dtype=float), np.asarray(b.answer, dtype=float)
        )
        assert a.cost.__dict__ == b.cost.__dict__


class TestSubmitBatchEquivalence:
    @given(
        n_queries=st.integers(4, 28),
        budget=st.integers(0, 12),
        learn=st.booleans(),
        cache=st.booleans(),
    )
    @settings(max_examples=12, deadline=None)
    def test_batch_equals_sequential(self, n_queries, budget, learn, cache):
        # The shared store makes this also exercise interleaving with
        # prior runs — answers never depend on engine-internal stats.
        store, table = build_world()
        queries = query_pool(table, n_queries)
        seq_agent = fresh_agent(store, budget, learn, cache)
        bat_agent = fresh_agent(store, budget, learn, cache)
        seq_records = [seq_agent.submit(q) for q in queries]
        bat_records = bat_agent.submit_batch(queries)
        assert_equivalent(seq_records, bat_records)

    def test_batch_straddles_training_boundary(self, world, pool):
        store, _ = world
        seq_agent = fresh_agent(store, budget=10)
        bat_agent = fresh_agent(store, budget=10)
        seq_records = [seq_agent.submit(q) for q in pool]
        bat_records = bat_agent.submit_batch(pool)
        assert {r.mode for r in bat_records} >= {"train"}
        assert_equivalent(seq_records, bat_records)

    def test_chunked_batches_equal_one_batch(self, world, pool):
        store, _ = world
        whole = fresh_agent(store, budget=8)
        chunked = fresh_agent(store, budget=8)
        whole_records = whole.submit_batch(pool)
        chunked_records = []
        for i in range(0, len(pool), 7):
            chunked_records.extend(chunked.submit_batch(pool[i : i + 7]))
        assert_equivalent(whole_records, chunked_records)

    def test_repeated_queries_cache_agrees_with_sequential(self, world):
        store, table = world
        distinct = query_pool(table, 8, seed=29)
        rng = np.random.default_rng(3)
        repeats = [distinct[i] for i in rng.integers(0, len(distinct), 60)]
        seq_agent = fresh_agent(store, budget=6)
        bat_agent = fresh_agent(store, budget=6)
        seq_records = [seq_agent.submit(q) for q in repeats]
        bat_records = bat_agent.submit_batch(repeats)
        assert_equivalent(seq_records, bat_records)
        # Both walks issue the identical lookup/store sequence.
        assert seq_agent.cache.stats() == bat_agent.cache.stats()

    def test_cache_is_transparent(self, world):
        """Cache on vs off changes costs paid, never answers or modes."""
        store, table = world
        distinct = query_pool(table, 8, seed=31)
        rng = np.random.default_rng(4)
        repeats = [distinct[i] for i in rng.integers(0, len(distinct), 50)]
        cached = fresh_agent(store, budget=6, cache=True)
        uncached = fresh_agent(store, budget=6, cache=False)
        cached_records = [cached.submit(q) for q in repeats]
        uncached_records = [uncached.submit(q) for q in repeats]
        for a, b in zip(cached_records, uncached_records):
            assert a.mode == b.mode
            assert np.array_equal(
                np.asarray(a.answer, dtype=float),
                np.asarray(b.answer, dtype=float),
            )

    def test_empty_batch(self, world):
        store, _ = world
        assert fresh_agent(store, budget=4).submit_batch([]) == []

    def test_session_sql_many(self):
        table = gaussian_mixture_table(
            1500, dims=("x0", "x1"), seed=9, name="data"
        )
        statements = [
            f"SELECT COUNT(*) FROM data WHERE x0 BETWEEN {lo!r} AND {hi!r}"
            for lo, hi in [(-5.0, 20.0), (0.0, 30.0), (-5.0, 20.0), (10.0, 45.0)]
        ]
        one = SEASession(n_nodes=4, config=AgentConfig(training_budget=2))
        one.load_table(table)
        many = SEASession(n_nodes=4, config=AgentConfig(training_budget=2))
        many.load_table(table)
        seq_answers = [one.sql(s) for s in statements]
        bat_answers = many.sql_many(statements)
        for a, b in zip(seq_answers, bat_answers):
            assert a.mode == b.mode and a.value == b.value
            assert a.cost.__dict__ == b.cost.__dict__


class TestAnswerCacheInvalidation:
    def _cached_agent(self, store, table):
        """An agent with a populated answer cache (predicted entries)."""
        distinct = query_pool(table, 20, seed=37)
        rng = np.random.default_rng(6)
        repeats = [distinct[i] for i in rng.integers(0, len(distinct), 240)]
        agent = fresh_agent(store, budget=12)
        agent.submit_batch(repeats)
        agent.config.keep_learning_on_fallback = False
        agent.submit_batch(repeats)  # refill after the last learning step
        return agent

    def test_notify_update_evicts_exactly_overlapping_quanta(self):
        store, table = build_world(seed=21)
        agent = self._cached_agent(store, table)
        cache = agent.cache
        assert len(cache) > 0
        entries_before = dict(cache._entries)
        # A box over the lower-left quadrant invalidates some quanta.
        lows = np.asarray(
            [float(np.min(table.column(c))) for c in ("x0", "x1")]
        )
        mids = np.asarray(
            [float(np.median(table.column(c))) for c in ("x0", "x1")]
        )
        predictor = next(iter(agent._predictors.values()))
        # The overlap rule is pure geometry on the quantizer centroids, so
        # the expected set is computable before the (mutating) update.
        centroids = predictor.quantizer.centroids
        overlapping = set()
        for quantum_id in predictor.quantum_ids():
            if quantum_id >= len(centroids):
                continue
            box_lo, box_hi = agent.updates._quantum_box(
                centroids[quantum_id], len(lows)
            )
            if np.all(box_hi >= lows) and np.all(box_lo <= mids):
                overlapping.add(quantum_id)
        invalidated = agent.notify_data_update("data", lows, mids)
        assert invalidated == len(overlapping) > 0
        surviving = set(cache._entries)
        # Non-vacuous on both sides: some entries go, some stay.
        assert 0 < len(surviving) < len(entries_before)
        for key, entry in entries_before.items():
            if entry.quantum_id in overlapping:
                assert key not in surviving
            else:
                assert key in surviving

    def test_update_outside_data_evicts_nothing(self):
        store, table = build_world(seed=23)
        agent = self._cached_agent(store, table)
        before = len(agent.cache)
        assert before > 0
        invalidated = agent.notify_data_update("data", [1e6, 1e6], [2e6, 2e6])
        assert invalidated == 0
        assert len(agent.cache) == before

    def test_learning_step_invalidates_signature(self):
        store, table = build_world(seed=25)
        agent = self._cached_agent(store, table)
        assert len(agent.cache) > 0
        agent.config.keep_learning_on_fallback = True
        query = query_pool(table, 1, seed=41)[0]
        predictor = agent.predictor(query)
        agent._learn_from(query, predictor, np.asarray([1.0]))
        assert len(agent.cache) == 0

    def test_lru_eviction_bounds_size(self, world):
        _, table = world
        cache = AnswerCache(capacity=4)
        queries = query_pool(table, 10, seed=43)
        from repro.core.predictor import Prediction

        for i, query in enumerate(queries):
            prediction = Prediction(
                value=np.asarray([float(i)]),
                quantum_id=i,
                error_estimate=0.0,
                novelty=0.0,
                reliable=True,
            )
            cache.store(query, prediction, float(i))
        assert len(cache) == 4
        assert cache.evictions == 6
        # The four most recent stay, oldest first evicted.
        assert cache.lookup(queries[-1]) is not None
        assert cache.lookup(queries[0]) is None


class TestSharedScanEngine:
    def test_run_many_equals_run(self, world):
        store, _ = world
        engine = MapReduceEngine(store)

        def mean_map(part):
            col = part.column("x0").astype(float)
            return [(0, (float(col.sum()), int(col.size)))]

        def mean_reduce(key, partials):
            total = sum(p[0] for p in partials)
            count = sum(p[1] for p in partials)
            return total / count

        def median_map(part):
            return [(0, part.column("x1").astype(float))]

        def median_reduce(key, partials):
            return float(np.median(np.concatenate(partials)))

        seq = [
            engine.run("data", mean_map, mean_reduce),
            engine.run("data", median_map, median_reduce),
        ]

        def multi_map(part):
            return [mean_map(part), median_map(part)]

        batch = engine.run_many("data", multi_map, [mean_reduce, median_reduce])
        for (r_seq, c_seq), (r_bat, c_bat) in zip(seq, batch):
            assert set(r_seq) == set(r_bat)
            for key in r_seq:
                assert np.array_equal(
                    np.asarray(r_seq[key]), np.asarray(r_bat[key])
                )
            assert c_seq.__dict__ == c_bat.__dict__

    def test_shuffle_byte_accounting_matches_naive(self, world):
        """Memoized hashing/payload sizing must not change the accounting."""
        store, _ = world
        engine = MapReduceEngine(store)
        reducers = engine._reducer_nodes(store.table("data"), 2)
        map_outputs = []
        for i, partition in enumerate(store.table("data").partitions):
            pairs = [
                (key, np.full(3 + key, float(i)))
                for key in (0, 1, 2, 0, 1)  # repeated keys exercise the memo
            ]
            map_outputs.append((partition.primary_node, pairs))
        meter = CostMeter()
        grouped, ingest_bytes, elapsed = engine._shuffle_phase(
            map_outputs, reducers, meter
        )
        # Naive per-pair reference, no memoization.
        expected = {}
        for _, pairs in map_outputs:
            for key, value in pairs:
                reducer = reducers[stable_hash(key) % len(reducers)]
                expected[reducer] = expected.get(reducer, 0) + (
                    _KV_OVERHEAD_BYTES + estimate_payload_bytes(value)
                )
        assert ingest_bytes == expected
        shipped = meter.freeze().bytes_shipped_lan
        local = sum(
            _KV_OVERHEAD_BYTES + estimate_payload_bytes(v)
            for node, pairs in map_outputs
            for k, v in pairs
            if reducers[stable_hash(k) % len(reducers)] == node
        )
        assert shipped == sum(expected.values()) - local

    def test_batch_masks_equals_per_selection(self, world):
        _, table = world
        rng = np.random.default_rng(17)
        homogeneous = [
            RangeSelection(
                ("x0", "x1"),
                lows=rng.uniform(-30, 0, 2),
                highs=rng.uniform(0, 30, 2),
            )
            for _ in range(9)
        ]
        for selections in (
            homogeneous,
            homogeneous[:1],
            homogeneous[:4]
            + [RadiusSelection(("x0", "x1"), center=[0.0, 0.0], radius=9.0)],
        ):
            masks = batch_masks(selections, table)
            assert len(masks) == len(selections)
            for mask, selection in zip(masks, selections):
                assert np.array_equal(mask, selection.mask(table))

    def test_predict_batch_equals_predict(self, world):
        store, table = world
        agent = fresh_agent(store, budget=25)
        for query in query_pool(table, 30, seed=47):
            agent.submit(query)
        predictor = next(iter(agent._predictors.values()))
        vectors = np.stack([q.vector() for q in query_pool(table, 12, seed=49)])
        batch = predictor.predict_batch(vectors)
        for vector, from_batch in zip(vectors, batch):
            one = predictor.predict(vector)
            assert from_batch is not None
            assert np.array_equal(one.value, from_batch.value)
            assert one.quantum_id == from_batch.quantum_id
            assert one.error_estimate == from_batch.error_estimate
            assert one.novelty == from_batch.novelty
            assert one.reliable == from_batch.reliable

    def test_fetch_rows_many_equals_fetch_rows(self, world):
        store, _ = world
        stored = store.table("data")
        engine_seq = CoordinatorEngine(store)
        engine_bat = CoordinatorEngine(store)
        rng = np.random.default_rng(19)
        plans = []
        for _ in range(5):
            plan = {}
            for part_index in rng.choice(
                len(stored.partitions), size=3, replace=False
            ):
                n = int(rng.integers(1, 40))
                rows = rng.choice(
                    stored.partitions[part_index].n_rows, size=n, replace=False
                )
                plan[int(part_index)] = np.sort(rows)
            plans.append(plan)
        seq = [engine_seq.fetch_rows(stored, plan) for plan in plans]
        batch = engine_bat.fetch_rows_many(stored, plans)
        for (t_seq, c_seq), (t_bat, c_bat) in zip(seq, batch):
            assert t_seq.n_rows == t_bat.n_rows
            for name in t_seq.column_names:
                assert np.array_equal(t_seq.column(name), t_bat.column(name))
            assert c_seq.__dict__ == c_bat.__dict__


class TestCacheKey:
    def test_key_disambiguates_selection_classes(self):
        range_query = AnalyticsQuery(
            "data", RangeSelection(("x0",), [0.0], [4.0]), Count()
        )
        radius_query = AnalyticsQuery(
            "data", RadiusSelection(("x0",), center=[2.0], radius=2.0), Count()
        )
        # Same vector length and (table, aggregate) — different keys.
        assert len(range_query.vector()) == len(radius_query.vector())
        assert cache_key(range_query) != cache_key(radius_query)

    def test_key_equal_for_identical_extents(self):
        a = AnalyticsQuery("data", RangeSelection(("x0",), [0.0], [4.0]), Count())
        b = AnalyticsQuery("data", RangeSelection(("x0",), [0.0], [4.0]), Count())
        assert cache_key(a) == cache_key(b)
