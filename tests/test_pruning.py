"""Zone-map pruning: bit-identical answers, never-more-bytes, exact synopses.

The pruning layer's contract has three legs, each pinned here:

1. **Invisibility** — pruned execution returns bitwise-identical answers
   (and serve modes, through the agent) to unpruned execution, across
   ``execute``, ``execute_many``, and ``submit_batch``.
2. **Monotonicity** — a pruned run never charges more scan bytes than
   the unpruned run of the same query.
3. **Exactness under mutation** — partition synopses stay bitwise equal
   to fresh builds through randomized append/delete sequences, and node
   byte accounting stays consistent with the partitions actually stored.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import ExactEngine
from repro.cluster import (
    ClusterTopology,
    ColumnStats,
    DistributedStore,
    PartitionSynopsis,
    estimate_selectivity,
    synopses_consistent,
)
from repro.common import CostMeter
from repro.core import AgentConfig, SEAAgent
from repro.data import Table, gaussian_mixture_table
from repro.engine import CoordinatorEngine, plan_scan, prune_row_plan, synopsis_partial
from repro.engine.pruning import SCAN, SKIP, SYNOPSIS
from repro.optimizer import TaskFeatures, synopsis_estimates
from repro.queries import (
    AnalyticsQuery,
    Count,
    Max,
    Mean,
    Median,
    Min,
    RadiusSelection,
    RangeSelection,
    Std,
    Sum,
    Variance,
)


def build_world(n_rows=2000, n_nodes=4, seed=5, sort_on=None):
    topo = ClusterTopology.single_datacenter(n_nodes)
    store = DistributedStore(topo)
    table = gaussian_mixture_table(
        n_rows, dims=("x0", "x1"), seed=seed, name="data"
    )
    if sort_on is not None:
        table = table.take(np.argsort(table.column(sort_on), kind="stable"))
    store.put_table(table, partitions_per_node=2)
    return store, table


AGGREGATES = [
    Count(),
    Sum("x1"),
    Mean("x1"),
    Min("x1"),
    Max("x0"),
    Std("x1"),
    Variance("x0"),
    Median("x1"),
]


def random_query(table, rng):
    """A range or radius query, sometimes far outside the data's domain."""
    aggregate = AGGREGATES[int(rng.integers(len(AGGREGATES)))]
    x0 = table.column("x0")
    lo_d, hi_d = float(x0.min()), float(x0.max())
    kind = int(rng.integers(3))
    if kind == 0:  # interior range on the clustered column
        a, b = np.sort(rng.uniform(lo_d, hi_d, size=2))
        return AnalyticsQuery("data", RangeSelection(("x0",), [a], [b]), aggregate)
    if kind == 1:  # 2-d range, possibly disjoint from the whole table
        shift = float(rng.choice([0.0, 10 * (hi_d - lo_d + 1.0)]))
        a = rng.uniform(lo_d, hi_d, size=2) + shift
        b = a + rng.uniform(0.1, hi_d - lo_d + 0.1, size=2)
        return AnalyticsQuery(
            "data", RangeSelection(("x0", "x1"), a, b), aggregate
        )
    center = rng.uniform(lo_d, hi_d, size=2)
    radius = float(rng.uniform(0.1, (hi_d - lo_d) / 2))
    return AnalyticsQuery(
        "data", RadiusSelection(("x0", "x1"), center, radius), aggregate
    )


def assert_same_answer(a, b):
    assert np.array_equal(
        np.asarray(a, dtype=float), np.asarray(b, dtype=float)
    ), f"{a!r} != {b!r}"


class TestSynopsisStats:
    def test_stats_match_numpy_expressions_bitwise(self):
        rng = np.random.default_rng(0)
        col = rng.normal(size=257) * 1e6
        stats = ColumnStats.from_column(col)
        assert stats.minimum == float(col.min())
        assert stats.maximum == float(col.max())
        assert stats.total == float(col.sum())
        assert stats.ftotal == float(col.astype(float).sum())
        assert stats.fsumsq == float((col.astype(float) ** 2).sum())

    def test_empty_column_is_neutral(self):
        stats = ColumnStats.from_column(np.empty(0))
        assert stats.minimum == float("inf")
        assert stats.maximum == float("-inf")
        assert stats.total == stats.ftotal == stats.fsumsq == 0.0

    def test_empty_partition_disjoint_and_covered(self):
        synopsis = PartitionSynopsis.from_table(
            Table({"x": np.empty(0)}).slice_rows(0, 0)
        )
        assert synopsis.disjoint(("x",), [0.0], [1.0])
        assert synopsis.covered_by(("x",), [0.0], [1.0])

    def test_unknown_column_is_conservative(self):
        synopsis = PartitionSynopsis.from_table(Table({"x": np.arange(5.0)}))
        assert not synopsis.disjoint(("y",), [100.0], [200.0])
        assert not synopsis.covered_by(("y",), [-100.0], [200.0])

    def test_disjoint_uses_closed_bounds(self):
        synopsis = PartitionSynopsis.from_table(Table({"x": np.arange(5.0)}))
        # Touching boxes are not disjoint; strictly outside ones are.
        assert not synopsis.disjoint(("x",), [4.0], [9.0])
        assert synopsis.disjoint(("x",), [np.nextafter(4.0, 5.0)], [9.0])
        assert synopsis.covered_by(("x",), [0.0], [4.0])
        assert not synopsis.covered_by(("x",), [np.nextafter(0.0, 1.0)], [4.0])

    def test_footprint_counts_columns(self):
        synopsis = PartitionSynopsis.from_table(
            Table({"a": np.arange(3.0), "b": np.arange(3.0)})
        )
        assert synopsis.n_bytes == 8 + 2 * 5 * 8

    def test_estimate_selectivity_extremes(self):
        tables = [
            Table({"x": np.arange(0.0, 10.0)}),
            Table({"x": np.arange(10.0, 20.0)}),
        ]
        synopses = [PartitionSynopsis.from_table(t) for t in tables]
        assert estimate_selectivity(synopses, ("x",), [-5.0], [25.0]) == 1.0
        assert estimate_selectivity(synopses, ("x",), [50.0], [60.0]) == 0.0
        half = estimate_selectivity(synopses, ("x",), [-5.0], [9.0])
        assert 0.4 < half <= 0.6


class TestSynopsisPartials:
    def test_supported_partials_bitwise_equal_full_scan(self):
        rng = np.random.default_rng(1)
        table = Table(
            {"x0": rng.normal(size=313) * 1e3, "x1": rng.normal(size=313)}
        )
        synopsis = PartitionSynopsis.from_table(table)
        for aggregate in (
            Count(), Sum("x1"), Mean("x1"), Min("x1"), Max("x1"),
            Std("x1"), Variance("x1"),
        ):
            supported, partial = synopsis_partial(aggregate, synopsis)
            assert supported
            assert partial == aggregate.partial(table)

    def test_holistic_and_unknown_column_unsupported(self):
        synopsis = PartitionSynopsis.from_table(Table({"x": np.arange(4.0)}))
        assert synopsis_partial(Median("x"), synopsis) == (False, None)
        assert synopsis_partial(Sum("nope"), synopsis) == (False, None)


class TestPlanScan:
    def test_clustered_narrow_box_skips_most_partitions(self):
        store, table = build_world(sort_on="x0")
        x0 = np.sort(table.column("x0"))
        lo, hi = float(x0[int(0.45 * len(x0))]), float(x0[int(0.55 * len(x0))])
        plan = plan_scan(
            store.synopses("data"), RangeSelection(("x0",), [lo], [hi]), Sum("x1")
        )
        assert plan.n_skipped >= len(plan.actions) // 2
        assert not plan.prunes_nothing

    def test_full_box_short_circuits_everything_for_sum(self):
        store, table = build_world(sort_on="x0")
        x0 = table.column("x0")
        plan = plan_scan(
            store.synopses("data"),
            RangeSelection(("x0",), [float(x0.min())], [float(x0.max())]),
            Sum("x1"),
        )
        assert plan.n_covered == len(plan.actions)
        assert all(a == SYNOPSIS for a in plan.actions)

    def test_radius_selection_never_short_circuits(self):
        store, table = build_world(sort_on="x0")
        selection = RadiusSelection(
            ("x0", "x1"), np.zeros(2), 1e9
        )  # box covers everything, but the box is not the semantics
        plan = plan_scan(store.synopses("data"), selection, Sum("x1"))
        assert plan.n_covered == 0

    def test_no_aggregate_means_skip_or_scan_only(self):
        store, table = build_world(sort_on="x0")
        x0 = table.column("x0")
        plan = plan_scan(
            store.synopses("data"),
            RangeSelection(("x0",), [float(x0.min())], [float(x0.max())]),
            aggregate=None,
        )
        assert plan.n_covered == 0
        assert plan.n_scanned == len(plan.actions)


class TestPrunedExecutionEquivalence:
    @given(seed=st.integers(0, 60), n_queries=st.integers(1, 10))
    @settings(max_examples=15, deadline=None)
    def test_answers_identical_and_bytes_monotone(self, seed, n_queries):
        store, table = build_world(sort_on="x0")
        rng = np.random.default_rng(seed)
        queries = [random_query(table, rng) for _ in range(n_queries)]
        pruned = ExactEngine(store)
        unpruned = ExactEngine(store, pruning=False)
        for query in queries:
            pruned_answer, pruned_report = pruned.execute(query)
            unpruned_answer, unpruned_report = unpruned.execute(query)
            assert_same_answer(pruned_answer, unpruned_answer)
            assert pruned_report.bytes_scanned <= unpruned_report.bytes_scanned
            assert pruned_report.elapsed_sec <= unpruned_report.elapsed_sec

    @given(seed=st.integers(0, 60), n_queries=st.integers(1, 10))
    @settings(max_examples=15, deadline=None)
    def test_batched_equals_sequential_with_pruning(self, seed, n_queries):
        store, table = build_world(sort_on="x0")
        rng = np.random.default_rng(seed)
        queries = [random_query(table, rng) for _ in range(n_queries)]
        engine = ExactEngine(store)
        sequential = [engine.execute(q) for q in queries]
        batched = engine.execute_many(queries)
        for (seq_answer, seq_report), (bat_answer, bat_report) in zip(
            sequential, batched
        ):
            assert_same_answer(seq_answer, bat_answer)
            assert seq_report.__dict__ == bat_report.__dict__

    def test_fully_pruned_query_matches_unpruned_neutral_answer(self):
        store, table = build_world(sort_on="x0")
        far = float(table.column("x0").max()) + 1e6
        for aggregate in AGGREGATES:
            query = AnalyticsQuery(
                "data",
                RangeSelection(("x0",), [far], [far + 1.0]),
                aggregate,
            )
            pruned_answer, pruned_report = ExactEngine(store).execute(query)
            unpruned_answer, _ = ExactEngine(store, pruning=False).execute(query)
            assert_same_answer(pruned_answer, unpruned_answer)
            assert pruned_report.bytes_scanned == 0

    def test_agent_serving_unchanged_by_pruning(self):
        store, table = build_world(sort_on="x0")
        rng = np.random.default_rng(11)
        queries = [
            AnalyticsQuery(
                "data",
                RangeSelection(
                    ("x0", "x1"),
                    *(lambda a, b: (np.minimum(a, b), np.maximum(a, b)))(
                        rng.uniform(0, 100, size=2), rng.uniform(0, 100, size=2)
                    ),
                ),
                Count(),
            )
            for _ in range(24)
        ]
        config = AgentConfig(training_budget=8, error_threshold=0.5)
        pruned_agent = SEAAgent(ExactEngine(store), config)
        unpruned_agent = SEAAgent(ExactEngine(store, pruning=False), config)
        pruned_records = pruned_agent.submit_batch(queries)
        unpruned_records = [unpruned_agent.submit(q) for q in queries]
        for a, b in zip(pruned_records, unpruned_records):
            assert a.mode == b.mode
            assert_same_answer(a.answer, b.answer)


class TestCoordinatorFetchPruning:
    def _world(self):
        store, table = build_world(sort_on="x0")
        stored = store.table("data")
        # Ask for the first few rows of every partition; only partitions
        # overlapping the selection's box can contribute matching rows.
        rows = {i: list(range(3)) for i in range(len(stored.partitions))}
        x0 = np.sort(table.column("x0"))
        lo, hi = float(x0[len(x0) // 2]), float(x0[-1])
        selection = RangeSelection(("x0",), [lo], [hi])
        return store, stored, rows, selection

    def test_pruned_fetch_filters_to_identical_rows_for_less(self):
        store, stored, rows, selection = self._world()
        engine = CoordinatorEngine(store)
        full, full_report = engine.fetch_rows(stored, dict(rows))
        pruned, pruned_report = engine.fetch_rows(
            stored, dict(rows), selection=selection
        )
        assert pruned_report.bytes_scanned < full_report.bytes_scanned
        kept_full = full.select(selection.mask(full))
        kept_pruned = pruned.select(selection.mask(pruned))
        assert kept_full.n_rows == kept_pruned.n_rows
        for column in kept_full.column_names:
            assert np.array_equal(
                np.sort(kept_full.column(column)),
                np.sort(kept_pruned.column(column)),
            )

    def test_fetch_rows_many_applies_per_plan_selections(self):
        store, stored, rows, selection = self._world()
        engine = CoordinatorEngine(store)
        (pruned, pruned_report), (full, full_report) = engine.fetch_rows_many(
            stored, [dict(rows), dict(rows)], selections=[selection, None]
        )
        solo, solo_report = engine.fetch_rows(
            stored, dict(rows), selection=selection
        )
        assert pruned.n_rows == solo.n_rows
        assert pruned_report.__dict__ == solo_report.__dict__
        assert full.n_rows > pruned.n_rows

    def test_prune_row_plan_is_conservative_without_synopses(self):
        synopses = []
        kept, pruned = prune_row_plan(
            synopses, {0: [1, 2]}, RangeSelection(("x0",), [0.0], [1.0])
        )
        assert kept == {0: [1, 2]}
        assert pruned == 0


class TestMutationKeepsSynopsesExact:
    def _piece(self, rng, n_rows):
        return Table(
            {
                "x0": rng.normal(size=n_rows) * 50.0,
                "x1": rng.normal(size=n_rows) * 50.0,
                "value": rng.normal(size=n_rows),
            },
            name="data",
        )

    def _assert_consistent(self, store):
        stored = store.table("data")
        assert synopses_consistent(
            store.synopses("data"), [p.data for p in stored.partitions]
        )
        expected = {}
        for partition in stored.partitions:
            for node_id in partition.all_nodes:
                expected[node_id] = expected.get(node_id, 0) + partition.n_bytes
        for node_id in store.topology.node_ids:
            assert store.topology.node(node_id).stored_bytes == expected.get(
                node_id, 0
            )

    @given(seed=st.integers(0, 80), n_ops=st.integers(1, 8))
    @settings(max_examples=20, deadline=None)
    def test_randomized_append_delete(self, seed, n_ops):
        rng = np.random.default_rng(seed)
        store, _ = build_world(n_rows=400, seed=seed)
        self._assert_consistent(store)
        for _ in range(n_ops):
            if rng.random() < 0.5:
                # Includes n_rows < n_partitions (zero-row pieces) and 0.
                store.append_rows("data", self._piece(rng, int(rng.integers(0, 40))))
            else:
                threshold = float(rng.uniform(-100.0, 100.0))
                store.delete_rows("data", lambda t: t.column("x0") > threshold)
            self._assert_consistent(store)

    def test_delete_everything_leaves_prunable_empty_partitions(self):
        store, table = build_world(n_rows=300)
        deleted = store.delete_rows("data", lambda t: np.ones(t.n_rows, bool))
        assert deleted == 300
        self._assert_consistent(store)
        for synopsis in store.synopses("data"):
            assert synopsis.n_rows == 0
            assert synopsis.disjoint(("x0",), [-1e12], [1e12])
        # A query over the emptied table still answers (neutral merges).
        query = AnalyticsQuery(
            "data", RangeSelection(("x0",), [-1e12], [1e12]), Count()
        )
        answer, report = ExactEngine(store).execute(query)
        assert answer == 0.0
        assert report.bytes_scanned == 0

    def test_zero_row_append_is_a_noop(self):
        store, _ = build_world(n_rows=200)
        rng = np.random.default_rng(0)
        before = [
            store.topology.node(n).stored_bytes for n in store.topology.node_ids
        ]
        store.append_rows("data", self._piece(rng, 0))
        after = [
            store.topology.node(n).stored_bytes for n in store.topology.node_ids
        ]
        assert before == after
        self._assert_consistent(store)


class TestMatrixSatellite:
    def test_matrix_values_unchanged_for_float_and_int_columns(self):
        table = Table(
            {"f": np.arange(5, dtype=np.float64), "i": np.arange(5, dtype=np.int64)}
        )
        mat = table.matrix()
        assert mat.dtype == np.float64
        assert np.array_equal(mat[:, 0], np.arange(5.0))
        assert np.array_equal(mat[:, 1], np.arange(5.0))

    def test_matrix_result_is_a_copy(self):
        table = Table({"f": np.arange(4, dtype=np.float64)})
        mat = table.matrix()
        mat[0, 0] = 123.0
        assert table.column("f")[0] == 0.0


class TestPruningObservability:
    def test_counters_and_decision_event_flow_through_obs(self):
        from repro.obs import StackObserver

        store, table = build_world(sort_on="x0")
        x0 = np.sort(table.column("x0"))
        lo, hi = float(x0[len(x0) // 3]), float(x0[len(x0) // 2])
        query = AnalyticsQuery(
            "data", RangeSelection(("x0",), [lo], [hi]), Sum("x1")
        )
        engine = ExactEngine(store)
        obs = StackObserver()
        engine.attach_observer(obs)
        engine.execute(query)
        flat = obs.metrics.as_dict()
        skipped = flat.get('prune_partitions_skipped_total{table="data"}', 0.0)
        scanned = flat.get('prune_partitions_scanned_total{table="data"}', 0.0)
        covered = flat.get('prune_partitions_covered_total{table="data"}', 0.0)
        assert skipped > 0
        assert skipped + scanned + covered == len(
            store.table("data").partitions
        )
        (event,) = obs.events.of_type("pruning")
        assert event.fields["table"] == "data"
        assert event.fields["skipped"] == skipped

    def test_unpruned_engine_emits_no_pruning_telemetry(self):
        from repro.obs import StackObserver

        store, table = build_world(sort_on="x0")
        query = AnalyticsQuery(
            "data", RangeSelection(("x0",), [0.0], [1.0]), Count()
        )
        engine = ExactEngine(store, pruning=False)
        obs = StackObserver()
        engine.attach_observer(obs)
        engine.execute(query)
        assert not any(
            key.startswith("prune_") for key in obs.metrics.as_dict()
        )
        assert list(obs.events.of_type("pruning")) == []


class TestSynopsisFeatures:
    def test_synopsis_estimates_feed_fixed_shape_features(self):
        store, table = build_world(sort_on="x0")
        x0 = table.column("x0")
        selection = RangeSelection(
            ("x0",), [float(x0.min())], [float(np.median(x0))]
        )
        est, frac = synopsis_estimates(store.synopses("data"), selection)
        assert 0.0 <= est <= 1.0
        assert 0.0 < frac <= 1.0
        with_synopses = TaskFeatures.for_subspace_aggregate(
            table.n_rows, 0.5, 1, 4, est_selectivity=est, scan_fraction=frac
        )
        without = TaskFeatures.for_subspace_aggregate(table.n_rows, 0.5, 1, 4)
        assert with_synopses.names == without.names
        assert with_synopses["scan_fraction"] == frac

    def test_empty_synopses_default_to_full_scan(self):
        selection = RangeSelection(("x0",), [0.0], [1.0])
        assert synopsis_estimates([], selection) == (1.0, 1.0)
