"""The async serving gateway: admission, batching control, fairness,
lifecycle, and the byte-identity contract (DESIGN §14).

Async tests drive a fresh ``event_loop`` fixture explicitly (no
pytest-asyncio).  Where the adaptive batcher's online estimates would
make scheduling nondeterministic, tests swap in a ``FakeBatcher`` with a
pinned window/target so queueing vs pass-through is forced, not raced.
"""

import asyncio
import time

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.core import AgentConfig, SEAAgent
from repro.data import gaussian_mixture_table, InterestProfile, WorkloadGenerator
from repro.queries import Count
from repro.serve import (
    AdaptiveBatcher,
    AdmissionQueue,
    AdmissionRejectedError,
    DeficitRoundRobin,
    GatewayClosedError,
    GatewayConfig,
    Request,
    ServingGateway,
)
from repro.session import SEASession


def make_session(n_rows=3000, seed=7):
    session = SEASession(n_nodes=4)
    table = gaussian_mixture_table(
        n_rows, dims=("x0", "x1"), seed=seed, name="data"
    )
    session.load_table(table)
    return session


def make_workload(n_rows=3000, seed=7):
    table = gaussian_mixture_table(
        n_rows, dims=("x0", "x1"), seed=seed, name="data"
    )
    profile = InterestProfile.from_table(
        table, ("x0", "x1"), 3, seed=11, hotspot_scale=2.5,
        extent_range=(3.0, 8.0),
    )
    return WorkloadGenerator(
        "data", ("x0", "x1"), profile, aggregate=Count(), seed=13
    )


def agent_config(**overrides):
    defaults = dict(training_budget=8, error_threshold=0.3)
    defaults.update(overrides)
    return AgentConfig(**defaults)


class FakeBatcher:
    """Deterministic stand-in: a pinned window and target batch."""

    def __init__(self, window=0.0, target=1, service_seconds=0.0):
        self._window = window
        self._target = target
        self.service_seconds = service_seconds
        self.n_arrivals = 0
        self.n_batches = 0

    def note_arrival(self, now):
        self.n_arrivals += 1

    def note_batch(self, size, host):
        self.n_batches += 1

    def window(self):
        return self._window

    def target_batch(self):
        return self._target

    def snapshot(self):
        return {"window": self._window, "target_batch": self._target}


def assert_records_identical(answers, reference_records):
    """Gateway answers == a sequential replay's records, byte for byte."""
    assert len(answers) == len(reference_records)
    for answer, record in zip(answers, reference_records):
        assert answer.mode == record.mode
        assert np.array_equal(
            np.asarray(answer.value), np.asarray(record.answer)
        )
        assert answer.cost.__dict__ == record.cost.__dict__


# ---------------------------------------------------------------------------
# Admission queue (pure unit tests on a fake clock)
# ---------------------------------------------------------------------------
class TestAdmissionQueue:
    def _request(self, tenant="a", arrival=0.0, deadline=10.0):
        return Request(
            tenant=tenant, query=object(), arrival=arrival, deadline=deadline
        )

    def test_tenant_quota_rejects_before_capacity(self):
        queue = AdmissionQueue(capacity=8, tenant_quota=1)
        queue.offer(self._request("greedy"), now=0.0)
        with pytest.raises(AdmissionRejectedError) as exc:
            queue.offer(self._request("greedy"), now=0.0)
        assert exc.value.reason == "tenant_quota"
        # The shared queue still has room for everyone else.
        queue.offer(self._request("other"), now=0.0)
        assert len(queue) == 2

    def test_queue_full_is_typed_and_never_sheds_internally(self):
        queue = AdmissionQueue(capacity=2, starvation_guard=0.25)
        expired = self._request("a", arrival=0.0, deadline=1.0)
        queue.offer(expired, now=0.0)
        queue.offer(self._request("b"), now=0.0)
        # At capacity with an already-expired entry: offer must refuse
        # rather than shed it — the expired request carries a future only
        # the gateway can fail (the gateway runs _shed before offering).
        with pytest.raises(AdmissionRejectedError) as exc:
            queue.offer(self._request("c"), now=5.0)
        assert exc.value.reason == "queue_full"
        assert not expired.dead
        assert len(queue) == 2

    def test_shed_expired_returns_them_for_the_caller_to_fail(self):
        queue = AdmissionQueue(capacity=8)
        dead = self._request("a", arrival=0.0, deadline=1.0)
        live = self._request("a", arrival=0.0, deadline=100.0)
        queue.offer(dead, now=0.0)
        queue.offer(live, now=0.0)
        shed = queue.shed_expired(now=2.0)
        assert shed == [dead]
        assert dead.dead and not live.dead
        assert len(queue) == 1
        assert queue.shed_total == 1

    def test_take_orders_by_effective_deadline(self):
        # The starvation guard caps the scheduling key: an early patient
        # arrival (far deadline) outranks a later urgent one.
        queue = AdmissionQueue(capacity=8, starvation_guard=0.25)
        patient = self._request("a", arrival=0.0, deadline=100.0)
        urgent = self._request("a", arrival=1.0, deadline=1.5)
        queue.offer(urgent, now=1.0)
        queue.offer(patient, now=1.0)
        taken = queue.take("a", limit=2, now=1.0)
        assert taken == [patient, urgent]

    def test_take_sheds_expired_instead_of_dispatching(self):
        loop = asyncio.new_event_loop()
        try:
            queue = AdmissionQueue(capacity=8)
            expired = self._request("a", arrival=0.0, deadline=1.0)
            expired.future = loop.create_future()
            live = self._request("a", arrival=0.0, deadline=100.0)
            queue.offer(expired, now=0.0)
            queue.offer(live, now=0.0)
            taken = queue.take("a", limit=2, now=2.0)
            assert taken == [live]
            assert expired.future.done()
            with pytest.raises(AdmissionRejectedError) as exc:
                expired.future.result()
            assert exc.value.reason == "deadline"
        finally:
            loop.close()

    def test_take_sheds_infeasible_requests_early(self):
        # A live request whose deadline precedes even its own projected
        # completion is a doomed late answer: take() converts it into a
        # fast typed rejection instead of wasting a batch slot on it.
        loop = asyncio.new_event_loop()
        try:
            queue = AdmissionQueue(capacity=8)
            doomed = self._request("a", arrival=0.0, deadline=0.02)
            doomed.future = loop.create_future()
            roomy = self._request("a", arrival=0.0, deadline=100.0)
            queue.offer(doomed, now=0.0)
            queue.offer(roomy, now=0.0)
            taken = queue.take("a", limit=4, now=0.0, service=0.05)
            assert taken == [roomy]
            assert queue.shed_total == 1
            with pytest.raises(AdmissionRejectedError) as exc:
                doomed.future.result()
            assert exc.value.reason == "deadline"
            assert "projected" in exc.value.detail
        finally:
            loop.close()

    def test_take_drops_tightest_members_until_the_batch_is_feasible(self):
        # Batch members all finish together at ~now + n*service.  A
        # tight-deadline head must not be served late *and* must not cap
        # the batch for the roomy requests behind it: Moore–Hodgson with
        # uniform service drops the tightest member until the projected
        # completion fits every survivor.
        loop = asyncio.new_event_loop()
        try:
            queue = AdmissionQueue(capacity=8, starvation_guard=100.0)
            tight = self._request("a", arrival=0.0, deadline=0.12)
            tight.future = loop.create_future()
            roomy = [
                self._request("a", arrival=0.0, deadline=100.0 + i)
                for i in range(3)
            ]
            queue.offer(tight, now=0.0)
            for request in roomy:
                queue.offer(request, now=0.0)
            # service=0.1: all four would finish at 0.4 > tight's 0.12;
            # dropping tight leaves three finishing at 0.3 <= 100.
            taken = queue.take("a", limit=4, now=0.0, service=0.1)
            assert taken == roomy
            assert queue.shed_total == 1
            assert queue.pending("a") == 0
            with pytest.raises(AdmissionRejectedError) as exc:
                tight.future.result()
            assert exc.value.reason == "deadline"
            assert "projected" in exc.value.detail
        finally:
            loop.close()


# ---------------------------------------------------------------------------
# Adaptive batcher (pure unit tests on synthetic timestamps)
# ---------------------------------------------------------------------------
class TestAdaptiveBatcher:
    def test_low_load_collapses_to_passthrough(self):
        batcher = AdaptiveBatcher(max_window=0.02, passthrough_rho=0.75)
        for i in range(16):
            batcher.note_arrival(i * 0.01)  # 100/s
            batcher.note_batch(1, 1e-4)  # 100us each -> rho = 0.01
        assert batcher.target_batch() == 1
        assert batcher.window() == 0.0

    def test_overload_grows_batch_and_window(self):
        batcher = AdaptiveBatcher(
            max_window=0.02, passthrough_rho=0.75, headroom=2.0
        )
        for i in range(32):
            batcher.note_arrival(i * 1e-4)  # 10k/s
            batcher.note_batch(1, 1e-3)  # 1ms each -> rho = 10
        assert batcher.rho > 1.0
        assert batcher.target_batch() >= 2
        assert 0.0 < batcher.window() <= 0.02

    def test_clustered_wakeups_do_not_explode_the_rate(self):
        # Event-loop stalls deliver pending arrivals bunched with
        # microsecond gaps.  The span-based estimator must read the true
        # ~40/s, not the millions/s a gap-based estimate would see.
        batcher = AdaptiveBatcher(history=32)
        for burst in range(4):
            base = burst * 0.25
            for i in range(8):
                batcher.note_arrival(base + i * 1e-6)
        snapshot = batcher.snapshot()
        assert 10.0 < snapshot["arrival_rate"] < 100.0

    def test_median_service_shrugs_off_fallback_spikes(self):
        batcher = AdaptiveBatcher(history=32)
        for _ in range(31):
            batcher.note_batch(1, 1e-4)
        batcher.note_batch(1, 5e-2)  # one 50ms exact-fallback spike
        assert batcher.snapshot()["service_seconds"] == pytest.approx(1e-4)

    def test_idle_gap_resets_the_rate_window(self):
        batcher = AdaptiveBatcher(history=32, max_gap=1.0)
        for i in range(16):
            batcher.note_arrival(i * 1e-3)  # an old 1k/s burst
        # 5s of silence, then a new 1k/s burst: the rate must reflect
        # the new episode, not be diluted by the idle span.
        for i in range(8):
            batcher.note_arrival(5.0 + i * 1e-3)
        assert batcher.snapshot()["arrival_rate"] == pytest.approx(
            1000.0, rel=0.05
        )


# ---------------------------------------------------------------------------
# Deficit round-robin (pure unit tests)
# ---------------------------------------------------------------------------
class TestDeficitRoundRobin:
    def test_visits_alternate_between_backlogged_tenants(self):
        drr = DeficitRoundRobin(quantum=4)
        drr.observe("a")
        drr.observe("b")
        pending = {"a": 100, "b": 100}
        order = []
        for _ in range(4):
            tenant, budget = drr.select(pending)
            assert budget == 4
            drr.charge(tenant, budget)
            order.append(tenant)
        assert sorted(order[:2]) == ["a", "b"]
        assert order[:2] != order[2:4][::-1] or order[0] != order[1]
        assert order.count("a") == 2 and order.count("b") == 2

    def test_budget_capped_by_backlog_and_deficit(self):
        drr = DeficitRoundRobin(quantum=8)
        drr.observe("a")
        tenant, budget = drr.select({"a": 3})
        assert (tenant, budget) == ("a", 3)
        drr.charge("a", 3)
        assert drr.deficits()["a"] == 5.0  # unused credit carries over

    def test_drained_tenant_loses_carryover(self):
        drr = DeficitRoundRobin(quantum=8)
        drr.observe("a")
        drr.observe("b")
        drr.select({"a": 2, "b": 2})
        # Next pass sees "a" empty: classic DRR zeroes its deficit.
        for _ in range(2):
            drr.select({"a": 0, "b": 2})
        assert drr.deficits()["a"] == 0.0

    def test_flood_gets_share_of_visits_not_of_arrivals(self):
        drr = DeficitRoundRobin(quantum=4)
        drr.observe("flood")
        drr.observe("quiet")
        served = {"flood": 0, "quiet": 0}
        pending = {"flood": 1000, "quiet": 8}
        while pending["quiet"] > 0:
            tenant, budget = drr.select(pending)
            took = min(budget, pending[tenant])
            pending[tenant] -= took
            drr.charge(tenant, took)
            served[tenant] += took
        # By the time the quiet tenant drains, the flood got no more
        # than its alternating-visit share (+1 quantum of slack).
        assert served["flood"] <= served["quiet"] + drr.quantum


# ---------------------------------------------------------------------------
# The gateway itself (driven on the explicit event_loop fixture)
# ---------------------------------------------------------------------------
class TestServingGateway:
    def _gateway(self, session, **config_overrides):
        config = GatewayConfig(**config_overrides)
        return ServingGateway(
            session, config, agent_config=agent_config(), own_session=False
        )

    def test_passthrough_answers_are_byte_identical_to_replay(
        self, event_loop
    ):
        session = make_session()
        workload = make_workload()
        queries = workload.batch(40)
        gateway = self._gateway(session)
        # Closed-loop back-to-back awaits measure rho ~= 1 by
        # construction (arrival rate == 1/service), so the adaptive
        # batcher may legitimately engage; pin it to the pass-through
        # regime to assert the inline path specifically.
        gateway.batcher = FakeBatcher(window=0.0, target=1)

        async def run():
            async with gateway:
                return [
                    await gateway.submit(q, tenant="alice") for q in queries
                ]

        answers = event_loop.run_until_complete(run())
        stats = gateway.stats()
        assert stats["served_total"] == 40
        assert stats["inline_total"] == 40  # sequential awaits never queue
        handle = gateway.tenant("alice")
        reference = SEAAgent(session.engine, agent_config())
        records = [reference.submit(q) for q in handle.served_queries]
        assert_records_identical(answers, records)
        session.close()

    def test_coalesced_batches_stay_byte_identical(self, event_loop):
        session = make_session()
        workload = make_workload()
        queries = workload.batch(32)
        gateway = self._gateway(session, max_batch=8)
        # Pin the batcher into the batching regime: every request
        # queues, the loop coalesces up to 8 per dispatch.
        gateway.batcher = FakeBatcher(window=0.002, target=8)

        answers = event_loop.run_until_complete(
            gateway.submit_many(queries, tenant="alice", timeout=30.0)
        )
        event_loop.run_until_complete(gateway.close())
        stats = gateway.stats()
        assert stats["served_total"] == 32
        assert stats["coalesced_total"] > 0
        assert stats["batches_total"] < 32
        handle = gateway.tenant("alice")
        reference = SEAAgent(session.engine, agent_config())
        by_query = {}
        position = {id(q): i for i, q in enumerate(handle.served_queries)}
        records = reference.submit_batch(handle.served_queries)
        # submit_many returns answers in input order; replay in the
        # gateway's actual serving order, then realign.
        realigned = [records[position[id(a.query)]] for a in answers]
        assert_records_identical(answers, realigned)
        session.close()

    def test_deadline_shed_while_queued_uses_injected_clock(
        self, event_loop
    ):
        session = make_session()
        workload = make_workload()
        clock = [100.0]
        gateway = ServingGateway(
            session,
            GatewayConfig(max_batch=8),
            agent_config=agent_config(),
            time_fn=lambda: clock[0],
            own_session=False,
        )
        gateway.batcher = FakeBatcher(window=0.01, target=100)

        async def run():
            await gateway.start()
            tasks = [
                asyncio.ensure_future(
                    gateway.submit(q, tenant="alice", timeout=0.5)
                )
                for q in workload.batch(3)
            ]
            await asyncio.sleep(0)  # let the submits enqueue
            clock[0] += 1.0  # every queued deadline is now past
            return await asyncio.gather(*tasks, return_exceptions=True)

        results = event_loop.run_until_complete(run())
        event_loop.run_until_complete(gateway.close())
        assert len(results) == 3
        for result in results:
            assert isinstance(result, AdmissionRejectedError)
            assert result.reason == "deadline"
        assert gateway.counters.rejected["deadline"] == 3
        session.close()

    def test_dead_on_arrival_is_rejected_without_queueing(self, event_loop):
        session = make_session()
        workload = make_workload()
        clock = [50.0]
        gateway = ServingGateway(
            session,
            GatewayConfig(),
            agent_config=agent_config(),
            time_fn=lambda: clock[0],
            own_session=False,
        )

        async def run():
            async with gateway:
                with pytest.raises(AdmissionRejectedError) as exc:
                    await gateway.submit(
                        workload.next_query(), tenant="alice", deadline=49.0
                    )
                return exc.value

        error = event_loop.run_until_complete(run())
        assert error.reason == "deadline"
        assert len(gateway.queue) == 0
        session.close()

    def test_tenant_quota_and_queue_full_rejections(self, event_loop):
        session = make_session()
        workload = make_workload()
        gateway = self._gateway(session, queue_capacity=2, tenant_quota=1)
        gateway.batcher = FakeBatcher(window=0.05, target=100)

        async def run():
            await gateway.start()
            first = asyncio.ensure_future(
                gateway.submit(
                    workload.next_query(), tenant="greedy", timeout=30.0
                )
            )
            await asyncio.sleep(0)
            with pytest.raises(AdmissionRejectedError) as quota_exc:
                await gateway.submit(
                    workload.next_query(), tenant="greedy", timeout=30.0
                )
            second = asyncio.ensure_future(
                gateway.submit(
                    workload.next_query(), tenant="other", timeout=30.0
                )
            )
            await asyncio.sleep(0)
            with pytest.raises(AdmissionRejectedError) as full_exc:
                await gateway.submit(
                    workload.next_query(), tenant="third", timeout=30.0
                )
            answers = await asyncio.gather(first, second)
            return quota_exc.value, full_exc.value, answers

        quota_error, full_error, answers = event_loop.run_until_complete(run())
        event_loop.run_until_complete(gateway.close())
        assert quota_error.reason == "tenant_quota"
        assert quota_error.tenant == "greedy"
        assert full_error.reason == "queue_full"
        assert len(answers) == 2  # admitted requests still served
        session.close()

    def test_drain_close_serves_everything_queued(self, event_loop):
        session = make_session()
        workload = make_workload()
        gateway = self._gateway(session, max_batch=8)
        gateway.batcher = FakeBatcher(window=0.05, target=100)

        async def run():
            await gateway.start()
            tasks = [
                asyncio.ensure_future(
                    gateway.submit(q, tenant="alice", timeout=30.0)
                )
                for q in workload.batch(5)
            ]
            await asyncio.sleep(0)
            await gateway.close()  # drain=True: everything queued serves
            return await asyncio.gather(*tasks)

        answers = event_loop.run_until_complete(run())
        assert len(answers) == 5
        assert gateway.closed
        # Idempotent, and new submissions are refused with a typed error.
        event_loop.run_until_complete(gateway.close())
        with pytest.raises(GatewayClosedError):
            event_loop.run_until_complete(
                gateway.submit(workload.next_query(), tenant="alice")
            )
        session.close()

    def test_no_drain_close_fails_queued_requests(self, event_loop):
        session = make_session()
        workload = make_workload()
        gateway = self._gateway(session)
        gateway.batcher = FakeBatcher(window=0.05, target=100)

        async def run():
            await gateway.start()
            tasks = [
                asyncio.ensure_future(
                    gateway.submit(q, tenant="alice", timeout=30.0)
                )
                for q in workload.batch(4)
            ]
            await asyncio.sleep(0)
            await gateway.close(drain=False)
            return await asyncio.gather(*tasks, return_exceptions=True)

        results = event_loop.run_until_complete(run())
        assert all(isinstance(r, GatewayClosedError) for r in results)
        assert gateway.counters.rejected["closed"] >= 4
        session.close()

    def test_serving_fault_fails_the_batch_with_the_engine_error(
        self, event_loop
    ):
        session = make_session()
        workload = make_workload()
        gateway = self._gateway(session, max_batch=4)
        gateway.batcher = FakeBatcher(window=0.002, target=4)
        handle = gateway.tenant("alice")
        original_serve = handle.serve
        boom = {"armed": True}

        def failing_serve(requests):
            if boom["armed"]:
                boom["armed"] = False
                raise RuntimeError("node exploded mid-batch")
            return original_serve(requests)

        handle.serve = failing_serve
        queries = workload.batch(4)

        async def run():
            async with gateway:
                first = await asyncio.gather(
                    *(
                        gateway.submit(q, tenant="alice", timeout=30.0)
                        for q in queries
                    ),
                    return_exceptions=True,
                )
                second = await asyncio.gather(
                    *(
                        gateway.submit(q, tenant="alice", timeout=30.0)
                        for q in queries
                    ),
                    return_exceptions=True,
                )
                return first, second

        first, second = event_loop.run_until_complete(run())
        # The failing batch surfaced the engine error to every waiter...
        assert any(isinstance(r, RuntimeError) for r in first)
        # ...and the gateway kept serving: the retry round all succeeded
        # and stayed byte-identical to a sequential replay.
        assert all(not isinstance(r, Exception) for r in second)
        reference = SEAAgent(session.engine, agent_config())
        position = {id(q): i for i, q in enumerate(handle.served_queries)}
        records = reference.submit_batch(handle.served_queries)
        realigned = [records[position[id(a.query)]] for a in second]
        assert_records_identical(second, realigned)
        session.close()

    def test_rebinding_to_a_different_loop_is_refused(self, event_loop):
        session = make_session()
        workload = make_workload()
        gateway = self._gateway(session)
        event_loop.run_until_complete(gateway.start())
        other = asyncio.new_event_loop()
        try:
            with pytest.raises(ConfigurationError):
                other.run_until_complete(
                    gateway.submit(workload.next_query(), tenant="alice")
                )
        finally:
            other.close()
        event_loop.run_until_complete(gateway.close())
        session.close()

    def test_tenants_are_isolated_handles_over_one_engine(self, event_loop):
        session = make_session()
        workload = make_workload()
        gateway = self._gateway(session)

        async def run():
            async with gateway:
                for query in workload.batch(6):
                    await gateway.submit(query, tenant="alice")
                    await gateway.submit(query, tenant="bob")

        event_loop.run_until_complete(run())
        alice, bob = gateway.tenant("alice"), gateway.tenant("bob")
        assert alice.agent is not bob.agent
        assert alice.agent.cache is not bob.agent.cache
        assert alice.agent.engine is bob.agent.engine
        # Freezing one tenant's config must not leak into the other.
        alice.config.keep_learning_on_fallback = False
        assert bob.config.keep_learning_on_fallback
        stats = gateway.stats()
        assert set(stats["tenants"]) == {"alice", "bob"}
        assert stats["tenants"]["alice"]["served"] == 6.0
        session.close()

    def test_stats_surface_counters_and_batcher_snapshot(self, event_loop):
        session = make_session()
        workload = make_workload()
        gateway = self._gateway(session)

        async def run():
            async with gateway:
                await gateway.submit(workload.next_query(), tenant="alice")

        event_loop.run_until_complete(run())
        stats = gateway.stats()
        for key in (
            "served_total",
            "inline_total",
            "rejected",
            "queue_depth",
            "batcher",
            "drr_deficits",
        ):
            assert key in stats
        assert stats["batcher"]["n_arrivals"] == 1
        session.close()
