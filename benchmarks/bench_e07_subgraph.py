"""E7 — subgraph-query semantic cache ([34], [35]).

"Novel subgraph-query semantic caches minimized back-end stored data
accesses, ensuring performance improvements up to 40X."  A workload with
realistic repetition (analysts re-issue and refine patterns) is run with
and without the GraphCache-like semantic cache; reported: hit mix, mean
per-query cost and the overall speedup.
"""

import numpy as np

from repro.bigdataless import GraphStore, SemanticGraphCache, SubgraphMatcher
from repro.bigdataless.subgraph import QueryGraph
from repro.cluster import ClusterTopology

from harness import format_table, write_result

N_VERTICES = 3000
N_QUERIES = 60


def build_workload(seed=0, n_queries=N_QUERIES, skew=1.0):
    """A pattern workload with repeats and refinements (edge -> path -> tri).

    ``skew`` is the zipf exponent over the pattern pool: 1.0 gives the
    moderate-repetition mix of exploratory analysis, higher values model
    dashboard-style workloads that hammer a few patterns.
    """
    rng = np.random.default_rng(seed)
    base_patterns = [
        QueryGraph(["A", "B"], [(0, 1)]),
        QueryGraph(["B", "C"], [(0, 1)]),
        QueryGraph(["A", "B", "C"], [(0, 1), (1, 2)]),
        QueryGraph(["A", "B", "C"], [(0, 1), (1, 2), (2, 0)]),
        QueryGraph(["A", "B", "A"], [(0, 1), (1, 2)]),
        QueryGraph(["C", "D"], [(0, 1)]),
        QueryGraph(["B", "C", "D"], [(0, 1), (1, 2)]),
    ]
    weights = 1.0 / np.arange(1, len(base_patterns) + 1) ** skew
    weights /= weights.sum()
    picks = rng.choice(len(base_patterns), size=n_queries, p=weights)
    return [base_patterns[i] for i in picks]


def run_one(store, workload, label):
    uncached = SubgraphMatcher(store, max_embeddings=500)
    uncached_costs = []
    for pattern in workload:
        _, report = uncached.match(pattern)
        uncached_costs.append(report.elapsed_sec)

    cache = SemanticGraphCache(SubgraphMatcher(store, max_embeddings=500))
    cached_costs = []
    for pattern in workload:
        _, report = cache.query(pattern)
        cached_costs.append(report.elapsed_sec)

    speedup = float(np.sum(uncached_costs)) / max(1e-12, float(np.sum(cached_costs)))
    return [
        label,
        cache.misses,
        cache.exact_hits,
        cache.subsumption_hits,
        float(np.mean(cached_costs)),
        speedup,
    ]


def run_subgraph():
    topo = ClusterTopology.single_datacenter(8)
    store = GraphStore.random(topo, N_VERTICES, avg_degree=4.0, seed=1)
    rows = [
        run_one(store, build_workload(skew=1.0), "exploratory (zipf 1.0)"),
        run_one(
            store,
            build_workload(seed=2, n_queries=150, skew=2.5),
            "dashboard (zipf 2.5)",
        ),
    ]
    return rows


def test_e07_subgraph_cache(benchmark):
    rows = benchmark.pedantic(run_subgraph, rounds=1, iterations=1)
    headers = ["workload", "cold_runs", "exact_hits", "subsumption_hits",
               "mean_sec_per_query", "workload_speedup"]
    table = format_table(
        "E7: subgraph matching with the semantic cache",
        headers,
        rows,
    )
    write_result("e07_subgraph", table, headers=headers, rows=rows)
    exploratory, dashboard = rows
    assert exploratory[2] > 0  # exact hits happened
    assert exploratory[5] > 3.0  # the workload sped up substantially
    # Repetition drives the speedup toward the paper's 40x regime.
    assert dashboard[5] > exploratory[5]
    assert dashboard[5] > 15.0
    benchmark.extra_info["speedups"] = (exploratory[5], dashboard[5])
