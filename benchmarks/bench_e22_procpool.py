"""E22 — process-parallel scans over shared memory: past the GIL ceiling.

DESIGN §12: :class:`~repro.parallel.ProcessScanExecutor` ships morsel
specs to a process pool whose workers attach zero-copy views of
partitions published once into shared memory.  E19 showed the thread
pool is byte-identical but GIL-bound; this experiment measures whether
processes actually buy wall-clock on the same >=1M-row suite, and what
the shared-memory publish protocol costs:

* **Byte-identity (always asserted):** every executor x worker-count
  combination in the sweep — thread and process alike — must produce
  ``repr``-equal answers and ``==``-equal cost-report dicts against the
  serial reference.  This runs unconditionally, also on 1-CPU hosts.
* **Wall-clock speedup (asserted on multicore hosts):** with 4 process
  workers on a >=4-core host and the full >=1M-row scale, the suite
  must run >=``E22_MIN_SPEEDUP`` (default 1.8) times faster than
  serial.  Smaller hosts record the measurement ungated; set
  ``E22_REQUIRE_SPEEDUP=1``/``0`` to force/suppress the gate.
* **Publish protocol microbenchmark:** publish throughput (MB/s) into
  shared memory across table sizes, the republish traffic after a
  single-partition append (asserted bounded to that partition's
  footprint), and the break-even table size where one publish costs
  less than the serial compute it unlocks per scan.

The cumulative ``BENCH_procpool.json`` trajectory stores medians + IQRs
per (executor, workers) plus ``host_cpus``, so cross-commit comparisons
know what silicon produced each entry.  Scale via ``E22_ROWS``.
"""

import gc
import os

import numpy as np

from repro.baselines import ExactEngine
from repro.cluster import ClusterTopology, DistributedStore
from repro.data import gaussian_mixture_table
from repro.parallel import ProcessScanExecutor, ScanExecutor, SharedPartitionStore
from repro.queries import (
    AnalyticsQuery,
    Correlation,
    Count,
    Median,
    RangeSelection,
    Std,
)

from harness import (
    format_table,
    record_procpool_benchmark,
    trial_stats,
    wallclock,
    write_result,
)

N_ROWS = int(os.environ.get("E22_ROWS", 1_200_000))
N_NODES = int(os.environ.get("E22_NODES", 8))
PARTS_PER_NODE = int(os.environ.get("E22_PARTS_PER_NODE", 4))
N_TRIALS = int(os.environ.get("E22_TRIALS", 3))
WORKER_SWEEP = tuple(
    int(w) for w in os.environ.get("E22_WORKERS", "1,2,4").split(",")
)
MIN_SPEEDUP = float(os.environ.get("E22_MIN_SPEEDUP", 1.8))
HOST_CPUS = os.cpu_count() or 1
# The >=1.8x gate needs hardware that can run 4 morsels at once; on
# fewer cores the sweep still runs and records byte-identity + the
# measured (likely ~1x) speedup, gated off.
REQUIRE_SPEEDUP = (
    os.environ.get("E22_REQUIRE_SPEEDUP") == "1"
    or (HOST_CPUS >= 4 and os.environ.get("E22_REQUIRE_SPEEDUP") != "0")
)
SEED = 22  # pinned: the trajectory compares identical workloads


def build_world():
    topo = ClusterTopology.single_datacenter(N_NODES)
    store = DistributedStore(topo)
    table = gaussian_mixture_table(
        N_ROWS, dims=("x0", "x1"), seed=SEED, name="data"
    )
    store.put_table(table, partitions_per_node=PARTS_PER_NODE)
    return store


def heavy_queries():
    """Compute-heavy jobs where the map phase dominates (see E19)."""
    cols = ("x0", "x1")
    cut = RangeSelection(cols, [0.0, 0.0], [100.0, 50.0])
    narrow = RangeSelection(cols, [10.0, 10.0], [25.0, 25.0])
    return [
        AnalyticsQuery("data", cut, Std("x0")),
        AnalyticsQuery("data", cut, Correlation("x0", "x1")),
        AnalyticsQuery("data", cut, Median("x1")),
        AnalyticsQuery("data", narrow, Std("x1")),
    ]


def batch_queries():
    cols = ("x0", "x1")
    out = []
    for i in range(8):
        high = 30.0 + 8.0 * i
        out.append(
            AnalyticsQuery(
                "data",
                RangeSelection(cols, [0.0, 0.0], [100.0, high]),
                Count() if i % 2 == 0 else Std("x0"),
            )
        )
    return out


def run_suite(engine, singles, batch):
    results = [engine.execute(q) for q in singles]
    results.extend(engine.execute_many(batch))
    return results


def as_comparable(results):
    answers = [repr(answer) for answer, _ in results]
    reports = [report.as_dict() for _, report in results]
    return answers, reports


def make_executor(flavour, workers):
    if flavour == "process":
        return ProcessScanExecutor(workers)
    return ScanExecutor(workers)


def run_executor_sweep():
    """Thread vs process x worker counts; byte-identity asserted per cell."""
    store = build_world()
    singles = heavy_queries()
    batch = batch_queries()
    reference = None
    sweep = []
    cells = [("thread", 1)]
    for flavour in ("thread", "process"):
        cells.extend((flavour, w) for w in WORKER_SWEEP if w > 1)
    for flavour, workers in cells:
        executor = make_executor(flavour, workers)
        if flavour == "process":
            executor.warm()  # pay worker spawn outside the timed trials
        engine = ExactEngine(store, executor=executor)
        # Identity pass (also publishes segments and warms caches).
        comparable = as_comparable(run_suite(engine, singles, batch))
        if reference is None:
            reference = comparable
        else:
            assert comparable[0] == reference[0], (
                f"answers drifted at {flavour} workers={workers}"
            )
            assert comparable[1] == reference[1], (
                f"cost reports drifted at {flavour} workers={workers}"
            )
        trials = []
        for _ in range(N_TRIALS):
            gc.collect()
            gc.disable()
            try:
                _, seconds = wallclock(
                    lambda: run_suite(engine, singles, batch)
                )
            finally:
                gc.enable()
            trials.append(seconds)
        executor.close()
        stats = trial_stats(trials)
        sweep.append(
            {
                "executor": flavour,
                "workers": workers,
                "wall_sec_median": stats["median"],
                "wall_sec_iqr": stats["iqr"],
                "wall_sec_min": stats["min"],
                "trials": N_TRIALS,
            }
        )
    serial = next(s for s in sweep if s["workers"] == 1)
    for entry in sweep:
        entry["speedup"] = serial["wall_sec_median"] / entry["wall_sec_median"]
    return sweep


def run_publish_microbench():
    """Publish/republish cost of the shared-memory protocol.

    Publishes tables of growing size, measures MB/s into shared memory,
    asserts the single-partition-append republish bound, and estimates
    the break-even table size: the smallest sweep size where one
    publish costs less than one serial scan of the same bytes (beyond
    it, shipping pays for itself within a single batch).
    """
    rows_sweep = [n for n in (20_000, 100_000, 400_000) if n <= max(N_ROWS, 20_000)]
    points = []
    for i, n_rows in enumerate(rows_sweep):
        store = DistributedStore(ClusterTopology.single_datacenter(4))
        table = gaussian_mixture_table(
            n_rows, dims=("x0", "x1"), seed=SEED + i, name="data"
        )
        store.put_table(table, partitions_per_node=2)
        stored = store.table("data")
        shared = SharedPartitionStore()
        try:
            _, publish_sec = wallclock(
                lambda: [shared.ensure(p) for p in stored.partitions]
            )
            published = shared.publish_bytes
            # One serial pass over the same bytes (the work a publish
            # unlocks per scan thereafter) for the break-even estimate.
            _, scan_sec = wallclock(
                lambda: [
                    float(np.add.reduce(p.data.column("x0")))
                    for p in stored.partitions
                ]
            )
            # Republish bound: append touches some partitions; only
            # their footprints may be republished.
            store.append_rows(
                "data",
                gaussian_mixture_table(
                    64, dims=("x0", "x1"), seed=99, name="data"
                ),
            )
            stored = store.table("data")
            mutated = {p.index for p in stored.partitions if p.generation > 0}
            for p in stored.partitions:
                shared.ensure(p)
            budget = sum(
                entry.nbytes
                for (name, index), entry in shared._segments.items()
                if index in mutated
            )
            assert shared.republish_bytes <= budget, (
                f"republish {shared.republish_bytes} exceeded mutated "
                f"partitions' footprint {budget}"
            )
            points.append(
                {
                    "n_rows": n_rows,
                    "publish_bytes": published,
                    "publish_sec": publish_sec,
                    "publish_mb_per_sec": published / max(publish_sec, 1e-9) / 1e6,
                    "scan_sec": scan_sec,
                    "republish_bytes": shared.republish_bytes,
                    "republish_budget": budget,
                }
            )
        finally:
            shared.close()
    break_even = next(
        (p["n_rows"] for p in points if p["publish_sec"] <= p["scan_sec"]),
        None,
    )
    return points, break_even


def test_e22_procpool(benchmark):
    def run_all():
        return run_executor_sweep(), run_publish_microbench()

    sweep, (publish_points, break_even) = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    headers = ["executor", "workers", "wall_sec_median", "wall_sec_iqr", "speedup"]
    rows = [
        [s["executor"], s["workers"], s["wall_sec_median"], s["wall_sec_iqr"], s["speedup"]]
        for s in sweep
    ]
    table = format_table(
        f"E22: thread vs process executor, {N_ROWS} rows x "
        f"{N_NODES * PARTS_PER_NODE} partitions ({HOST_CPUS} host CPUs)",
        headers,
        rows,
    )
    publish_headers = [
        "n_rows", "publish_mb_per_sec", "publish_sec", "scan_sec",
        "republish_bytes", "republish_budget",
    ]
    publish_rows = [
        [p[h] for h in publish_headers] for p in publish_points
    ]
    table += "\n" + format_table(
        f"E22: shared-memory publish protocol (break-even rows: {break_even})",
        publish_headers,
        publish_rows,
    )
    write_result(
        "e22_procpool",
        table,
        headers=headers,
        rows=rows,
        extra={
            "host_cpus": HOST_CPUS,
            "rows": N_ROWS,
            "publish": publish_points,
            "break_even_rows": break_even,
        },
    )
    record_procpool_benchmark(
        "e22_procpool",
        n_rows=N_ROWS,
        n_nodes=N_NODES,
        partitions=N_NODES * PARTS_PER_NODE,
        byte_identical=True,  # asserted inside run_executor_sweep
        speedup_gated=REQUIRE_SPEEDUP,
        sweep=sweep,
        publish_mb_per_sec=max(
            (p["publish_mb_per_sec"] for p in publish_points), default=None
        ),
        break_even_rows=break_even,
    )
    best = max(
        (s for s in sweep if s["executor"] == "process"),
        key=lambda s: s["workers"],
        default=None,
    )
    benchmark.extra_info["host_cpus"] = HOST_CPUS
    if best is not None:
        benchmark.extra_info["process_speedup_at_max_workers"] = best["speedup"]
    if (
        REQUIRE_SPEEDUP
        and best is not None
        and best["workers"] >= 4
        and N_ROWS >= 1_000_000
    ):
        assert best["speedup"] >= MIN_SPEEDUP, (
            f"process workers={best['workers']} ran only "
            f"{best['speedup']:.2f}x faster than serial on {HOST_CPUS} CPUs "
            f"(gate: >={MIN_SPEEDUP}x)"
        )
