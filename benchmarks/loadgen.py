"""Reusable open-loop load generation for serving benchmarks.

Closed-loop benchmarks (issue a query, wait, issue the next) hide
queueing: the system under test throttles its own offered load, so tail
latency looks flat right up to the cliff.  Open-loop load fixes the
*arrival schedule* in advance — requests arrive when the schedule says,
whether or not earlier ones finished — which is how real multi-client
serving behaves and the only way to measure goodput and p99 honestly.

This module is deliberately framework-free: schedules are plain lists
of :class:`ScheduledRequest` (arrival offset + deadline), and
:class:`LatencyRecorder` turns completion observations into the
percentile/IQR summary shape the benchmark harness records.  E24 drives
the gateway with it; anything else that serves queries can reuse it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np


@dataclass
class ScheduledRequest:
    """One planned arrival: when it lands and when its answer is due."""

    index: int
    arrival: float  # seconds from schedule start
    deadline: float  # absolute, seconds from schedule start
    payload: object = None


def poisson_schedule(
    n: int,
    rate: float,
    deadline: float,
    seed: int = 0,
    payloads: Optional[Sequence] = None,
) -> List[ScheduledRequest]:
    """``n`` Poisson arrivals at ``rate``/s, each due ``deadline``s later.

    Exponential inter-arrival gaps from a seeded generator: the same
    (n, rate, seed) always yields the same schedule, so trials are
    reproducible and baselines comparable.
    """
    if n <= 0:
        return []
    if rate <= 0:
        raise ValueError("rate must be positive")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate, size=n)
    arrivals = np.cumsum(gaps)
    return _build(arrivals, deadline, payloads)


def uniform_schedule(
    n: int,
    rate: float,
    deadline: float,
    payloads: Optional[Sequence] = None,
) -> List[ScheduledRequest]:
    """``n`` evenly spaced arrivals at ``rate``/s (deterministic pacing)."""
    if n <= 0:
        return []
    if rate <= 0:
        raise ValueError("rate must be positive")
    arrivals = (np.arange(n, dtype=float) + 1.0) / rate
    return _build(arrivals, deadline, payloads)


def _build(
    arrivals: np.ndarray, deadline: float, payloads: Optional[Sequence]
) -> List[ScheduledRequest]:
    if payloads is not None and len(payloads) != len(arrivals):
        raise ValueError(
            f"{len(payloads)} payloads for {len(arrivals)} arrivals"
        )
    return [
        ScheduledRequest(
            index=i,
            arrival=float(t),
            deadline=float(t) + deadline,
            payload=None if payloads is None else payloads[i],
        )
        for i, t in enumerate(arrivals)
    ]


def percentile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (0.0 on an empty sample set)."""
    if not samples:
        return 0.0
    return float(np.percentile(np.asarray(samples, dtype=float), q))


@dataclass
class LatencyRecorder:
    """Accumulates per-request outcomes into the summary E24 records.

    ``ok`` completions carry their end-to-end latency and whether the
    answer beat its deadline; rejections carry their typed reason.
    *Goodput* is within-deadline completions per second of makespan —
    the honest open-loop throughput number (late answers and rejections
    both count against it).
    """

    latencies: List[float] = field(default_factory=list)
    in_deadline: int = 0
    completed: int = 0
    rejections: Dict[str, int] = field(default_factory=dict)

    def ok(self, latency_sec: float, within_deadline: bool) -> None:
        self.latencies.append(float(latency_sec))
        self.completed += 1
        if within_deadline:
            self.in_deadline += 1

    def rejected(self, reason: str) -> None:
        self.rejections[reason] = self.rejections.get(reason, 0) + 1

    @property
    def offered(self) -> int:
        return self.completed + sum(self.rejections.values())

    def rejection_rate(self) -> float:
        offered = self.offered
        return sum(self.rejections.values()) / offered if offered else 0.0

    def goodput(self, makespan_sec: float) -> float:
        if makespan_sec <= 0:
            return 0.0
        return self.in_deadline / makespan_sec

    def summary(self, makespan_sec: float) -> Dict[str, float]:
        lat = sorted(self.latencies)
        q25 = percentile(lat, 25.0)
        q75 = percentile(lat, 75.0)
        return {
            "offered": float(self.offered),
            "completed": float(self.completed),
            "in_deadline": float(self.in_deadline),
            "rejected": float(sum(self.rejections.values())),
            "rejection_rate": self.rejection_rate(),
            "goodput_qps": self.goodput(makespan_sec),
            "makespan_sec": float(makespan_sec),
            "p50_ms": percentile(lat, 50.0) * 1e3,
            "p90_ms": percentile(lat, 90.0) * 1e3,
            "p99_ms": percentile(lat, 99.0) * 1e3,
            "latency_iqr_ms": (q75 - q25) * 1e3,
        }
