"""E5 — rank-join: statistical index vs MapReduce ([30]).

"This achieved up to 6 orders of magnitude performance improvements (in
execution time, network bandwidth, and money costs)!"  The absolute
factor depends on data scale; the reproduced *shape* is: the indexed plan
reads a near-constant few hundred rows while the MapReduce plan scans and
shuffles both relations entirely, so every cost ratio grows roughly
linearly with relation size.
"""

import numpy as np

from repro.bigdataless import IndexedRankJoin, RankJoinBaseline
from repro.cluster import ClusterTopology, DistributedStore
from repro.data import scored_relation

from harness import format_table, write_result

SIZES = (5_000, 20_000, 80_000)
K = 10


def run_rank_join():
    rows = []
    for n_rows in SIZES:
        topo = ClusterTopology.single_datacenter(8)
        store = DistributedStore(topo)
        store.put_table(
            scored_relation(n_rows, key_space=max(64, n_rows // 10), seed=1, name="R", value_bytes=256),
            partitions_per_node=2,
        )
        store.put_table(
            scored_relation(n_rows, key_space=max(64, n_rows // 10), seed=2, name="S", value_bytes=256),
            partitions_per_node=2,
        )
        baseline = RankJoinBaseline(store)
        indexed = IndexedRankJoin(store)
        indexed.build_index("R")
        indexed.build_index("S")
        base_result, base_report = baseline.query("R", "S", K)
        index_result, index_report = indexed.query("R", "S", K)
        assert [round(s, 9) for s, _ in base_result] == [
            round(s, 9) for s, _ in index_result
        ]
        rows.append(
            [
                n_rows,
                base_report.elapsed_sec / index_report.elapsed_sec,
                base_report.bytes_scanned / max(1, index_report.bytes_scanned),
                (base_report.bytes_shipped_lan + 1)
                / (index_report.bytes_shipped_lan + 1),
                base_report.dollars() / max(1e-12, index_report.dollars()),
                index_report.rows_examined,
            ]
        )
    return rows


def test_e05_rank_join(benchmark):
    rows = benchmark.pedantic(run_rank_join, rounds=1, iterations=1)
    headers = ["rows_per_relation", "time_x", "scan_bytes_x", "shuffle_bytes_x",
               "dollars_x", "indexed_rows_read"]
    table = format_table(
        "E5: rank-join speedups (MapReduce baseline / indexed TA), k=10",
        headers,
        rows,
    )
    write_result("e05_rank_join", table, headers=headers, rows=rows)
    # Indexed wins on every metric at every size.
    for row in rows:
        assert row[1] > 1.0 and row[2] > 1.0 and row[4] > 1.0
    # The gap grows with scale ("up to N orders of magnitude" shape):
    # scanned bytes carry the asymptotic separation; money cost stays
    # decisively in the indexed plan's favour throughout.
    assert rows[-1][2] > rows[0][2]
    assert min(r[4] for r in rows) > 5.0
    # Indexed row reads stay near-constant while input grows 16x.
    assert rows[-1][5] < rows[0][5] * 8
    benchmark.extra_info["bytes_ratio_at_largest"] = rows[-1][2]
