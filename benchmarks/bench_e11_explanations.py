"""E11 — query-answer explanations (RT4.2, [24]).

"We need systems that offer rich, compact, and accurate explanations ...
And, approaches whereby said explanations can be derived themselves
scalably and efficiently."

Measured: (a) the fidelity of piecewise-linear explanations built the
costly way (probing the exact engine) and the SEA way (probing the
agent's models — zero data access); (b) the cost of satisfying an analyst
who wants the answer at P parameter values: issuing P exact queries vs
one explanation.
"""

import numpy as np

from repro.baselines import ExactEngine
from repro.core import AgentConfig, SEAAgent
from repro.explain import ExplanationBuilder
from repro.ml.metrics import r2_score

from conftest import build_world, standard_workload
from harness import format_table, write_result

N_BASE_QUERIES = 12
PROBES = 17


def run_explanations():
    store, table = build_world(n_rows=40_000)
    engine = ExactEngine(store)
    agent = SEAAgent(
        engine, AgentConfig(training_budget=10_000, error_threshold=0.2)
    )
    workload = standard_workload(table, kind="radius", seed=19)
    training = workload.batch(500)
    for query in training:
        agent.submit(query)
    # Probe within the radius range the agent has actually been trained
    # on (0.6x..1.4x of the base radius): explanations interpolate the
    # learned answer surface, they do not extrapolate beyond it.
    builder = ExplanationBuilder(n_probes=PROBES, max_segments=3,
                                 span=(0.6, 1.4))

    engine_fidelity, dataless_fidelity = [], []
    engine_cost, dataless_cost = [], []
    queries_saved = []
    candidates = workload.batch(N_BASE_QUERIES * 4)
    base_queries = []
    for query in candidates:
        # The agent attaches data-less explanations to the answers it
        # serves data-lessly; fallback queries get exact explanations.
        prediction = agent.predictor(query).predict(query.vector())
        if prediction.reliable and prediction.error_estimate <= 0.2:
            base_queries.append(query)
        if len(base_queries) == N_BASE_QUERIES:
            break
    for query in base_queries:
        exact_explanation = builder.from_engine(query, engine)
        predictor = agent.predictor(query)
        dataless_explanation = builder.from_predictor(query, predictor)
        truth = exact_explanation.answers  # exact probe answers
        engine_fidelity.append(exact_explanation.fidelity)
        # Data-less fidelity judged against the *exact* probe answers.
        predicted_curve = dataless_explanation.model.evaluate_many(
            exact_explanation.sweep
        )
        dataless_fidelity.append(r2_score(truth, predicted_curve))
        engine_cost.append(exact_explanation.cost.elapsed_sec)
        dataless_cost.append(dataless_explanation.cost.elapsed_sec)
        queries_saved.append(PROBES - 1)
    rows = [
        [
            "exact-probing",
            float(np.mean(engine_fidelity)),
            float(np.mean(engine_cost)),
            float(np.mean(engine_cost)) / PROBES,
        ],
        [
            "dataless (SEA)",
            float(np.mean(dataless_fidelity)),
            float(np.mean(dataless_cost)),
            float(np.mean(dataless_cost)) / PROBES,
        ],
    ]
    return rows, int(np.mean(queries_saved))


def test_e11_explanations(benchmark):
    rows, saved = benchmark.pedantic(run_explanations, rounds=1, iterations=1)
    headers = ["builder", "mean_fidelity_r2", "build_sec", "sec_per_answered_value"]
    table = format_table(
        f"E11: explanations (each replaces ~{saved} exploratory queries)",
        headers,
        rows,
    )
    write_result("e11_explanations", table, headers=headers, rows=rows)
    exact_row, dataless_row = rows
    assert exact_row[1] > 0.9  # piecewise-linear models explain the curve
    assert dataless_row[1] > 0.6  # model-built explanations track the truth
    assert dataless_row[2] < exact_row[2] / 100  # and cost ~nothing
    benchmark.extra_info["dataless_fidelity"] = dataless_row[1]
