"""E4 — SEA vs the state of the art the paper criticises (Sec. II).

One workload, four systems:

* exact BDAS scan (Fig. 1),
* BlinkDB-like stratified sampling [17],
* Data-Canopy-like segment cache [20],
* DBL-like learner on the AQP engine [19],
* the SEA agent (P2).

Reported per system: median relative error on *unseen* queries, per-query
cost, and auxiliary state footprint — reproducing the paper's criticisms
(sample/cache state grows large; caches only help seen queries; DBL
inherits the AQP error and stores every past query) against SEA's bounded
model state.
"""

import numpy as np

from repro.baselines import DBLEngine, ExactEngine, SamplingAQPEngine, SegmentStatsCache
from repro.core import AgentConfig, SEAAgent

from conftest import build_world, standard_workload
from harness import format_table, write_result

N_TRAIN = 500
N_EVAL = 150


def relative_errors(answers, truths):
    out = []
    for answer, truth in zip(answers, truths):
        out.append(abs(answer - truth) / max(abs(truth), 1.0))
    return float(np.median(out))


def run_baselines():
    store, table = build_world(n_rows=50_000)
    workload = standard_workload(table, seed=13)
    train = workload.batch(N_TRAIN)
    evaluation = workload.batch(N_EVAL)
    truths = [q.evaluate(table) for q in evaluation]
    table_bytes = store.table("data").n_bytes
    rows = []

    # Exact BDAS.
    exact = ExactEngine(store)
    answers, costs = [], []
    for query in evaluation:
        answer, report = exact.execute(query)
        answers.append(answer)
        costs.append(report.elapsed_sec)
    rows.append(["exact", 0.0, float(np.mean(costs)), 0])

    # BlinkDB-like sampling.
    sampler = SamplingAQPEngine(store, sample_rate=0.05, seed=0)
    sampler.build_sample("data", ["x0", "x1"])
    answers, costs = [], []
    for query in evaluation:
        answer, report = sampler.execute(query)
        answers.append(answer)
        costs.append(report.elapsed_sec)
    rows.append(
        [
            "blinkdb-like",
            relative_errors(answers, truths),
            float(np.mean(costs)),
            sampler.sample_bytes("data"),
        ]
    )

    # Data-Canopy-like cache: warm it with the training workload first.
    cache = SegmentStatsCache(store, "data", ("x0", "x1"), cells_per_dim=24)
    for query in train:
        cache.execute(query)
    answers, costs = [], []
    for query in evaluation:
        answer, report = cache.execute(query)
        answers.append(answer)
        costs.append(report.elapsed_sec)
    rows.append(
        [
            "canopy-like",
            relative_errors(answers, truths),
            float(np.mean(costs)),
            cache.state_bytes(),
        ]
    )

    # DBL-like learner over a smaller sample.
    aqp = SamplingAQPEngine(store, sample_rate=0.02, seed=1)
    aqp.build_sample("data", ["x0", "x1"])
    dbl = DBLEngine(aqp, min_training=30)
    for query in train:
        dbl.learn(query, exact.ground_truth(query))
    answers, costs = [], []
    for query in evaluation:
        answer, report = dbl.execute(query)
        answers.append(answer)
        costs.append(report.elapsed_sec)
    rows.append(
        ["dbl-like", relative_errors(answers, truths), float(np.mean(costs)),
         dbl.state_bytes()]
    )

    # SEA agent.
    agent = SEAAgent(
        ExactEngine(store), AgentConfig(training_budget=N_TRAIN, error_threshold=0.2)
    )
    for query in train:
        agent.submit(query)
    answers, costs = [], []
    for query, truth in zip(evaluation, truths):
        record = agent.submit(query)
        answers.append(float(np.atleast_1d(record.answer)[0]))
        costs.append(record.cost.elapsed_sec)
    rows.append(
        ["sea-agent", relative_errors(answers, truths), float(np.mean(costs)),
         agent.state_bytes()]
    )
    return rows, table_bytes


def test_e04_baseline_comparison(benchmark):
    rows, table_bytes = benchmark.pedantic(run_baselines, rounds=1, iterations=1)
    headers = ["system", "median_rel_err", "mean_sec_per_query", "state_bytes"]
    formatted = format_table(
        f"E4: baselines on unseen queries (base table = {table_bytes} bytes)",
        headers,
        rows,
    )
    write_result("e04_baselines", formatted, headers=headers, rows=rows)
    by_name = {r[0]: r for r in rows}
    # SEA's learned state is far smaller than the sample the AQP engine keeps.
    assert by_name["sea-agent"][3] < by_name["blinkdb-like"][3]
    # SEA is cheaper per query than the exact engine.
    assert by_name["sea-agent"][2] < by_name["exact"][2]
    # SEA's error on unseen queries beats the coarse sampler's.
    assert by_name["sea-agent"][1] <= by_name["blinkdb-like"][1] * 1.5
    benchmark.extra_info["sea_state_bytes"] = by_name["sea-agent"][3]
