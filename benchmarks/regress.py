"""Benchmark regression sentinel over the repo-root BENCH_*.json files.

Every benchmark appends its measurements to a cumulative trajectory file
(``{"entries": [...]}``; see :func:`harness.record_cumulative_benchmark`).
This sentinel diffs the **newest** entry of each trajectory group against
the group's **prior history** and exits nonzero when a headline metric
regressed beyond tolerance — the cheap tripwire that keeps a perf loss
from landing silently in a committed trajectory.

Grouping: entries only compare like with like — same experiment and the
same scale knobs (rows, partitions, ...), so a reduced-scale CI smoke run
forms its own trajectory and never diffs against a full local run.

Baseline and tolerance: the baseline is the **median** of the prior
entries' headline values (robust to one lucky or unlucky historical
run), and the allowed delta is::

    allowed = max(rel_tolerance * |baseline|,
                  iqr_scale * max(prior IQR, newest entry's own IQR))

The relative term absorbs ambient machine noise; the IQR terms widen the
band for metrics whose history (or whose own repeated trials — the
recorders store median + IQR for exactly this reason) was noisy.  Groups
with fewer than ``min_prior`` prior entries are skipped: one data point
is not a trend.

Usage::

    python benchmarks/regress.py            # check repo-root BENCH files
    python benchmarks/regress.py --root DIR --tolerance 0.10 --iqr-scale 1.5
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: One headline measurement: (metric name, value, direction, own-iqr).
#: ``direction`` is "higher" (bigger is better) or "lower".
Headline = Tuple[str, float, str, float]

DEFAULT_REL_TOLERANCE = 0.10
DEFAULT_IQR_SCALE = 1.5
DEFAULT_MIN_PRIOR = 2


def _quartiles(values: Sequence[float]) -> Tuple[float, float, float]:
    """(q25, median, q75) with linear interpolation (matches trial_stats)."""
    ordered = sorted(float(v) for v in values)
    n = len(ordered)

    def quantile(q: float) -> float:
        if n == 1:
            return ordered[0]
        pos = q * (n - 1)
        lo = int(pos)
        hi = min(lo + 1, n - 1)
        frac = pos - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    return quantile(0.25), quantile(0.5), quantile(0.75)


def _median(values: Sequence[float]) -> float:
    return _quartiles(values)[1]


# Per-file headline extractors -----------------------------------------------
def _serving_headlines(entry: Dict[str, Any]) -> List[Headline]:
    out: List[Headline] = []
    for metric in ("batched_qps", "sequential_qps"):
        value = entry.get(metric)
        if isinstance(value, (int, float)):
            iqr = entry.get(f"{metric}_iqr")
            out.append(
                (
                    metric,
                    float(value),
                    "higher",
                    float(iqr) if isinstance(iqr, (int, float)) else 0.0,
                )
            )
    return out


def _serving_group(entry: Dict[str, Any]) -> Tuple:
    return (entry.get("experiment"), entry.get("rows"), entry.get("queries"))


def _pruning_headlines(entry: Dict[str, Any]) -> List[Headline]:
    sweep = entry.get("sweep") or []
    ratios = [
        row["bytes_ratio"]
        for row in sweep
        if isinstance(row, dict) and isinstance(row.get("bytes_ratio"), (int, float))
    ]
    if not ratios:
        return []
    return [("bytes_ratio_median", _median(ratios), "higher", 0.0)]


def _pruning_group(entry: Dict[str, Any]) -> Tuple:
    return (
        entry.get("experiment"),
        entry.get("n_rows"),
        entry.get("partitions"),
        entry.get("value_bytes"),
    )


def _faults_headlines(entry: Dict[str, Any]) -> List[Headline]:
    scenarios = entry.get("scenarios") or []
    values = [
        row["agent_availability"]
        for row in scenarios
        if isinstance(row, dict)
        and isinstance(row.get("agent_availability"), (int, float))
    ]
    if not values:
        return []
    return [("agent_availability_min", min(float(v) for v in values), "higher", 0.0)]


def _faults_group(entry: Dict[str, Any]) -> Tuple:
    return (
        entry.get("experiment"),
        entry.get("n_rows"),
        entry.get("n_nodes"),
        entry.get("n_queries"),
    )


def _parallel_headlines(entry: Dict[str, Any]) -> List[Headline]:
    for row in entry.get("sweep") or []:
        if isinstance(row, dict) and row.get("workers") == 1:
            value = row.get("wall_sec_median")
            if isinstance(value, (int, float)):
                iqr = row.get("wall_sec_iqr")
                return [
                    (
                        "serial_wall_sec_median",
                        float(value),
                        "lower",
                        float(iqr) if isinstance(iqr, (int, float)) else 0.0,
                    )
                ]
    return []


def _parallel_group(entry: Dict[str, Any]) -> Tuple:
    # Keyed by executor flavour and recording host's core count: a
    # thread-pool run on a 1-CPU CI box and a process-pool run on a
    # 16-core workstation are different trajectories, not a regression.
    return (
        entry.get("experiment"),
        entry.get("n_rows"),
        entry.get("partitions"),
        entry.get("executor", "thread"),
        entry.get("host_cpus"),
    )


def _procpool_headlines(entry: Dict[str, Any]) -> List[Headline]:
    out: List[Headline] = []
    for row in entry.get("sweep") or []:
        if not isinstance(row, dict):
            continue
        value = row.get("wall_sec_median")
        if not isinstance(value, (int, float)):
            continue
        iqr = row.get("wall_sec_iqr")
        label = f"{row.get('executor', 'thread')}_w{row.get('workers')}_wall_sec"
        out.append(
            (
                label,
                float(value),
                "lower",
                float(iqr) if isinstance(iqr, (int, float)) else 0.0,
            )
        )
    publish = entry.get("publish_mb_per_sec")
    if isinstance(publish, (int, float)):
        out.append(("publish_mb_per_sec", float(publish), "higher", 0.0))
    return out


def _procpool_group(entry: Dict[str, Any]) -> Tuple:
    return (
        entry.get("experiment"),
        entry.get("n_rows"),
        entry.get("partitions"),
        entry.get("host_cpus"),
    )


def _obs_headlines(entry: Dict[str, Any]) -> List[Headline]:
    value = entry.get("detached_qps")
    if not isinstance(value, (int, float)):
        return []
    iqr = entry.get("detached_qps_iqr")
    return [
        (
            "detached_qps",
            float(value),
            "higher",
            float(iqr) if isinstance(iqr, (int, float)) else 0.0,
        )
    ]


def _obs_group(entry: Dict[str, Any]) -> Tuple:
    return (entry.get("experiment"), entry.get("rows"), entry.get("queries"))


def _columnar_headlines(entry: Dict[str, Any]) -> List[Headline]:
    out: List[Headline] = []
    sweep = entry.get("sweep") or []
    # Low-selectivity entries only, and only where the row layout read
    # anything at all: at selectivity 1.0 both layouts answer from the
    # synopsis (0 bytes each), which would drag a naive median to zero.
    ratios = [
        row["bytes_ratio"]
        for row in sweep
        if isinstance(row, dict)
        and isinstance(row.get("bytes_ratio"), (int, float))
        and isinstance(row.get("selectivity"), (int, float))
        and row["selectivity"] <= 0.10
        and row.get("row_bytes", 0) > 0
    ]
    if ratios:
        out.append(("bytes_ratio_low_sel_median", _median(ratios), "higher", 0.0))
    wall = entry.get("col_wall_sec_low_sel")
    if isinstance(wall, (int, float)):
        iqr = entry.get("col_wall_sec_low_sel_iqr")
        out.append(
            (
                "col_wall_sec_low_sel",
                float(wall),
                "lower",
                float(iqr) if isinstance(iqr, (int, float)) else 0.0,
            )
        )
    compression = entry.get("compression_ratio")
    if isinstance(compression, (int, float)):
        out.append(("compression_ratio", float(compression), "higher", 0.0))
    return out


def _columnar_group(entry: Dict[str, Any]) -> Tuple:
    return (
        entry.get("experiment"),
        entry.get("n_rows"),
        entry.get("partitions"),
        entry.get("value_bytes"),
    )


def _ingest_headlines(entry: Dict[str, Any]) -> List[Headline]:
    out: List[Headline] = []
    for row in entry.get("sweep") or []:
        if not isinstance(row, dict):
            continue
        value = row.get("write_rows_per_sec")
        if not isinstance(value, (int, float)):
            continue
        iqr = row.get("write_rows_per_sec_iqr")
        label = f"write_rows_per_sec_e{row.get('epoch_seconds')}"
        out.append(
            (
                label,
                float(value),
                "higher",
                float(iqr) if isinstance(iqr, (int, float)) else 0.0,
            )
        )
    return out


def _ingest_group(entry: Dict[str, Any]) -> Tuple:
    # Keyed by every scale knob plus host core count: a reduced-scale CI
    # smoke run forms its own trajectory and never diffs a full run.
    return (
        entry.get("experiment"),
        entry.get("n_rows"),
        entry.get("partitions"),
        entry.get("epochs"),
        entry.get("batch_rows"),
        entry.get("reads_per_epoch"),
        entry.get("host_cpus"),
    )


def _gateway_headlines(entry: Dict[str, Any]) -> List[Headline]:
    out: List[Headline] = []
    goodput = entry.get("high_rate_goodput_qps")
    if isinstance(goodput, (int, float)):
        iqr = entry.get("high_rate_goodput_iqr")
        out.append(
            (
                "high_rate_goodput_qps",
                float(goodput),
                "higher",
                float(iqr) if isinstance(iqr, (int, float)) else 0.0,
            )
        )
    ratio = entry.get("passthrough_p50_ratio")
    if isinstance(ratio, (int, float)):
        out.append(("passthrough_p50_ratio", float(ratio), "lower", 0.0))
    return out


def _gateway_group(entry: Dict[str, Any]) -> Tuple:
    # Open-loop rates are calibrated to the recording host's direct
    # throughput, so the trajectory is keyed by scale and core count: a
    # reduced-scale CI smoke run never diffs against a full local run.
    return (
        entry.get("experiment"),
        entry.get("rows"),
        entry.get("requests"),
        entry.get("tenants"),
        entry.get("host_cpus"),
    )


#: filename -> (group key fn, headline extractor).
REGISTRY = {
    "BENCH_serving.json": (_serving_group, _serving_headlines),
    "BENCH_pruning.json": (_pruning_group, _pruning_headlines),
    "BENCH_faults.json": (_faults_group, _faults_headlines),
    "BENCH_parallel.json": (_parallel_group, _parallel_headlines),
    "BENCH_obs.json": (_obs_group, _obs_headlines),
    "BENCH_columnar.json": (_columnar_group, _columnar_headlines),
    "BENCH_procpool.json": (_procpool_group, _procpool_headlines),
    "BENCH_ingest.json": (_ingest_group, _ingest_headlines),
    "BENCH_serving_gateway.json": (_gateway_group, _gateway_headlines),
}


def load_entries(path: str) -> List[Dict[str, Any]]:
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return []
    entries = payload.get("entries") if isinstance(payload, dict) else None
    return [e for e in entries or [] if isinstance(e, dict)]


def check_file(
    path: str,
    rel_tolerance: float = DEFAULT_REL_TOLERANCE,
    iqr_scale: float = DEFAULT_IQR_SCALE,
    min_prior: int = DEFAULT_MIN_PRIOR,
) -> Tuple[List[str], List[str]]:
    """Diff one trajectory file; returns (regressions, checked lines)."""
    name = os.path.basename(path)
    group_fn, headline_fn = REGISTRY[name]
    entries = load_entries(path)
    regressions: List[str] = []
    checked: List[str] = []
    groups: Dict[Tuple, List[Dict[str, Any]]] = {}
    for entry in entries:
        groups.setdefault(group_fn(entry), []).append(entry)
    for key, group in groups.items():
        newest = group[-1]
        prior = group[:-1]
        if len(prior) < min_prior:
            continue
        for metric, value, direction, own_iqr in headline_fn(newest):
            history = [
                (v, h_iqr)
                for p in prior
                for m, v, d, h_iqr in headline_fn(p)
                if m == metric and d == direction
            ]
            if len(history) < min_prior:
                continue
            values = [h[0] for h in history]
            q25, baseline, q75 = _quartiles(values)
            prior_iqr = q75 - q25
            allowed = max(
                rel_tolerance * abs(baseline),
                iqr_scale * max(prior_iqr, own_iqr),
            )
            if direction == "higher":
                regressed = value < baseline - allowed
            else:
                regressed = value > baseline + allowed
            line = (
                f"{name} {key}: {metric}={value:.6g} "
                f"baseline={baseline:.6g} allowed_delta={allowed:.6g} "
                f"n_prior={len(values)}"
            )
            checked.append(line)
            if regressed:
                regressions.append("REGRESSION " + line)
    return regressions, checked


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--root",
        default=os.path.abspath(os.path.join(os.path.dirname(__file__), "..")),
        help="directory holding the BENCH_*.json trajectory files",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_REL_TOLERANCE,
        help="relative headline tolerance (default 0.10 = 10%%)",
    )
    parser.add_argument(
        "--iqr-scale",
        type=float,
        default=DEFAULT_IQR_SCALE,
        help="IQR multiplier widening the tolerance band (default 1.5)",
    )
    parser.add_argument(
        "--min-prior",
        type=int,
        default=DEFAULT_MIN_PRIOR,
        help="prior entries a group needs before it is gated (default 2)",
    )
    args = parser.parse_args(argv)
    all_regressions: List[str] = []
    n_checked = 0
    for name in sorted(REGISTRY):
        path = os.path.join(args.root, name)
        if not os.path.exists(path):
            continue
        regressions, checked = check_file(
            path,
            rel_tolerance=args.tolerance,
            iqr_scale=args.iqr_scale,
            min_prior=args.min_prior,
        )
        n_checked += len(checked)
        for line in checked:
            print("checked:", line)
        all_regressions.extend(regressions)
    if all_regressions:
        print(f"\n{len(all_regressions)} benchmark regression(s):", file=sys.stderr)
        for line in all_regressions:
            print(" ", line, file=sys.stderr)
        return 1
    print(f"\nno regressions across {n_checked} headline comparison(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
