"""E8 — scalable missing-value imputation ([36]).

"Our work on scalable missing value imputation showed big gains in
performance and scalability compared to typical BDAS/MapReduce-style
processing."  Both engines compute identical kNN-mean imputations; the
surgical engine's reads are bounded by the cells the missing rows touch,
while the MapReduce engine scans and shuffles against the whole table —
so its cost grows with table size even at a fixed number of missing rows.
"""

import numpy as np

from repro.bigdataless import DistributedGridIndex, MapReduceImputer, SurgicalKNNImputer
from repro.cluster import ClusterTopology, DistributedStore
from repro.data import gaussian_mixture_table, table_with_missing

from harness import format_table, write_result

SIZES = (5_000, 20_000, 80_000)
MISSING_ROWS = 100


def run_imputation():
    rows = []
    for n_rows in SIZES:
        topo = ClusterTopology.single_datacenter(8)
        store = DistributedStore(topo)
        base = gaussian_mixture_table(
            n_rows, dims=("x0", "x1"), seed=5, name="data", value_bytes=64
        )
        damaged, _ = table_with_missing(
            base, ["value"], MISSING_ROWS / n_rows, seed=6
        )
        store.put_table(damaged, partitions_per_node=2)
        # Cell granularity scales with data so candidate cells stay small.
        cells = max(24, int(np.sqrt(n_rows / 12)))
        index = DistributedGridIndex(store, "data", ("x0", "x1"), cells_per_dim=cells)
        index.build()
        mr_values, mr_report = MapReduceImputer(store, ("x0", "x1"), k=5).impute(
            "data", "value"
        )
        surgical_values, surgical_report = SurgicalKNNImputer(
            store, index, k=5
        ).impute("data", "value")
        assert set(mr_values) == set(surgical_values)
        agreement = max(
            abs(mr_values[key] - surgical_values[key]) for key in mr_values
        )
        assert agreement < 1e-9
        rows.append(
            [
                n_rows,
                len(mr_values),
                mr_report.elapsed_sec / surgical_report.elapsed_sec,
                mr_report.bytes_scanned
                / max(1, surgical_report.bytes_scanned),
                (mr_report.bytes_shipped_lan + 1)
                / (surgical_report.bytes_shipped_lan + 1),
            ]
        )
    return rows


def test_e08_imputation(benchmark):
    rows = benchmark.pedantic(run_imputation, rounds=1, iterations=1)
    headers = ["table_rows", "n_missing", "time_x", "scan_bytes_x", "shuffle_bytes_x"]
    table = format_table(
        "E8: missing-value imputation (MapReduce / surgical ratios)",
        headers,
        rows,
    )
    write_result("e08_imputation", table, headers=headers, rows=rows)
    for row in rows:
        assert row[3] > 1.0, f"surgical must read less: {row}"
    # Fixed missing count, growing table: the gap widens.
    assert rows[-1][3] > rows[0][3]
    benchmark.extra_info["scan_ratio_at_largest"] = rows[-1][3]
