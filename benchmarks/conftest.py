"""Shared fixtures for the experiment benchmarks."""

import sys
import os

sys.path.insert(0, os.path.dirname(__file__))

import pytest

from repro.cluster import ClusterTopology, DistributedStore
from repro.data import gaussian_mixture_table, InterestProfile, WorkloadGenerator
from repro.queries import Count


def build_world(n_rows=50_000, n_nodes=8, seed=1, partitions_per_node=2,
                value_bytes=8):
    """A standard single-datacenter world with one clustered table.

    ``value_bytes`` widens the serialized rows (the cost model's view)
    to emulate realistic analytical records that carry payload columns.
    """
    topo = ClusterTopology.single_datacenter(n_nodes)
    store = DistributedStore(topo)
    table = gaussian_mixture_table(
        n_rows, dims=("x0", "x1"), seed=seed, name="data",
        value_bytes=value_bytes,
    )
    store.put_table(table, partitions_per_node=partitions_per_node)
    return store, table


def standard_workload(table, seed=3, aggregate=None, hotspots=4,
                      hotspot_scale=2.5, extent_range=(3.0, 8.0), kind="range"):
    profile = InterestProfile.from_table(
        table, ("x0", "x1"), hotspots, seed=seed + 1,
        hotspot_scale=hotspot_scale, extent_range=extent_range,
    )
    return WorkloadGenerator(
        "data", ("x0", "x1"), profile,
        aggregate=aggregate or Count(), kind=kind, seed=seed,
    )


@pytest.fixture(scope="module")
def medium_world():
    return build_world(n_rows=50_000)
