"""E17 — zone-map partition pruning: bytes scanned and wall-clock vs selectivity.

The table is clustered (sorted) on ``x0`` before loading, so contiguous
partitions hold contiguous ``x0`` ranges and their synopses are tight —
the regime where zone maps shine.  For each target selectivity a centred
range on ``x0`` runs through two otherwise identical exact engines, one
with pruning on and one with it off, and we record:

* simulated bytes scanned and elapsed time (the metered cluster's view);
* real wall-clock of serving the whole query set (the host's view);
* per-trial answer equality — pruning must be *invisible* in the answers.

Two aggregates cover both pruning modes: ``Sum`` short-circuits fully
covered partitions from synopsis statistics (zero scan bytes), while the
holistic ``Median`` can only *skip* disjoint partitions, showing the
floor that skipping alone buys.

Scale via env vars (reduced in CI): ``E17_ROWS``, ``E17_NODES``,
``E17_PARTS_PER_NODE``, ``E17_REPEATS``.
"""

import os

import numpy as np

from repro.baselines import ExactEngine
from repro.cluster import ClusterTopology, DistributedStore
from repro.data import gaussian_mixture_table
from repro.queries import AnalyticsQuery, Median, RangeSelection, Sum

from harness import (
    format_table,
    record_pruning_benchmark,
    trial_stats,
    wallclock,
    write_result,
)

N_ROWS = int(os.environ.get("E17_ROWS", 60_000))
N_NODES = int(os.environ.get("E17_NODES", 8))
PARTS_PER_NODE = int(os.environ.get("E17_PARTS_PER_NODE", 2))
REPEATS = int(os.environ.get("E17_REPEATS", 3))
VALUE_BYTES = 2048  # realistic wide analytical records
SELECTIVITIES = (0.01, 0.05, 0.10, 0.25, 0.50, 1.00)


def build_clustered_world():
    """Store with one table sorted on ``x0`` (tight per-partition zone maps)."""
    topo = ClusterTopology.single_datacenter(N_NODES)
    store = DistributedStore(topo)
    table = gaussian_mixture_table(
        N_ROWS, dims=("x0", "x1"), seed=7, name="data", value_bytes=VALUE_BYTES
    )
    clustered = table.take(np.argsort(table.column("x0"), kind="stable"))
    store.put_table(clustered, partitions_per_node=PARTS_PER_NODE)
    return store, clustered


def centred_queries(table, fraction):
    """Sum + Median queries over the centred ``fraction`` of ``x0``'s mass."""
    x0 = np.sort(table.column("x0"))
    lo_q, hi_q = (1.0 - fraction) / 2.0, (1.0 + fraction) / 2.0
    lo = float(x0[int(lo_q * (len(x0) - 1))])
    hi = float(x0[int(hi_q * (len(x0) - 1))])
    selection = RangeSelection(("x0",), [lo], [hi])
    return [
        AnalyticsQuery("data", selection, Sum("x1")),
        AnalyticsQuery("data", selection, Median("x1")),
    ]


def run_pruning_sweep():
    store, table = build_clustered_world()
    pruned_engine = ExactEngine(store)
    unpruned_engine = ExactEngine(store, pruning=False)
    rows = []
    sweep = []
    for fraction in SELECTIVITIES:
        queries = centred_queries(table, fraction)
        for query in queries:
            pruned_answer, pruned_report = pruned_engine.execute(query)
            unpruned_answer, unpruned_report = unpruned_engine.execute(query)
            # Pruning must be invisible in the answer — exact comparison.
            assert pruned_answer == unpruned_answer, (
                f"answer drift at selectivity {fraction}: "
                f"{pruned_answer!r} != {unpruned_answer!r}"
            )
            # The batched path must agree with the sequential one too.
            (batched_answer, batched_report), = pruned_engine.execute_many(
                [query]
            )
            assert batched_answer == pruned_answer
            assert batched_report.bytes_scanned == pruned_report.bytes_scanned
            ratio = unpruned_report.bytes_scanned / max(
                1, pruned_report.bytes_scanned
            )
            rows.append(
                [
                    fraction,
                    query.aggregate.name,
                    unpruned_report.bytes_scanned,
                    pruned_report.bytes_scanned,
                    ratio,
                    unpruned_report.elapsed_sec,
                    pruned_report.elapsed_sec,
                ]
            )
            sweep.append(
                {
                    "selectivity": fraction,
                    "aggregate": query.aggregate.name,
                    "unpruned_bytes": unpruned_report.bytes_scanned,
                    "pruned_bytes": pruned_report.bytes_scanned,
                    "bytes_ratio": ratio,
                    "unpruned_sim_sec": unpruned_report.elapsed_sec,
                    "pruned_sim_sec": pruned_report.elapsed_sec,
                }
            )
    # Real wall-clock: serve every sweep query REPEATS times per engine;
    # the median damps host noise and the IQR records the spread.
    # Skipped partitions never compute masks or partials, so the pruned
    # engine does strictly less work.
    wave = [q for f in SELECTIVITIES for q in centred_queries(table, f)]
    low = [q for f in SELECTIVITIES if f <= 0.10 for q in centred_queries(table, f)]
    for engine in (pruned_engine, unpruned_engine):  # warm-up
        for query in low:
            engine.execute(query)
    samples = {
        "pruned_wall_sec_low_sel": [
            wallclock(lambda: [pruned_engine.execute(q) for q in low])[1]
            for _ in range(REPEATS)
        ],
        "unpruned_wall_sec_low_sel": [
            wallclock(lambda: [unpruned_engine.execute(q) for q in low])[1]
            for _ in range(REPEATS)
        ],
        "pruned_wall_sec_batched": [
            wallclock(lambda: pruned_engine.execute_many(wave))[1]
            for _ in range(REPEATS)
        ],
        "unpruned_wall_sec_batched": [
            wallclock(lambda: unpruned_engine.execute_many(wave))[1]
            for _ in range(REPEATS)
        ],
    }
    walls = {}
    for name, trials in samples.items():
        stats = trial_stats(trials)
        walls[name] = stats["median"]
        walls[f"{name}_iqr"] = stats["iqr"]
    return rows, sweep, walls


def test_e17_pruning(benchmark):
    rows, sweep, walls = benchmark.pedantic(
        run_pruning_sweep, rounds=1, iterations=1
    )
    table = format_table(
        "E17: zone-map pruning, bytes scanned & time vs selectivity",
        [
            "selectivity",
            "aggregate",
            "unpruned_bytes",
            "pruned_bytes",
            "ratio",
            "unpruned_sim_s",
            "pruned_sim_s",
        ],
        rows,
    )
    write_result("e17_pruning", table, extra={"sweep": sweep, "walls": walls})
    # Pruned never scans more than unpruned, at any selectivity (CI gate).
    for entry in sweep:
        assert entry["pruned_bytes"] <= entry["unpruned_bytes"], entry
    # At <=10% selectivity the clustered table prunes >=5x the bytes and
    # the simulated elapsed time improves with it.
    for entry in sweep:
        if entry["selectivity"] <= 0.10:
            assert entry["bytes_ratio"] >= 5.0, entry
            assert entry["pruned_sim_sec"] < entry["unpruned_sim_sec"], entry
    # Real wall-clock improves too: the pruned engine does strictly less
    # host work (fewer masks, fewer partials, fewer charges).
    assert walls["pruned_wall_sec_low_sel"] < walls["unpruned_wall_sec_low_sel"]
    record_pruning_benchmark(
        "e17_pruning",
        n_rows=N_ROWS,
        n_nodes=N_NODES,
        partitions=N_NODES * PARTS_PER_NODE,
        value_bytes=VALUE_BYTES,
        sweep=sweep,
        **walls,
    )
    low_sum = [
        e for e in sweep if e["selectivity"] <= 0.10 and e["aggregate"] == "sum(x1)"
    ]
    if low_sum:
        benchmark.extra_info["bytes_ratio_at_10pct"] = low_sum[-1]["bytes_ratio"]
