"""E21 — columnar compressed partitions: bytes scanned and wall-clock vs row layout.

The table is deliberately *unclustered* on the predicate column (a
low-cardinality category drawn uniformly at random), so every partition
spans the full category domain and zone maps cannot skip anything —
the regime where row-major scans have to read every byte.  The columnar
layout wins twice there:

* **column pruning** — a scan reads only the predicate + aggregate
  columns' encoded bytes, not the whole wide record;
* **encoding** — the category column dictionary-encodes to ~1 byte per
  row and the timestamp column run-length-encodes, shrinking even the
  columns that are read.

For each target selectivity a category range runs through two otherwise
identical exact engines over two stores holding the same logical table —
``layout="row"`` vs ``layout="column"`` — and we record simulated bytes
scanned and elapsed time, real wall-clock of serving the low-selectivity
wave, and per-query answer equality (the columnar layout must be
*invisible* in the answers; byte-identical reprs are asserted every run).

Scale via env vars (reduced in CI): ``E21_ROWS``, ``E21_NODES``,
``E21_PARTS_PER_NODE``, ``E21_REPEATS``.
"""

import os

import numpy as np

from repro.baselines import ExactEngine
from repro.cluster import (
    LAYOUT_COLUMN,
    LAYOUT_ROW,
    ClusterTopology,
    DistributedStore,
    columnar_consistent,
)
from repro.data import Table
from repro.queries import AnalyticsQuery, Count, RangeSelection, Sum

from harness import (
    format_table,
    record_columnar_benchmark,
    trial_stats,
    wallclock,
    write_result,
)

N_ROWS = int(os.environ.get("E21_ROWS", 60_000))
N_NODES = int(os.environ.get("E21_NODES", 8))
# Many region-sized partitions per node is the realistic serving-store
# geometry (HBase-style regions); it is also where per-partition work
# dominates, so layout differences show up in host wall-clock clearly.
PARTS_PER_NODE = int(os.environ.get("E21_PARTS_PER_NODE", 8))
REPEATS = int(os.environ.get("E21_REPEATS", 7))
VALUE_BYTES = 1024  # realistic wide analytical records
N_CATEGORIES = 100  # selectivity granularity: cat <= k-1 selects ~k%
SELECTIVITIES = (0.01, 0.05, 0.10, 0.25, 0.50, 1.00)


def build_wide_table():
    """Wide unclustered table: dictionary, RLE and raw columns."""
    rng = np.random.default_rng(21)
    columns = {
        # Uniform unsorted categories: no zone map can prune on this.
        "cat": rng.integers(0, N_CATEGORIES, N_ROWS).astype(float),
        # Arrival-ordered timestamps: long runs, run-length encodes.
        "ts": np.repeat(
            np.arange(max(1, N_ROWS // 32), dtype=float), 32
        )[:N_ROWS],
        "x1": rng.normal(size=N_ROWS),
        "x2": rng.normal(size=N_ROWS),
        "x3": rng.normal(size=N_ROWS),
        "x4": rng.normal(size=N_ROWS),
        "x5": rng.normal(size=N_ROWS),
    }
    if columns["ts"].shape[0] < N_ROWS:
        pad = np.full(N_ROWS - columns["ts"].shape[0], float(N_ROWS // 32))
        columns["ts"] = np.concatenate([columns["ts"], pad])
    return Table(columns, name="data", value_bytes=VALUE_BYTES)


def build_stores():
    table = build_wide_table()
    stores = {}
    for layout in (LAYOUT_ROW, LAYOUT_COLUMN):
        store = DistributedStore(
            ClusterTopology.single_datacenter(N_NODES), layout=layout
        )
        store.put_table(table, partitions_per_node=PARTS_PER_NODE)
        stores[layout] = store
    return stores


def selectivity_queries(fraction):
    """Sum + Count over the lowest ``fraction`` of the category domain.

    The predicate is the classic dashboard shape — a time window plus a
    category filter.  The window covers the whole table so the category
    range alone sets the selectivity, but the engines still have to
    evaluate it: per run on the run-length-encoded ``ts`` column versus
    per row on the row-major float column.
    """
    hi = float(max(0, round(fraction * N_CATEGORIES) - 1))
    selection = RangeSelection(
        ("ts", "cat"), [0.0, 0.0], [float(N_ROWS), hi]
    )
    return [
        AnalyticsQuery("data", selection, Sum("x1")),
        AnalyticsQuery("data", selection, Count()),
    ]


def run_columnar_sweep():
    stores = build_stores()
    row_engine = ExactEngine(stores[LAYOUT_ROW])
    col_engine = ExactEngine(stores[LAYOUT_COLUMN])
    row_stored = stores[LAYOUT_ROW].table("data")
    col_stored = stores[LAYOUT_COLUMN].table("data")
    assert columnar_consistent(
        [p.columnar for p in col_stored.partitions],
        [p.data for p in col_stored.partitions],
    )
    rows = []
    sweep = []
    for fraction in SELECTIVITIES:
        for query in selectivity_queries(fraction):
            row_answer, row_report = row_engine.execute(query)
            col_answer, col_report = col_engine.execute(query)
            # The layout must be invisible in the answer — byte identity.
            assert repr(row_answer) == repr(col_answer), (
                f"answer drift at selectivity {fraction}: "
                f"{row_answer!r} != {col_answer!r}"
            )
            # The batched path must agree with the sequential one too.
            (batched_answer, batched_report), = col_engine.execute_many(
                [query]
            )
            assert repr(batched_answer) == repr(col_answer)
            assert batched_report.bytes_scanned == col_report.bytes_scanned
            ratio = row_report.bytes_scanned / max(1, col_report.bytes_scanned)
            rows.append(
                [
                    fraction,
                    query.aggregate.name,
                    row_report.bytes_scanned,
                    col_report.bytes_scanned,
                    ratio,
                    row_report.elapsed_sec,
                    col_report.elapsed_sec,
                ]
            )
            sweep.append(
                {
                    "selectivity": fraction,
                    "aggregate": query.aggregate.name,
                    "row_bytes": row_report.bytes_scanned,
                    "col_bytes": col_report.bytes_scanned,
                    "bytes_ratio": ratio,
                    "row_sim_sec": row_report.elapsed_sec,
                    "col_sim_sec": col_report.elapsed_sec,
                }
            )
    # Real wall-clock: serve the low-selectivity wave REPEATS times per
    # engine; the median damps host noise and the IQR records the spread.
    low = [
        q
        for f in SELECTIVITIES
        if f <= 0.10
        for q in selectivity_queries(f)
    ]
    wave = low * 10
    for engine in (row_engine, col_engine):  # warm-up
        engine.execute_many(wave)
    # Interleave the trials (row, col, row, col, ...) so slow host
    # drift — another process, thermal throttling — lands on both
    # engines equally instead of biasing whichever ran last.
    samples = {"row_wall_sec_low_sel": [], "col_wall_sec_low_sel": []}
    for _ in range(REPEATS):
        samples["row_wall_sec_low_sel"].append(
            wallclock(lambda: row_engine.execute_many(wave))[1]
        )
        samples["col_wall_sec_low_sel"].append(
            wallclock(lambda: col_engine.execute_many(wave))[1]
        )
    walls = {}
    for name, trials in samples.items():
        stats = trial_stats(trials)
        walls[name] = stats["median"]
        walls[f"{name}_iqr"] = stats["iqr"]
        # Best-of-trials approximates the unloaded cost: host noise only
        # ever inflates a trial, so min-vs-min is the robust comparison
        # (the median still tracks the perf trajectory across commits).
        walls[f"{name}_min"] = stats["min"]
    storage = {
        "row_stored_bytes": row_stored.stored_bytes,
        "col_stored_bytes": col_stored.stored_bytes,
        "compression_ratio": row_stored.stored_bytes
        / max(1, col_stored.stored_bytes),
    }
    return rows, sweep, walls, storage


def test_e21_columnar(benchmark):
    rows, sweep, walls, storage = benchmark.pedantic(
        run_columnar_sweep, rounds=1, iterations=1
    )
    table = format_table(
        "E21: columnar layout, bytes scanned & time vs selectivity",
        [
            "selectivity",
            "aggregate",
            "row_bytes",
            "col_bytes",
            "ratio",
            "row_sim_s",
            "col_sim_s",
        ],
        rows,
    )
    write_result(
        "e21_columnar",
        table,
        extra={"sweep": sweep, "walls": walls, "storage": storage},
    )
    # Columnar never scans more than row-major, at any selectivity.
    for entry in sweep:
        assert entry["col_bytes"] <= entry["row_bytes"], entry
    # At <=10% selectivity the encoded column scan reads >=3x fewer
    # bytes and the simulated elapsed time improves with it (CI gate).
    for entry in sweep:
        if entry["selectivity"] <= 0.10:
            assert entry["bytes_ratio"] >= 3.0, entry
            assert entry["col_sim_sec"] < entry["row_sim_sec"], entry
    # Real wall-clock improves too: encoded-domain predicates and late
    # materialization do strictly less host work per low-sel query.
    # Compared on best-of-trials — noise only inflates a trial, so the
    # mins are the two costs with the least host interference in them.
    assert (
        walls["col_wall_sec_low_sel_min"] < walls["row_wall_sec_low_sel_min"]
    ), walls
    # Encoding must shrink the stored footprint as well.
    assert storage["compression_ratio"] > 1.0, storage
    record_columnar_benchmark(
        "e21_columnar",
        n_rows=N_ROWS,
        n_nodes=N_NODES,
        partitions=N_NODES * PARTS_PER_NODE,
        value_bytes=VALUE_BYTES,
        sweep=sweep,
        **walls,
        **storage,
    )
    low_sum = [
        e for e in sweep if e["selectivity"] <= 0.10 and e["aggregate"] == "sum(x1)"
    ]
    if low_sum:
        benchmark.extra_info["bytes_ratio_at_10pct"] = low_sum[-1]["bytes_ratio"]
