"""E12 — geo-distributed SEA (RT5, Fig. 3): WAN traffic and latency.

Three deployments of the same multi-edge workload:

* ``centralized``  — every edge query crosses the WAN to a core (the
  pre-SEA world the Iridium line of work [45] fights);
* ``edge-isolated`` — each edge trains its own models from its own
  traffic (Fig. 3 without collaboration);
* ``edge-collab``  — cores pool all edges' training queries, build shared
  models and push them down (RT5.2).

Reported per deployment: WAN bytes, mean response time, and the fraction
of queries answered without leaving the edge.
"""

import numpy as np

from repro.baselines import ExactEngine
from repro.core import AgentConfig
from repro.data import InterestProfile, WorkloadGenerator, gaussian_mixture_table
from repro.geo import CoreCoordinator, EdgeAgent, GeoRouter, GeoSites
from repro.queries import Count

from harness import format_table, write_result

N_EDGES = 6
TRAIN_PER_EDGE = 60
SERVE_PER_EDGE = 120


def build_geo():
    sites = GeoSites(n_cores=2, nodes_per_core=3, n_edges=N_EDGES)
    table = gaussian_mixture_table(
        30_000, dims=("x0", "x1"), seed=21, name="data", value_bytes=64
    )
    sites.put_table(table, partitions_per_node=1)
    engine = ExactEngine(sites.store)
    profile = InterestProfile.from_table(
        table, ("x0", "x1"), 3, seed=22, hotspot_scale=2.5, extent_range=(3, 8)
    )
    generators = [
        WorkloadGenerator("data", ("x0", "x1"), profile, aggregate=Count(),
                          seed=30 + i)
        for i in range(N_EDGES)
    ]
    return sites, engine, generators


def config():
    return AgentConfig(training_budget=0, error_threshold=0.2)


def measure(served_records):
    wan = sum(r.cost.bytes_shipped_wan for r in served_records)
    latency = float(np.mean([r.cost.elapsed_sec for r in served_records]))
    local = sum(1 for r in served_records if r.origin == "local")
    return wan, latency, local / len(served_records)


def run_geo():
    rows = []

    # Centralized: no edge intelligence at all.
    sites, engine, generators = build_geo()
    edges = [
        EdgeAgent(n, sites.edge_node(n), engine, sites.core_gateway(),
                  AgentConfig(training_budget=10**9))  # never serves locally
        for n in sites.edge_names
    ]
    records = []
    for _ in range(TRAIN_PER_EDGE + SERVE_PER_EDGE):
        for edge, wg in zip(edges, generators):
            records.append(edge.submit(wg.next_query()))
    wan, latency, local = measure(records[-SERVE_PER_EDGE * N_EDGES:])
    rows.append(["centralized", wan, latency, local, 0])

    # Edge-isolated: each edge learns alone from its own fallbacks.
    sites, engine, generators = build_geo()
    edges = [
        EdgeAgent(n, sites.edge_node(n), engine, sites.core_gateway(), config())
        for n in sites.edge_names
    ]
    records = []
    for _ in range(TRAIN_PER_EDGE):
        for edge, wg in zip(edges, generators):
            edge.submit(wg.next_query())
    for _ in range(SERVE_PER_EDGE):
        for edge, wg in zip(edges, generators):
            records.append(edge.submit(wg.next_query()))
    wan, latency, local = measure(records)
    state = sum(e.state_bytes() for e in edges)
    rows.append(["edge-isolated", wan, latency, local, state])

    # Edge-collaborative: cores pool training, push shared models.
    sites, engine, generators = build_geo()
    edges = [
        EdgeAgent(n, sites.edge_node(n), engine, sites.core_gateway(), config())
        for n in sites.edge_names
    ]
    core = CoreCoordinator(engine, sites.core_gateway(), config())
    for _ in range(TRAIN_PER_EDGE):
        for edge, wg in zip(edges, generators):
            core.train_from_edge(edge.name, wg.next_query())
    push_report = core.push_models(edges)
    router = GeoRouter(edges, core)
    records = []
    for _ in range(SERVE_PER_EDGE):
        for edge, wg in zip(edges, generators):
            records.append(router.submit(edge.name, wg.next_query()))
    wan, latency, local = measure(records)
    wan += push_report.bytes_shipped_wan  # model push is WAN traffic too
    state = sum(e.state_bytes() for e in edges)
    rows.append(["edge-collab", wan, latency, local, state])
    return rows


def test_e12_geo_distributed(benchmark):
    rows = benchmark.pedantic(run_geo, rounds=1, iterations=1)
    headers = ["deployment", "wan_bytes", "mean_latency_sec", "local_fraction",
               "edge_state_bytes"]
    table = format_table(
        "E12: geo-distributed serving (per-deployment totals over "
        f"{SERVE_PER_EDGE * N_EDGES} served queries)",
        headers,
        rows,
    )
    write_result("e12_geo", table, headers=headers, rows=rows)
    by_name = {r[0]: r for r in rows}
    # Any edge intelligence beats centralized on WAN bytes and latency.
    assert by_name["edge-isolated"][1] < by_name["centralized"][1]
    assert by_name["edge-collab"][1] < by_name["centralized"][1]
    assert by_name["edge-collab"][2] < by_name["centralized"][2]
    # Collaboration serves at least as locally as isolation.
    assert by_name["edge-collab"][3] >= by_name["edge-isolated"][3] * 0.9
    benchmark.extra_info["wan_reduction_vs_centralized"] = (
        by_name["centralized"][1] / max(1, by_name["edge-collab"][1])
    )
