"""E16 — spatial joins and kNN variants (RT2.1, extension).

"kNN query processing (and its variants, such as Reverse kNN, kNN joins,
all-pair and approximate kNN, etc.), spatial analytics operations (such
as Spatial Joins ...)".

Measured on a clustered S table with localized probe sets: scanned-byte
and time ratios of the surgical (grid-index) operators over the
MapReduce-style baselines, plus the approximate-kNN round savings.
"""

import numpy as np

from repro.bigdataless import (
    ApproximateKNN,
    CoordinatorKNN,
    DistanceJoinBaseline,
    DistributedGridIndex,
    IndexedDistanceJoin,
    IndexedKNNJoin,
    KNNJoinBaseline,
)
from repro.cluster import ClusterTopology, DistributedStore
from repro.data import Table, gaussian_mixture_table

from harness import format_table, write_result


def build():
    topo = ClusterTopology.single_datacenter(8)
    store = DistributedStore(topo)
    s_table = gaussian_mixture_table(
        40_000, dims=("x0", "x1"), seed=61, name="S", value_bytes=64
    )
    store.put_table(s_table, partitions_per_node=2)
    rng = np.random.default_rng(62)
    anchor = s_table.matrix(("x0", "x1"))[rng.integers(40_000)]
    r_table = Table(
        {
            "x0": rng.normal(anchor[0], 3.0, size=60),
            "x1": rng.normal(anchor[1], 3.0, size=60),
        },
        name="R",
    )
    store.put_table(r_table, partitions_per_node=1)
    index = DistributedGridIndex(store, "S", ("x0", "x1"), cells_per_dim=40)
    index.build()
    return store, s_table, r_table, index, anchor


def run_spatial():
    store, s_table, r_table, index, anchor = build()
    rows = []

    knn_base, base_report = KNNJoinBaseline(store, ("x0", "x1")).query("R", "S", 5)
    knn_idx, idx_report = IndexedKNNJoin(store, index).query("R", "S", 5)
    assert knn_base == knn_idx
    rows.append(
        [
            "knn-join (k=5, 60 probes)",
            base_report.elapsed_sec / idx_report.elapsed_sec,
            base_report.bytes_scanned / max(1, idx_report.bytes_scanned),
        ]
    )

    dist_base, base_report = DistanceJoinBaseline(store, ("x0", "x1")).query(
        "R", "S", 1.5
    )
    dist_idx, idx_report = IndexedDistanceJoin(store, index).query("R", "S", 1.5)
    assert dist_base == dist_idx
    rows.append(
        [
            "distance-join (eps=1.5)",
            base_report.elapsed_sec / idx_report.elapsed_sec,
            base_report.bytes_scanned / max(1, idx_report.bytes_scanned),
        ]
    )

    # Approximate kNN vs exact coordinator kNN in a sparse corner.
    sparse = np.array([2.0, 2.0])
    _, _, approx_report = ApproximateKNN(store, index).query("S", sparse, 10)
    _, exact_report = CoordinatorKNN(store, index).query("S", sparse, 10)
    rows.append(
        [
            "approx-knn vs exact (sparse corner)",
            exact_report.elapsed_sec / max(1e-12, approx_report.elapsed_sec),
            exact_report.bytes_scanned / max(1, approx_report.bytes_scanned),
        ]
    )
    return rows


def test_e16_spatial(benchmark):
    rows = benchmark.pedantic(run_spatial, rounds=1, iterations=1)
    headers = ["operator", "time_x", "scan_bytes_x"]
    table = format_table(
        "E16: spatial joins and kNN variants (baseline / surgical ratios)",
        headers,
        rows,
    )
    write_result("e16_spatial", table, headers=headers, rows=rows)
    by_name = {r[0]: r for r in rows}
    assert by_name["knn-join (k=5, 60 probes)"][2] > 3.0
    assert by_name["distance-join (eps=1.5)"][2] > 3.0
    assert by_name["approx-knn vs exact (sparse corner)"][1] >= 1.0
    benchmark.extra_info["knn_join_scan_ratio"] = rows[0][2]
