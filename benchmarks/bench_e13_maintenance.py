"""E13 — model maintenance under drift and data updates (RT1.4).

Part A (query-pattern drift): the analyst interest profile shifts
abruptly halfway through the stream.  With drift detection on, flagged
quanta retrain and served accuracy recovers; with it off, the agent keeps
serving from stale models.

Part B (base-data updates): a batch of inserts lands inside the queried
region.  An agent notified via ``notify_data_update`` invalidates the
overlapping quanta and re-learns; an un-notified agent keeps serving
pre-update answers.
"""

import numpy as np

from repro.baselines import ExactEngine
from repro.core import AgentConfig, SEAAgent
from repro.data import (
    InterestProfile,
    WorkloadGenerator,
    gaussian_mixture_table,
)
from repro.queries import Count

from conftest import build_world, standard_workload
from harness import format_table, write_result

PHASE = 400


def served_error(agent, table, records):
    errors = []
    for record in records:
        if record.mode == "predicted":
            truth = record.query.evaluate(table)
            errors.append(
                abs(record.answer - truth) / max(abs(truth), 1.0)
            )
    return float(np.median(errors)) if errors else float("nan"), len(errors)


def run_drift(drift_detection):
    store, table = build_world(n_rows=40_000)
    agent = SEAAgent(
        ExactEngine(store),
        AgentConfig(
            training_budget=PHASE // 2,
            error_threshold=0.25,
            drift_detection=drift_detection,
        ),
    )
    profile = InterestProfile.from_table(
        table, ("x0", "x1"), 3, seed=41, hotspot_scale=2.5, extent_range=(3, 8)
    )
    workload = WorkloadGenerator(
        "data", ("x0", "x1"), profile, aggregate=Count(), seed=42
    )
    before = [agent.submit(q) for q in workload.batch(PHASE)]
    # Interest shifts: hotspots jump to entirely new data regions.
    drifted = workload.with_profile(
        InterestProfile.from_table(
            table, ("x0", "x1"), 3, seed=43, hotspot_scale=2.5,
            extent_range=(3, 8),
        )
    )
    after = [agent.submit(q) for q in drifted.batch(PHASE)]
    err_before, n_before = served_error(agent, table, before)
    err_after, n_after = served_error(agent, table, after)
    return err_before, err_after, n_after


def run_updates(notify):
    store, table = build_world(n_rows=40_000, seed=44)
    # Drift detection off: isolate the explicit update-notification path
    # (with it on, prequential residual spikes self-heal stale quanta too).
    agent = SEAAgent(
        ExactEngine(store),
        AgentConfig(
            training_budget=300, error_threshold=0.35, drift_detection=False
        ),
    )
    workload = standard_workload(table, seed=45)
    for query in workload.batch(800):
        agent.submit(query)
    # Insert a dense blob of new rows right inside the hottest region.
    hot = workload.profile.hotspots[0]
    rng = np.random.default_rng(46)
    from repro.data import Table

    blob = Table(
        {
            "x0": rng.normal(hot[0], 2.0, size=8000),
            "x1": rng.normal(hot[1], 2.0, size=8000),
            "value": rng.normal(size=8000),
        },
        name="data",
    )
    store.append_rows("data", blob)
    updated_table = store.table("data").full_table()
    if notify:
        agent.notify_data_update(
            "data", hot - 8.0, hot + 8.0
        )
    records = [agent.submit(q) for q in workload.batch(600)]
    # Measure where the update actually landed: queries whose subspace
    # overlaps the inserted blob (elsewhere both agents are equally fine).
    affected = [
        r
        for r in records
        if np.linalg.norm(r.query.selection.center - hot) < 8.0
    ]
    err, n_served = served_error(agent, updated_table, affected)
    return err, n_served


def run_maintenance():
    drift_on = run_drift(drift_detection=True)
    drift_off = run_drift(drift_detection=False)
    updates_on = run_updates(notify=True)
    updates_off = run_updates(notify=False)
    rows = [
        ["drift", "detector on", drift_on[0], drift_on[1], drift_on[2]],
        ["drift", "detector off", drift_off[0], drift_off[1], drift_off[2]],
        ["data-update", "notified", None, updates_on[0], updates_on[1]],
        ["data-update", "not notified", None, updates_off[0], updates_off[1]],
    ]
    return rows


def test_e13_maintenance(benchmark):
    rows = benchmark.pedantic(run_maintenance, rounds=1, iterations=1)
    headers = ["scenario", "mechanism", "err_before", "err_after", "n_served_after"]
    table = format_table(
        "E13: served-query error around drift / data updates",
        headers,
        rows,
    )
    write_result("e13_maintenance", table, headers=headers, rows=rows)
    by_key = {(r[0], r[1]): r for r in rows}
    # Notified agent ends up more accurate after the insert burst.
    notified = by_key[("data-update", "notified")][3]
    stale = by_key[("data-update", "not notified")][3]
    assert notified < stale / 2  # invalidation clearly beats stale serving
    # Drift detection must not be *worse* than ignoring drift, and the
    # post-drift error with detection stays bounded.
    on_after = by_key[("drift", "detector on")][3]
    off_after = by_key[("drift", "detector off")][3]
    if np.isfinite(on_after) and np.isfinite(off_after):
        assert on_after <= off_after * 1.5
    benchmark.extra_info["stale_vs_notified_err"] = (stale, notified)
