"""Shared helpers for the experiment benchmarks.

Every experiment module (bench_eNN_*.py) runs under
``pytest benchmarks/ --benchmark-only``.  Besides the pytest-benchmark
timing table, each experiment writes its result table — the rows the
paper-style figures would plot — to ``benchmarks/results/<name>.txt`` and
attaches headline numbers to ``benchmark.extra_info`` so they appear in
the benchmark JSON.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def format_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines) + "\n"


def write_result(name: str, table: str) -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(table)
    print("\n" + table)
    return path


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.3f}"
    return str(cell)
