"""Shared helpers for the experiment benchmarks.

Every experiment module (bench_eNN_*.py) runs under
``pytest benchmarks/ --benchmark-only``.  Besides the pytest-benchmark
timing table, each experiment writes its result table — the rows the
paper-style figures would plot — to ``benchmarks/results/<name>.txt``,
a machine-readable twin to ``benchmarks/results/<name>.json`` (so perf
trajectories can be assembled without re-parsing aligned-text tables),
and attaches headline numbers to ``benchmark.extra_info`` so they appear
in the benchmark JSON.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
BENCH_SERVING_PATH = os.path.join(REPO_ROOT, "BENCH_serving.json")
BENCH_PRUNING_PATH = os.path.join(REPO_ROOT, "BENCH_pruning.json")
BENCH_FAULTS_PATH = os.path.join(REPO_ROOT, "BENCH_faults.json")
BENCH_PARALLEL_PATH = os.path.join(REPO_ROOT, "BENCH_parallel.json")
BENCH_OBS_PATH = os.path.join(REPO_ROOT, "BENCH_obs.json")
BENCH_COLUMNAR_PATH = os.path.join(REPO_ROOT, "BENCH_columnar.json")
BENCH_PROCPOOL_PATH = os.path.join(REPO_ROOT, "BENCH_procpool.json")
BENCH_INGEST_PATH = os.path.join(REPO_ROOT, "BENCH_ingest.json")
BENCH_SERVING_GATEWAY_PATH = os.path.join(
    REPO_ROOT, "BENCH_serving_gateway.json"
)


def wallclock(fn: Callable[[], Any]) -> Tuple[Any, float]:
    """(result, real seconds) of one call, via ``time.perf_counter``.

    The simulated cost model measures what the *modelled* cluster would
    spend; this measures what the benchmark process actually spent, which
    is the number the serving-throughput trajectory tracks.
    """
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def record_cumulative_benchmark(path: str, experiment: str, **fields: Any) -> str:
    """Append one measurement entry to a cumulative repo-root JSON file.

    The file keeps one entry per recorded run (``{"entries": [...]}``) so
    a metric's trajectory can be charted across commits.  Corrupt or
    foreign content is replaced rather than crashed on.  Returns ``path``.
    """
    payload: Dict[str, Any] = {"entries": []}
    if os.path.exists(path):
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            payload = {"entries": []}
        if not isinstance(payload.get("entries"), list):
            payload = {"entries": []}
    entry: Dict[str, Any] = {
        "experiment": experiment,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        # Speedup-style metrics only compare like with like when the
        # recording host's core count rides along (regress.py groups
        # parallel trajectories by it).
        "host_cpus": os.cpu_count() or 1,
    }
    entry.update({key: _plain(value) for key, value in fields.items()})
    payload["entries"].append(entry)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return path


def record_serving_benchmark(experiment: str, **fields: Any) -> str:
    """Append one wall-clock serving measurement to ``BENCH_serving.json``."""
    return record_cumulative_benchmark(BENCH_SERVING_PATH, experiment, **fields)


def record_pruning_benchmark(experiment: str, **fields: Any) -> str:
    """Append one zone-map pruning measurement to ``BENCH_pruning.json``."""
    return record_cumulative_benchmark(BENCH_PRUNING_PATH, experiment, **fields)


def record_faults_benchmark(experiment: str, **fields: Any) -> str:
    """Append one fault-injection measurement to ``BENCH_faults.json``."""
    return record_cumulative_benchmark(BENCH_FAULTS_PATH, experiment, **fields)


def record_parallel_benchmark(experiment: str, **fields: Any) -> str:
    """Append one parallel-executor measurement to ``BENCH_parallel.json``."""
    return record_cumulative_benchmark(BENCH_PARALLEL_PATH, experiment, **fields)


def record_obs_benchmark(experiment: str, **fields: Any) -> str:
    """Append one observability-overhead measurement to ``BENCH_obs.json``."""
    return record_cumulative_benchmark(BENCH_OBS_PATH, experiment, **fields)


def record_columnar_benchmark(experiment: str, **fields: Any) -> str:
    """Append one columnar-layout measurement to ``BENCH_columnar.json``."""
    return record_cumulative_benchmark(BENCH_COLUMNAR_PATH, experiment, **fields)


def record_procpool_benchmark(experiment: str, **fields: Any) -> str:
    """Append one process-executor measurement to ``BENCH_procpool.json``."""
    return record_cumulative_benchmark(BENCH_PROCPOOL_PATH, experiment, **fields)


def record_ingest_benchmark(experiment: str, **fields: Any) -> str:
    """Append one streaming-ingestion measurement to ``BENCH_ingest.json``."""
    return record_cumulative_benchmark(BENCH_INGEST_PATH, experiment, **fields)


def record_serving_gateway_benchmark(experiment: str, **fields: Any) -> str:
    """Append one gateway open-loop measurement to ``BENCH_serving_gateway.json``."""
    return record_cumulative_benchmark(
        BENCH_SERVING_GATEWAY_PATH, experiment, **fields
    )


def trial_stats(samples: Sequence[float]) -> Dict[str, float]:
    """Robust summary of repeated trials: median, IQR, quartiles, extremes.

    The recorders store the median (robust to one slow trial on a shared
    CI box) with the IQR as the spread, rather than a lone measurement —
    perf trajectories across commits then compare like with like.
    """
    values = sorted(float(s) for s in samples)
    n = len(values)
    if n == 0:
        return {"n": 0}

    def quantile(q: float) -> float:
        if n == 1:
            return values[0]
        pos = q * (n - 1)
        lo = int(pos)
        hi = min(lo + 1, n - 1)
        frac = pos - lo
        return values[lo] * (1.0 - frac) + values[hi] * frac

    q25, q50, q75 = quantile(0.25), quantile(0.5), quantile(0.75)
    return {
        "n": n,
        "median": q50,
        "q25": q25,
        "q75": q75,
        "iqr": q75 - q25,
        "min": values[0],
        "max": values[-1],
    }


def format_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines) + "\n"


def write_result(
    name: str,
    table: str,
    headers: Optional[Sequence[str]] = None,
    rows: Optional[Iterable[Sequence]] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> str:
    """Write the human-readable table; mirror structured data as JSON.

    ``headers``/``rows`` (and/or ``extra``) also produce
    ``results/<name>.json`` with the same rows as plain values, so the
    perf trajectory across commits can be diffed mechanically.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(table)
    if headers is not None or rows is not None or extra is not None:
        payload: Dict[str, Any] = {"name": name}
        if headers is not None:
            payload["headers"] = list(headers)
        if rows is not None:
            payload["rows"] = [[_plain(cell) for cell in row] for row in rows]
        if extra is not None:
            payload["extra"] = {k: _plain(v) for k, v in extra.items()}
        json_path = os.path.join(RESULTS_DIR, f"{name}.json")
        with open(json_path, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    print("\n" + table)
    return path


def metrics_snapshot(observer) -> Dict[str, float]:
    """Flat metrics dict from a ``StackObserver`` for ``benchmark.extra_info``.

    Returns ``{}`` for a null/absent observer so callers can attach
    unconditionally.
    """
    snapshot = getattr(observer, "snapshot", None)
    if observer is None or not getattr(observer, "enabled", False):
        return {}
    return snapshot() if callable(snapshot) else {}


def _plain(value: Any) -> Any:
    """JSON-safe plain value (numpy scalars -> python builtins)."""
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return item()
        except Exception:
            pass
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    return str(value)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.3f}"
    return str(cell)
