"""E20 — observability overhead and flight-recorder determinism.

DESIGN §10's contract has two measurable halves:

1. **Detached is (nearly) free.**  Every ``submit`` now runs through the
   flight-recorder hooks (`profile_begin`/`profile_end`), the SLO feed
   and the anomaly monitor plumbing — all behind ``observer.enabled``
   guards on the null observer.  This experiment serves the E3 steady
   state two ways on frozen, identically warmed agents: the full
   ``submit`` path with no observer attached vs the bare ``_serve``
   inner path that predates all instrumentation.  The gap *is* the
   detached instrumentation overhead; the gate holds the median to
   ``E20_MAX_OVERHEAD`` (default 5%).

2. **Profiles are worker-independent.**  Two identically seeded
   sessions at ``workers=1`` and ``workers=2`` must export
   byte-identical profile JSONL — nothing host-timed may enter a
   QueryProfile.

Attached-observer throughput is also measured (informational — that
path pays for real recording).  Headlines land in the cumulative
repo-root ``BENCH_obs.json`` trajectory for the regression sentinel.

Scale via ``E20_ROWS`` / ``E20_QUERIES`` (the CI smoke job runs reduced).
"""

import gc
import os

import numpy as np

from repro.baselines import ExactEngine
from repro.core import AgentConfig, SEAAgent
from repro.core.agent import ServedQuery
from repro.data import gaussian_mixture_table
from repro.obs import StackObserver
from repro.session import SEASession

from conftest import build_world, standard_workload
from harness import (
    format_table,
    record_obs_benchmark,
    trial_stats,
    wallclock,
    write_result,
)

N_ROWS = int(os.environ.get("E20_ROWS", "50000"))
N_QUERIES = int(os.environ.get("E20_QUERIES", "1000"))
N_WARM = 3 * N_QUERIES
TRAINING_BUDGET = min(400, max(40, N_WARM // 7))
N_TRIALS = int(os.environ.get("E20_TRIALS", "5"))
MAX_OVERHEAD = float(os.environ.get("E20_MAX_OVERHEAD", "0.05"))


def _warmed_agent(store, warm_queries, observer=None):
    """A converged agent: trained on the warm wave, learning frozen."""
    agent = SEAAgent(
        ExactEngine(store),
        AgentConfig(training_budget=TRAINING_BUDGET, error_threshold=0.2),
    )
    if observer is not None:
        agent.attach_observer(observer)
    agent.submit_batch(warm_queries)
    agent.config.keep_learning_on_fallback = False
    return agent


def _profile_jsonl(workers: int) -> str:
    """Profiles JSONL from one deterministic session at ``workers``."""
    table = gaussian_mixture_table(
        4000, dims=("x0", "x1"), seed=5, name="data"
    )
    with SEASession(
        n_nodes=4,
        config=AgentConfig(training_budget=6, error_threshold=0.05, warmup=4),
        workers=workers,
    ) as session:
        observer = session.attach_observer()
        session.load_table(table)
        workload = standard_workload(table, seed=9)
        for query in workload.batch(8):
            session.submit(query)
        session.submit_batch(workload.batch(8))
        return observer.profiles.to_jsonl()


def run_observability():
    store, table = build_world(n_rows=N_ROWS)
    workload = standard_workload(table, seed=11)
    warm_queries = workload.batch(N_WARM)
    serve_queries = workload.batch(N_QUERIES)

    bare_qps, detached_qps, attached_qps = [], [], []
    for _ in range(N_TRIALS):
        agent_bare = _warmed_agent(store, warm_queries)
        agent_detached = _warmed_agent(store, warm_queries)
        agent_attached = _warmed_agent(store, warm_queries, StackObserver())
        gc.collect()
        gc.disable()
        try:
            # Bare: the pre-instrumentation inner serving path.
            _, bare_sec = wallclock(
                lambda: [
                    agent_bare._serve(query) for query in serve_queries
                ]
            )
            # Detached: the full submit path, null observer (what a user
            # who never attaches an observer pays).
            detached_records, detached_sec = wallclock(
                lambda: [
                    agent_detached.submit(query) for query in serve_queries
                ]
            )
            # Attached: full recording (informational).
            attached_records, attached_sec = wallclock(
                lambda: [
                    agent_attached.submit(query) for query in serve_queries
                ]
            )
        finally:
            gc.enable()
        for a, b in zip(detached_records, attached_records):
            assert isinstance(a, ServedQuery) and isinstance(b, ServedQuery)
            assert a.mode == b.mode
            assert np.array_equal(
                np.asarray(a.answer, dtype=float),
                np.asarray(b.answer, dtype=float),
            )
        assert all(r.profile is None for r in detached_records)
        assert all(r.profile is not None for r in attached_records)
        bare_qps.append(N_QUERIES / bare_sec)
        detached_qps.append(N_QUERIES / detached_sec)
        attached_qps.append(N_QUERIES / attached_sec)

    bare = trial_stats(bare_qps)
    detached = trial_stats(detached_qps)
    attached = trial_stats(attached_qps)
    # Overhead of the detached instrumented path over the bare inner loop.
    overhead = bare["median"] / detached["median"] - 1.0

    jsonl_1 = _profile_jsonl(workers=1)
    jsonl_2 = _profile_jsonl(workers=2)
    byte_identical = jsonl_1 == jsonl_2

    result = {
        "rows": N_ROWS,
        "queries": N_QUERIES,
        "warm_queries": N_WARM,
        "training_budget": TRAINING_BUDGET,
        "trials": N_TRIALS,
        "bare_qps": bare["median"],
        "detached_qps": detached["median"],
        "detached_qps_iqr": detached["iqr"],
        "attached_qps": attached["median"],
        "detached_overhead": overhead,
        "attached_overhead": bare["median"] / attached["median"] - 1.0,
        "profiles_byte_identical": byte_identical,
    }
    return result


def test_e20_observability(benchmark):
    result = benchmark.pedantic(run_observability, rounds=1, iterations=1)
    headers = ["path", "qps_median", "overhead_vs_bare"]
    rows = [
        ["bare _serve loop", result["bare_qps"], 0.0],
        ["submit, detached", result["detached_qps"], result["detached_overhead"]],
        ["submit, attached", result["attached_qps"], result["attached_overhead"]],
    ]
    table = format_table(
        "E20: serving throughput with and without observability", headers, rows
    )
    write_result(
        "e20_observability", table, headers=headers, rows=rows, extra=result
    )
    record_obs_benchmark("e20_observability", **result)
    assert result["profiles_byte_identical"], (
        "QueryProfile JSONL must be byte-identical across worker counts"
    )
    assert result["detached_overhead"] <= MAX_OVERHEAD, (
        f"detached instrumentation overhead "
        f"{result['detached_overhead'] * 100:.2f}% exceeds "
        f"{MAX_OVERHEAD * 100:.1f}% "
        f"(bare {result['bare_qps']:.1f} q/s vs "
        f"detached {result['detached_qps']:.1f} q/s)"
    )
    benchmark.extra_info.update(
        {
            "detached_qps": result["detached_qps"],
            "attached_qps": result["attached_qps"],
            "detached_overhead": result["detached_overhead"],
        }
    )
