"""E2 — data-less answer accuracy vs training-set size ([26]-[29]).

Reproduces the learning curve behind P2: with more intercepted training
queries, the agent serves a larger fraction of the workload data-lessly
and with lower relative error, across count / mean / regression-slope
aggregates (the query classes the paper's prior work [26]-[29] covered).
"""

import numpy as np

from repro.baselines import ExactEngine
from repro.core import AgentConfig, SEAAgent
from repro.queries import Count, Mean, RegressionCoefficients

from conftest import build_world, standard_workload
from harness import format_table, write_result

TRAIN_SIZES = (100, 300, 800)
EVAL_QUERIES = 200


def evaluate(aggregate, aggregate_label):
    store, table = build_world(n_rows=50_000)
    rows = []
    for budget in TRAIN_SIZES:
        agent = SEAAgent(
            ExactEngine(store),
            AgentConfig(training_budget=budget, error_threshold=0.2),
        )
        workload = standard_workload(table, aggregate=aggregate, seed=7)
        for query in workload.batch(budget + EVAL_QUERIES):
            agent.submit(query)
        served = [r for r in agent.history[budget:] if r.mode == "predicted"]
        errors = []
        for record in served:
            truth = record.query.evaluate(table)
            predicted = np.atleast_1d(np.asarray(record.answer, dtype=float))
            actual = np.atleast_1d(np.asarray(truth, dtype=float))
            denom = max(float(np.linalg.norm(actual)), 1.0)
            errors.append(float(np.linalg.norm(actual - predicted)) / denom)
        rows.append(
            [
                aggregate_label,
                budget,
                len(served) / EVAL_QUERIES,
                float(np.median(errors)) if errors else float("nan"),
                float(np.quantile(errors, 0.9)) if errors else float("nan"),
            ]
        )
    return rows


def run_accuracy():
    rows = []
    rows += evaluate(Count(), "count")
    rows += evaluate(Mean("value"), "mean")
    rows += evaluate(
        RegressionCoefficients("value", ["x0", "x1"]), "regression"
    )
    return rows


def test_e02_accuracy_vs_training(benchmark):
    rows = benchmark.pedantic(run_accuracy, rounds=1, iterations=1)
    headers = ["aggregate", "train_n", "dataless_frac", "median_rel_err", "p90_rel_err"]
    table = format_table(
        "E2: data-less accuracy and coverage vs training queries",
        headers,
        rows,
    )
    write_result("e02_accuracy", table, headers=headers, rows=rows)
    by_agg = {}
    for label, budget, frac, med, p90 in rows:
        by_agg.setdefault(label, []).append((budget, frac, med))
    for label, series in by_agg.items():
        # Coverage grows with training size...
        assert series[-1][1] >= series[0][1], label
    # ...and count queries reach good accuracy with enough training.
    count_final = by_agg["count"][-1]
    assert count_final[1] > 0.15
    assert count_final[2] < 0.15
    benchmark.extra_info["count_final_median_err"] = count_final[2]
