"""E18 — fault injection: availability, degraded accuracy, retry overhead.

The fault-injection sweep crashes a growing fraction of nodes at two
replication factors and measures, on the same query wave, how each
serving path behaves:

* ``ExactEngine`` in ``fail`` mode — availability drops as partitions
  lose their last replica (every answer it *does* give is exact);
* ``ExactEngine`` in ``degrade`` mode — answers 100% of queries,
  reporting exact coverage and sound error bounds for the rest
  (bound containment is asserted per query);
* the SEA agent — must serve **100%** of the workload at every failure
  fraction (the paper's availability claim: predictions need no data).

Two targeted scenarios complete the picture: at replication 2 a single
node crash must be *byte-identical* to the no-fault run (dead nodes
serve zero bytes; replicas serve the same bytes), with the failovers
visible as ``fault_*`` metrics; and a flaky node's transient errors
must show up as retry byte overhead while answers stay exact.

Results land in ``results/e18_faults.*`` and the cumulative repo-root
``BENCH_faults.json``.  Scale via env vars (reduced in CI):
``E18_ROWS``, ``E18_NODES``, ``E18_QUERIES``, ``E18_WARM``.
"""

import os

from repro.baselines import ExactEngine
from repro.cluster import ClusterTopology, DistributedStore
from repro.common.errors import PartitionLostError
from repro.core import AgentConfig, SEAAgent
from repro.data import gaussian_mixture_table
from repro.faults import DegradedAnswer, FaultInjector, FaultSchedule
from repro.obs import StackObserver

from conftest import standard_workload
from harness import (
    format_table,
    record_faults_benchmark,
    trial_stats,
    wallclock,
    write_result,
)

N_ROWS = int(os.environ.get("E18_ROWS", "40000"))
N_NODES = int(os.environ.get("E18_NODES", "8"))
N_QUERIES = int(os.environ.get("E18_QUERIES", "200"))
N_WARM = int(os.environ.get("E18_WARM", str(3 * N_QUERIES)))
TRAINING_BUDGET = min(400, max(40, N_WARM // 7))
REPLICATIONS = (1, 2)
FAILURE_FRACTIONS = (0.0, 0.125, 0.25, 0.375)
FLAKY_RATE = 0.3


def build_replicated_world(replication):
    topo = ClusterTopology.single_datacenter(N_NODES)
    store = DistributedStore(topo, replication=replication)
    table = gaussian_mixture_table(
        N_ROWS, dims=("x0", "x1"), seed=1, name="data", value_bytes=64
    )
    store.put_table(table, partitions_per_node=2)
    return store, table


def rel_error(value, truth):
    return abs(float(value) - float(truth)) / max(1.0, abs(float(truth)))


def metric_total(metrics, name):
    """Sum a counter across its labelled series (``name{node=...}``)."""
    return sum(
        value
        for key, value in metrics.items()
        if key == name or key.startswith(name + "{")
    )


def sweep_failure_fractions():
    """Availability / coverage / error across failure fraction x replication."""
    scenarios = []
    for replication in REPLICATIONS:
        store, table = build_replicated_world(replication)
        workload = standard_workload(table, seed=13)
        truth_engine = ExactEngine(store)

        agent = SEAAgent(
            ExactEngine(store),
            AgentConfig(training_budget=TRAINING_BUDGET, error_threshold=0.2),
        )
        agent.submit_batch(workload.batch(N_WARM))
        agent.config.keep_learning_on_fallback = False

        for fraction in FAILURE_FRACTIONS:
            wave = workload.batch(N_QUERIES)
            # Ground truth while the store is still fault-free.
            truths = [truth_engine.execute(q)[0] for q in wave]

            obs = StackObserver()
            schedule = FaultSchedule.crash_fraction(
                store.topology.node_ids, fraction
            )
            store.attach_faults(FaultInjector(schedule, seed=5, observer=obs))
            try:
                fail_engine = ExactEngine(store, observer=obs)
                fail_served = 0
                for query, truth in zip(wave, truths):
                    try:
                        answer, _ = fail_engine.execute(query)
                    except PartitionLostError:
                        continue
                    # Fail mode never fabricates: survivors stay exact.
                    assert answer == truth, (fraction, replication, query)
                    fail_served += 1

                degrade_engine = ExactEngine(
                    store, observer=obs, failure_mode="degrade"
                )
                coverages, errors = [], []
                n_degraded = n_bounded = 0
                for query, truth in zip(wave, truths):
                    answer, _ = degrade_engine.execute(query)
                    if isinstance(answer, DegradedAnswer):
                        n_degraded += 1
                        assert 0.0 <= answer.coverage <= 1.0
                        coverages.append(answer.coverage)
                        errors.append(rel_error(answer.value, truth))
                        if answer.bounded:
                            n_bounded += 1
                            # The bound must be sound: it contains truth.
                            assert answer.contains(truth), (answer, truth)
                    else:
                        assert answer == truth
                        coverages.append(1.0)
                        errors.append(0.0)

                agent_records, agent_wall = wallclock(
                    lambda: [agent.submit(q) for q in wave]
                )
            finally:
                store.clear_faults()

            modes = {}
            for record in agent_records:
                modes[record.mode] = modes.get(record.mode, 0) + 1
            # Every served prediction is data-free — loss cannot slow it.
            data_free = sum(
                1
                for r in agent_records
                if r.mode == "predicted" and r.cost.bytes_scanned == 0
            )
            assert data_free == modes.get("predicted", 0)

            scenarios.append(
                {
                    "replication": replication,
                    "failure_fraction": fraction,
                    "nodes_down": len(schedule.nodes_down_at(0.0)),
                    "fail_availability": fail_served / len(wave),
                    "degrade_availability": 1.0,
                    "agent_availability": len(agent_records) / len(wave),
                    "degraded_queries": n_degraded,
                    "bounded_degraded": n_bounded,
                    "mean_coverage": sum(coverages) / len(coverages),
                    "mean_rel_error": sum(errors) / len(errors),
                    "agent_modes": modes,
                    "agent_wall_sec": agent_wall,
                }
            )
    return scenarios


def byte_identity_check():
    """Replication 2 + one crashed node == no-fault run, byte for byte."""
    store, table = build_replicated_world(2)
    workload = standard_workload(table, seed=29)
    wave = workload.batch(40)
    obs = StackObserver()
    engine = ExactEngine(store, observer=obs)
    clean = [engine.execute(q) for q in wave]

    store.attach_faults(
        FaultInjector(
            FaultSchedule().crash(store.topology.node_ids[0], at=0.0),
            seed=7,
            observer=obs,
        )
    )
    try:
        faulty = [engine.execute(q) for q in wave]
    finally:
        store.clear_faults()

    for (a_clean, r_clean), (a_faulty, r_faulty) in zip(clean, faulty):
        assert a_faulty == a_clean, (a_faulty, a_clean)
        assert r_faulty.bytes_scanned == r_clean.bytes_scanned
    metrics = obs.metrics.as_dict()
    failovers = metric_total(metrics, "fault_failovers_total")
    probes = metric_total(metrics, "fault_probes_total")
    # The crash is invisible in answers and bytes but not in the metrics.
    assert failovers + probes > 0, metrics
    return {
        "queries": len(wave),
        "bytes_scanned": sum(r.bytes_scanned for _, r in clean),
        "fault_failovers_total": failovers,
        "fault_probes_total": probes,
    }


def retry_overhead_check():
    """A flaky node's transient errors cost visible retry bytes, not accuracy."""
    store, table = build_replicated_world(2)
    workload = standard_workload(table, seed=31)
    wave = workload.batch(40)
    obs = StackObserver()
    engine = ExactEngine(store, observer=obs)
    clean = [engine.execute(q) for q in wave]
    clean_bytes = sum(r.bytes_scanned for _, r in clean)

    store.attach_faults(
        FaultInjector(
            FaultSchedule().flaky(store.topology.node_ids[0], FLAKY_RATE),
            seed=11,
            observer=obs,
        )
    )
    try:
        faulty = [engine.execute(q) for q in wave]
    finally:
        store.clear_faults()

    for (a_clean, _), (a_faulty, _) in zip(clean, faulty):
        assert a_faulty == a_clean
    faulty_bytes = sum(r.bytes_scanned for _, r in faulty)
    metrics = obs.metrics.as_dict()
    retries = metric_total(metrics, "fault_retries_total")
    assert retries > 0, metrics
    # Failed attempts were charged: retry overhead is visible in bytes.
    assert faulty_bytes >= clean_bytes
    return {
        "queries": len(wave),
        "clean_bytes": clean_bytes,
        "faulty_bytes": faulty_bytes,
        "bytes_overhead_ratio": faulty_bytes / max(1, clean_bytes),
        "fault_retries_total": retries,
        "fault_transient_errors_total": metric_total(
            metrics, "fault_transient_errors_total"
        ),
    }


def run_fault_benchmark():
    scenarios = sweep_failure_fractions()
    identity = byte_identity_check()
    overhead = retry_overhead_check()
    return scenarios, identity, overhead


def test_e18_faults(benchmark):
    scenarios, identity, overhead = benchmark.pedantic(
        run_fault_benchmark, rounds=1, iterations=1
    )
    rows = [
        [
            s["replication"],
            s["failure_fraction"],
            s["nodes_down"],
            s["fail_availability"],
            s["agent_availability"],
            s["degraded_queries"],
            s["mean_coverage"],
            s["mean_rel_error"],
        ]
        for s in scenarios
    ]
    table = format_table(
        "E18: availability & degraded accuracy vs node-failure fraction",
        [
            "replication",
            "fail_frac",
            "down",
            "exact_avail",
            "agent_avail",
            "degraded_q",
            "coverage",
            "rel_err",
        ],
        rows,
    )
    write_result(
        "e18_faults",
        table,
        extra={
            "scenarios": scenarios,
            "byte_identity": identity,
            "retry_overhead": overhead,
        },
    )
    # The paper's availability claim, as a hard CI gate: the agent serves
    # every query at every failure fraction and replication factor.
    for s in scenarios:
        assert s["agent_availability"] == 1.0, s
    # Degrade mode also answers everything, and replication can only help
    # the fail-mode engine.
    for s in scenarios:
        assert s["degrade_availability"] == 1.0, s
    by_fraction = {}
    for s in scenarios:
        by_fraction.setdefault(s["failure_fraction"], {})[
            s["replication"]
        ] = s["fail_availability"]
    for fraction, by_rep in by_fraction.items():
        assert by_rep[2] >= by_rep[1], (fraction, by_rep)
    # No faults -> nothing degraded, full coverage, everywhere exact.
    for s in scenarios:
        if s["failure_fraction"] == 0.0:
            assert s["fail_availability"] == 1.0, s
            assert s["degraded_queries"] == 0, s
            assert s["mean_coverage"] == 1.0, s
    # Robust summary of the agent's serving wall-clock across scenarios —
    # the per-commit trajectory compares medians, not lone samples.
    wall_stats = trial_stats([s["agent_wall_sec"] for s in scenarios])
    record_faults_benchmark(
        "e18_faults",
        n_rows=N_ROWS,
        n_nodes=N_NODES,
        n_queries=N_QUERIES,
        scenarios=scenarios,
        byte_identity=identity,
        retry_overhead=overhead,
        agent_wall_sec_median=wall_stats.get("median"),
        agent_wall_sec_iqr=wall_stats.get("iqr"),
    )
    worst = min(s["fail_availability"] for s in scenarios)
    benchmark.extra_info["worst_exact_availability"] = worst
    benchmark.extra_info["agent_availability"] = 1.0
    benchmark.extra_info["retry_bytes_overhead_ratio"] = overhead[
        "bytes_overhead_ratio"
    ]
