"""E9 — MapReduce vs coordinator-cohort crossover (P4, RT3.2).

"Sometimes applying a MapReduce based algorithm is beneficial, while
other times a coordinator-cohort distributed processing model is more
beneficial, depending on data distribution degrees and join
selectivities."  Reproduced on subspace materialisation: sweeping the
selection's selectivity, the surgical index path wins at low selectivity
and the full MapReduce scan wins once the selection covers most of the
table (row point-reads + round trips exceed one sequential pass).
"""

import numpy as np

from repro.bigdataless import AdHocMLEngine, DistributedGridIndex
from repro.queries import RangeSelection

from conftest import build_world
from harness import format_table, write_result

WIDTHS = (2.0, 5.0, 12.0, 30.0, 70.0, 100.0)


def run_crossover():
    store, table = build_world(n_rows=60_000, value_bytes=2048)
    index = DistributedGridIndex(store, "data", ("x0", "x1"), cells_per_dim=32)
    index.build()
    engine = AdHocMLEngine(store, index)
    rows = []
    for width in WIDTHS:
        lo = max(0.0, 50.0 - width / 2)
        hi = min(100.0, 50.0 + width / 2)
        selection = RangeSelection(("x0", "x1"), [lo, lo], [hi, hi])
        selectivity = float(selection.mask(table).mean())
        _, full_report = engine.gather("data", selection, method="fullscan")
        _, index_report = engine.gather("data", selection, method="index")
        winner = (
            "coordinator"
            if index_report.elapsed_sec < full_report.elapsed_sec
            else "mapreduce"
        )
        rows.append(
            [
                width,
                selectivity,
                full_report.elapsed_sec,
                index_report.elapsed_sec,
                winner,
            ]
        )
    return rows


def test_e09_crossover(benchmark):
    rows = benchmark.pedantic(run_crossover, rounds=1, iterations=1)
    headers = ["box_width", "selectivity", "mapreduce_sec", "coordinator_sec", "winner"]
    table = format_table(
        "E9: full-scan vs surgical-index cost across selectivities",
        headers,
        rows,
    )
    write_result("e09_crossover", table, headers=headers, rows=rows)
    winners = [r[4] for r in rows]
    # Both paradigms win somewhere: the crossover exists.
    assert "coordinator" in winners
    assert "mapreduce" in winners
    # And the winner flips monotonically: coordinator at low selectivity.
    assert winners[0] == "coordinator"
    assert winners[-1] == "mapreduce"
    crossover_at = next(r[1] for r in rows if r[4] == "mapreduce")
    benchmark.extra_info["crossover_selectivity"] = crossover_at
