"""E3 — sustainable query throughput: Fig. 1 system vs Fig. 2 system.

Sec. II.A: the traditional system "cannot scale as query arrival rates
increase".  Using measured per-query service demands (node-seconds) from
both paths, this experiment computes, for a growing offered load, the
cluster utilisation and the response time under an M/D/c approximation —
showing the exact path saturating orders of magnitude before the
data-less path does.

It also measures *real* serving throughput (wall-clock queries/sec) in
the steady state the paper targets: the agent trains and converges on a
warm workload, learning is frozen, and a fresh serving wave is answered
two ways — one ``submit`` call per query vs a single ``submit_batch``.
Both paths return byte-identical answers, modes, and simulated costs
(asserted per trial), so the batched speedup is pure amortisation:
vectorized predictions, one shared scan for all fallbacks, and cached
charge replay.  The median over ``N_TRIALS`` fresh agent pairs lands in
the cumulative repo-root ``BENCH_serving.json`` trajectory.

Scale via ``E03_ROWS`` / ``E03_QUERIES`` (the CI smoke job runs reduced).
"""

import gc
import os

import numpy as np

from repro.baselines import ExactEngine
from repro.core import AgentConfig, SEAAgent

from repro.engine import mdc_response_time

from conftest import build_world, standard_workload
from harness import (
    format_table,
    record_serving_benchmark,
    trial_stats,
    wallclock,
    write_result,
)

ARRIVAL_RATES = (0.5, 2.0, 8.0, 12.0, 32.0, 128.0)  # queries/s offered

N_ROWS = int(os.environ.get("E03_ROWS", "50000"))
N_QUERIES = int(os.environ.get("E03_QUERIES", "1000"))
N_WARM = 3 * N_QUERIES  # enough for the error estimates to converge
TRAINING_BUDGET = min(400, max(40, N_WARM // 7))
N_TRIALS = 3


def _warmed_agent(store, warm_queries):
    """A converged agent: trained on the warm wave, learning frozen."""
    agent = SEAAgent(
        ExactEngine(store),
        AgentConfig(training_budget=TRAINING_BUDGET, error_threshold=0.2),
    )
    agent.submit_batch(warm_queries)
    agent.config.keep_learning_on_fallback = False
    return agent


def run_throughput():
    store, table = build_world(n_rows=N_ROWS)
    n_nodes = len(store.topology)
    workload = standard_workload(table, seed=11)
    warm_queries = workload.batch(N_WARM)
    serve_queries = workload.batch(N_QUERIES)

    sequential_qps, batched_qps = [], []
    reference = None
    for _ in range(N_TRIALS):
        agent_seq = _warmed_agent(store, warm_queries)
        agent_bat = _warmed_agent(store, warm_queries)
        gc.collect()
        gc.disable()
        try:
            seq_records, seq_sec = wallclock(
                lambda: [agent_seq.submit(q) for q in serve_queries]
            )
            bat_records, bat_sec = wallclock(
                lambda: agent_bat.submit_batch(serve_queries)
            )
        finally:
            gc.enable()
        for a, b in zip(seq_records, bat_records):
            assert a.mode == b.mode
            assert np.array_equal(
                np.asarray(a.answer, dtype=float),
                np.asarray(b.answer, dtype=float),
            )
            assert a.cost.__dict__ == b.cost.__dict__
        sequential_qps.append(N_QUERIES / seq_sec)
        batched_qps.append(N_QUERIES / bat_sec)
        reference = agent_seq

    # Service demands for the M/D/c capacity model come from the full
    # lifecycle history (train + serve) of the last sequential agent.
    history = reference.history
    exact_demand = float(
        np.mean([r.cost.node_sec for r in history if r.mode != "predicted"])
    )
    dataless_demand = float(
        np.mean([r.cost.node_sec for r in history[TRAINING_BUDGET:]])
    )
    dataless_fraction = reference.stats()["dataless_fraction"]
    rows = []
    for rate in ARRIVAL_RATES:
        t_trad, u_trad = mdc_response_time(rate, exact_demand, n_nodes)
        t_sea, u_sea = mdc_response_time(rate, dataless_demand, n_nodes)
        rows.append([rate, u_trad, t_trad, u_sea, t_sea])

    seq_stats = trial_stats(sequential_qps)
    bat_stats = trial_stats(batched_qps)
    seq_qps = seq_stats["median"]
    bat_qps = bat_stats["median"]
    serve_modes = {}
    for record in history[-N_QUERIES:]:
        serve_modes[record.mode] = serve_modes.get(record.mode, 0) + 1
    serving = {
        "rows": N_ROWS,
        "queries": N_QUERIES,
        "warm_queries": N_WARM,
        "training_budget": TRAINING_BUDGET,
        "trials": N_TRIALS,
        "sequential_qps": seq_qps,
        "sequential_qps_iqr": seq_stats["iqr"],
        "batched_qps": bat_qps,
        "batched_qps_iqr": bat_stats["iqr"],
        "speedup": bat_qps / seq_qps,
        "serve_predicted": serve_modes.get("predicted", 0),
        "serve_fallback": serve_modes.get("fallback", 0),
        "dataless_fraction": dataless_fraction,
    }
    return rows, dataless_fraction, serving


def test_e03_throughput(benchmark):
    rows, dataless_fraction, serving = benchmark.pedantic(
        run_throughput, rounds=1, iterations=1
    )
    headers = ["arrivals_per_sec", "util_trad", "resp_trad_sec", "util_sea", "resp_sea_sec"]
    table = format_table(
        "E3: response time vs offered load (M/D/c on measured demands)",
        headers,
        rows,
    )
    write_result("e03_throughput", table, headers=headers, rows=rows, extra=serving)
    record_serving_benchmark("e03_throughput", **serving)
    # The traditional system saturates at a load the SEA system absorbs.
    saturated_trad = [r for r in rows if not np.isfinite(r[2])]
    assert saturated_trad, "traditional path should saturate in the sweep"
    first_saturation = saturated_trad[0][0]
    full_scale = N_ROWS >= 50_000 and N_QUERIES >= 1000
    if full_scale:
        # The paper-figure claims need enough serving volume for the
        # dataless fraction to develop; the reduced CI smoke run only
        # gates the batched-vs-sequential throughput below.
        sea_at_that_load = next(r for r in rows if r[0] == first_saturation)
        assert np.isfinite(sea_at_that_load[4]), (
            "SEA must still be stable at the traditional saturation point"
        )
        # Capacity ratio: SEA sustains strictly higher load (util is linear
        # in arrival rate, so the ratio of utilisations is the capacity
        # ratio).
        assert rows[0][1] / rows[0][3] > 1.2
    # Batched serving is the fast path; regressing it below the sequential
    # loop is a perf bug the CI smoke job must catch.
    assert serving["batched_qps"] >= serving["sequential_qps"], (
        f"batched serving ({serving['batched_qps']:.1f} q/s) slower than "
        f"sequential ({serving['sequential_qps']:.1f} q/s)"
    )
    benchmark.extra_info["dataless_fraction"] = dataless_fraction
    benchmark.extra_info["traditional_saturates_at"] = first_saturation
    benchmark.extra_info["sequential_qps"] = serving["sequential_qps"]
    benchmark.extra_info["batched_qps"] = serving["batched_qps"]
    benchmark.extra_info["batched_speedup"] = serving["speedup"]
