"""E3 — sustainable query throughput: Fig. 1 system vs Fig. 2 system.

Sec. II.A: the traditional system "cannot scale as query arrival rates
increase".  Using measured per-query service demands (node-seconds) from
both paths, this experiment computes, for a growing offered load, the
cluster utilisation and the response time under an M/D/c approximation —
showing the exact path saturating orders of magnitude before the
data-less path does.
"""

import numpy as np

from repro.baselines import ExactEngine
from repro.core import AgentConfig, SEAAgent
from repro.engine import mdc_response_time

from conftest import build_world, standard_workload
from harness import format_table, write_result

ARRIVAL_RATES = (0.5, 2.0, 8.0, 12.0, 32.0, 128.0)  # queries/s offered


def run_throughput():
    store, table = build_world(n_rows=50_000)
    n_nodes = len(store.topology)
    agent = SEAAgent(
        ExactEngine(store), AgentConfig(training_budget=400, error_threshold=0.2)
    )
    workload = standard_workload(table, seed=11)
    for query in workload.batch(1000):
        agent.submit(query)
    exact_demand = float(
        np.mean(
            [r.cost.node_sec for r in agent.history if r.mode != "predicted"]
        )
    )
    stats = agent.stats()
    dataless_fraction = stats["dataless_fraction"]
    # The SEA system's average demand mixes model answers with fallbacks.
    dataless_demand = float(
        np.mean([r.cost.node_sec for r in agent.history[400:]])
    )
    rows = []
    for rate in ARRIVAL_RATES:
        t_trad, u_trad = mdc_response_time(rate, exact_demand, n_nodes)
        t_sea, u_sea = mdc_response_time(rate, dataless_demand, n_nodes)
        rows.append([rate, u_trad, t_trad, u_sea, t_sea])
    return rows, dataless_fraction


def test_e03_throughput(benchmark):
    rows, dataless_fraction = benchmark.pedantic(
        run_throughput, rounds=1, iterations=1
    )
    headers = ["arrivals_per_sec", "util_trad", "resp_trad_sec", "util_sea", "resp_sea_sec"]
    table = format_table(
        "E3: response time vs offered load (M/D/c on measured demands)",
        headers,
        rows,
    )
    write_result("e03_throughput", table, headers=headers, rows=rows)
    # The traditional system saturates at a load the SEA system absorbs.
    saturated_trad = [r for r in rows if not np.isfinite(r[2])]
    assert saturated_trad, "traditional path should saturate in the sweep"
    first_saturation = saturated_trad[0][0]
    sea_at_that_load = next(r for r in rows if r[0] == first_saturation)
    assert np.isfinite(sea_at_that_load[4]), (
        "SEA must still be stable at the traditional saturation point"
    )
    # Capacity ratio: SEA sustains strictly higher load (util is linear in
    # arrival rate, so the ratio of utilisations is the capacity ratio).
    assert rows[0][1] / rows[0][3] > 1.2
    benchmark.extra_info["dataless_fraction"] = dataless_fraction
    benchmark.extra_info["traditional_saturates_at"] = first_saturation
