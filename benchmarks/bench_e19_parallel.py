"""E19 — multicore parallel scan executor: speedup without drift.

DESIGN §9: the morsel-style :class:`~repro.parallel.ScanExecutor` fans
partition-level compute (selection masks, aggregate partials, shared
batch passes) across a real thread pool while every charge is replayed
serially in partition order.  This experiment measures both halves of
that contract on a >=1M-row table:

* **Byte-identity (always asserted):** for every worker count in the
  sweep, every answer and every field of every cost report — including
  the float ``node_sec``/``elapsed_sec`` sums — equals the ``workers=1``
  reference exactly.  Not approximately: ``repr``-equal answers and
  ``==``-equal report dicts.
* **Wall-clock speedup (asserted on multicore hosts):** with 4 workers
  on a >=4-core host, the heavy suite must run >=``E19_MIN_SPEEDUP``
  times faster than serial.  On smaller hosts (the 1-CPU dev container)
  the speedup is recorded but not gated — there is nothing to fan out
  to; set ``E19_REQUIRE_SPEEDUP=1`` to force the gate anyway.

Each worker count runs ``E19_TRIALS`` timed trials; the cumulative
``BENCH_parallel.json`` trajectory stores the median and IQR per worker
count plus ``host_cpus``, so cross-commit comparisons know what silicon
produced each entry.

Scale via ``E19_ROWS`` (the CI smoke job runs the full >=1M rows).
"""

import gc
import os

from repro.baselines import ExactEngine
from repro.cluster import ClusterTopology, DistributedStore
from repro.data import gaussian_mixture_table
from repro.parallel import ScanExecutor
from repro.queries import (
    AnalyticsQuery,
    Correlation,
    Count,
    Median,
    RangeSelection,
    Std,
)

from harness import (
    format_table,
    record_parallel_benchmark,
    trial_stats,
    wallclock,
    write_result,
)

N_ROWS = int(os.environ.get("E19_ROWS", 1_200_000))
N_NODES = int(os.environ.get("E19_NODES", 8))
PARTS_PER_NODE = int(os.environ.get("E19_PARTS_PER_NODE", 4))
N_TRIALS = int(os.environ.get("E19_TRIALS", 3))
WORKER_SWEEP = tuple(
    int(w) for w in os.environ.get("E19_WORKERS", "1,2,4").split(",")
)
MIN_SPEEDUP = float(os.environ.get("E19_MIN_SPEEDUP", 1.8))
HOST_CPUS = os.cpu_count() or 1
# The >=1.8x gate needs hardware that can actually run 4 morsels at
# once; on fewer cores the sweep still runs (recording the identity
# checks and the measured — likely ~1x — speedup).
REQUIRE_SPEEDUP = (
    os.environ.get("E19_REQUIRE_SPEEDUP") == "1"
    or (HOST_CPUS >= 4 and os.environ.get("E19_REQUIRE_SPEEDUP") != "0")
)
SEED = 19  # pinned: the trajectory compares identical workloads


def build_world():
    """One >=1M-row table sharded over the cluster (replication=1)."""
    topo = ClusterTopology.single_datacenter(N_NODES)
    store = DistributedStore(topo)
    table = gaussian_mixture_table(
        N_ROWS, dims=("x0", "x1"), seed=SEED, name="data"
    )
    store.put_table(table, partitions_per_node=PARTS_PER_NODE)
    return store, table


def heavy_queries():
    """Compute-heavy exact jobs where the map phase dominates.

    ``gaussian_mixture_table`` data lives in [0, 100] per dimension.  The
    ``cut`` box spans all of ``x0`` but only half of ``x1``: it overlaps
    every partition without covering any, so zone maps cannot skip or
    synopsis-cover it and every partition pays a real mask + partial —
    exactly the work the morsel pool parallelises.  The ``narrow`` box
    exercises the pruning interplay (pruned partitions never enqueue).
    """
    cols = ("x0", "x1")
    cut = RangeSelection(cols, [0.0, 0.0], [100.0, 50.0])
    narrow = RangeSelection(cols, [10.0, 10.0], [25.0, 25.0])
    return [
        AnalyticsQuery("data", cut, Std("x0")),
        AnalyticsQuery("data", cut, Correlation("x0", "x1")),
        AnalyticsQuery("data", cut, Median("x1")),
        AnalyticsQuery("data", narrow, Std("x1")),
    ]


def batch_queries():
    """A homogeneous range batch for the shared-scan ``execute_many``."""
    cols = ("x0", "x1")
    out = []
    for i in range(8):
        high = 30.0 + 8.0 * i
        out.append(
            AnalyticsQuery(
                "data",
                RangeSelection(cols, [0.0, 0.0], [100.0, high]),
                Count() if i % 2 == 0 else Std("x0"),
            )
        )
    return out


def run_suite(engine, singles, batch):
    """One full pass: sequential executes plus one shared-scan batch."""
    results = [engine.execute(q) for q in singles]
    results.extend(engine.execute_many(batch))
    return results


def as_comparable(results):
    """(answers, report-dicts) in a form supporting exact == comparison."""
    answers = [repr(answer) for answer, _ in results]
    reports = [report.as_dict() for _, report in results]
    return answers, reports


def run_parallel_sweep():
    store, _ = build_world()
    singles = heavy_queries()
    batch = batch_queries()
    reference = None
    sweep = []
    for workers in WORKER_SWEEP:
        executor = ScanExecutor(workers)
        engine = ExactEngine(store, executor=executor)
        # Identity pass (also warms caches and the pool).
        results = run_suite(engine, singles, batch)
        comparable = as_comparable(results)
        if reference is None:
            reference = comparable
        else:
            assert comparable[0] == reference[0], (
                f"answers drifted at workers={workers}"
            )
            assert comparable[1] == reference[1], (
                f"cost reports drifted at workers={workers}"
            )
        trials = []
        for _ in range(N_TRIALS):
            gc.collect()
            gc.disable()
            try:
                _, seconds = wallclock(
                    lambda: run_suite(engine, singles, batch)
                )
            finally:
                gc.enable()
            trials.append(seconds)
        executor.close()
        stats = trial_stats(trials)
        sweep.append(
            {
                "workers": workers,
                "wall_sec_median": stats["median"],
                "wall_sec_iqr": stats["iqr"],
                "wall_sec_min": stats["min"],
                "trials": N_TRIALS,
            }
        )
    serial = next(s for s in sweep if s["workers"] == 1)
    for entry in sweep:
        entry["speedup"] = serial["wall_sec_median"] / entry["wall_sec_median"]
    return sweep


def test_e19_parallel(benchmark):
    sweep = benchmark.pedantic(run_parallel_sweep, rounds=1, iterations=1)
    headers = ["workers", "wall_sec_median", "wall_sec_iqr", "speedup"]
    rows = [
        [s["workers"], s["wall_sec_median"], s["wall_sec_iqr"], s["speedup"]]
        for s in sweep
    ]
    table = format_table(
        f"E19: parallel scan executor, {N_ROWS} rows x "
        f"{N_NODES * PARTS_PER_NODE} partitions ({HOST_CPUS} host CPUs)",
        headers,
        rows,
    )
    write_result(
        "e19_parallel",
        table,
        headers=headers,
        rows=rows,
        extra={"host_cpus": HOST_CPUS, "rows": N_ROWS},
    )
    record_parallel_benchmark(
        "e19_parallel",
        n_rows=N_ROWS,
        n_nodes=N_NODES,
        partitions=N_NODES * PARTS_PER_NODE,
        host_cpus=HOST_CPUS,
        byte_identical=True,  # asserted inside run_parallel_sweep
        speedup_gated=REQUIRE_SPEEDUP,
        sweep=sweep,
    )
    best = max(sweep, key=lambda s: s["workers"])
    benchmark.extra_info["host_cpus"] = HOST_CPUS
    benchmark.extra_info["speedup_at_max_workers"] = best["speedup"]
    if REQUIRE_SPEEDUP and best["workers"] >= 4 and N_ROWS >= 1_000_000:
        assert best["speedup"] >= MIN_SPEEDUP, (
            f"workers={best['workers']} ran only {best['speedup']:.2f}x "
            f"faster than serial on {HOST_CPUS} CPUs "
            f"(gate: >={MIN_SPEEDUP}x)"
        )
