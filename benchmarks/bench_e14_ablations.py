"""E14 — ablations over the agent's design choices (DESIGN.md section 4).

Three sweeps on the same workload:

* quantization granularity (``n_quanta``/``max_quanta``) — RT1.3 asks to
  "concurrently optimize query space quantization and system-answer
  error": too few quanta underfit, too many starve each quantum of
  training pairs;
* answer-model family — constant vs linear vs quadratic (RT3.3);
* error threshold tau — the accuracy/coverage dial: how much of the
  workload goes data-less vs how accurate the served answers are.
"""

import numpy as np

from repro.baselines import ExactEngine
from repro.core import AgentConfig, SEAAgent

from conftest import build_world, standard_workload
from harness import format_table, write_result

N_QUERIES = 900
BUDGET = 400


def run_one(table, store, **config_kwargs):
    defaults = dict(training_budget=BUDGET, error_threshold=0.2)
    defaults.update(config_kwargs)
    agent = SEAAgent(ExactEngine(store), AgentConfig(**defaults))
    workload = standard_workload(table, seed=51)
    errors = []
    for query in workload.batch(N_QUERIES):
        record = agent.submit(query)
        if record.mode == "predicted":
            truth = query.evaluate(table)
            errors.append(abs(record.answer - truth) / max(abs(truth), 1.0))
    stats = agent.stats()
    med = float(np.median(errors)) if errors else float("nan")
    return stats["dataless_fraction"], med, stats["state_bytes"]


def run_ablations():
    store, table = build_world(n_rows=40_000)
    rows = []
    for n_quanta, max_quanta in ((1, 1), (4, 8), (8, 32), (32, 128)):
        frac, err, state = run_one(
            table, store, n_quanta=n_quanta, max_quanta=max_quanta
        )
        rows.append([f"quanta={n_quanta}/{max_quanta}", frac, err, state])
    for family in ("mean", "linear", "quadratic"):
        frac, err, state = run_one(table, store, model_family=family)
        rows.append([f"family={family}", frac, err, state])
    for tau in (0.05, 0.1, 0.2, 0.4):
        frac, err, state = run_one(table, store, error_threshold=tau)
        rows.append([f"tau={tau}", frac, err, state])
    return rows


def test_e14_ablations(benchmark):
    rows = benchmark.pedantic(run_ablations, rounds=1, iterations=1)
    headers = ["configuration", "dataless_frac", "median_rel_err", "state_bytes"]
    table = format_table(
        "E14: agent ablations (coverage / served accuracy / state)",
        headers,
        rows,
    )
    write_result("e14_ablations", table, headers=headers, rows=rows)
    by_name = {r[0]: r for r in rows}
    # Coverage rises monotonically with tau (looser gate serves more)...
    taus = [by_name[f"tau={t}"][1] for t in (0.05, 0.1, 0.2, 0.4)]
    assert all(b >= a - 1e-9 for a, b in zip(taus, taus[1:]))
    # ...and the gate is honest: served median error stays within ~2x of
    # the promised threshold at every tau that served anything.
    for tau in (0.1, 0.2, 0.4):
        frac, err = by_name[f"tau={tau}"][1], by_name[f"tau={tau}"][2]
        if frac > 0 and np.isfinite(err):
            assert err <= 2 * tau, (tau, err)
    # ...and a moderate codebook beats a single global quantum on coverage.
    assert by_name["quanta=8/32"][1] >= by_name["quanta=1/1"][1]
    benchmark.extra_info["tau_coverage_curve"] = taus
