"""E24 — open-loop serving through the async multi-tenant gateway.

E3 measured *closed-loop* batched-vs-sequential serving.  This
experiment measures what the paper's Sec. II.A story actually needs: a
serving front door under **open-loop** load, where requests arrive on a
fixed Poisson schedule whether or not earlier ones finished.  Two
tenants share one cluster through a :class:`~repro.serve.ServingGateway`
and the offered rate sweeps from well under to well over the direct
sequential service rate (factors of the measured direct throughput, so
the sweep lands the same way on any host):

* at **low rate** the adaptive batcher collapses to pass-through and the
  gateway's p50 must stay within 5% of a direct ``agent.submit`` —
  batching must cost nothing when it buys nothing;
* at **high rate** micro-batching and typed admission control take over:
  goodput (within-deadline answers per second) must beat an open-loop
  sequential baseline — simulated from *measured* per-query direct
  service times via the FIFO recurrence ``finish_i = max(arrival_i,
  finish_{i-1}) + s_i``, with service measured before *and* after the
  gateway phase so host-speed drift cancels — by >= 2x, with p99
  bounded by deadline-feasibility shedding and ``queue_full``
  rejections instead of an unbounded queue.

Every trial asserts the byte-identity contract: each tenant's gateway
answers equal a fresh warmed reference agent replaying that tenant's
queries sequentially in the gateway's serving order (answers, modes and
simulated costs all equal).

Scale via ``E24_ROWS`` / ``E24_REQUESTS`` / ``E24_TRIALS`` /
``E24_RATE_FACTORS`` (the CI smoke job runs reduced).  The median sweep
lands in the cumulative repo-root ``BENCH_serving_gateway.json``.
"""

import asyncio
import gc
import os
import time

import numpy as np

from repro.common.errors import AdmissionRejectedError
from repro.core import AgentConfig, SEAAgent
from repro.data import gaussian_mixture_table
from repro.serve import GatewayConfig, ServingGateway
from repro.session import SEASession

from conftest import standard_workload
from harness import (
    format_table,
    record_serving_gateway_benchmark,
    trial_stats,
    write_result,
)
from loadgen import LatencyRecorder, poisson_schedule

N_ROWS = int(os.environ.get("E24_ROWS", "20000"))
N_REQUESTS = int(os.environ.get("E24_REQUESTS", "400"))
N_TRIALS = int(os.environ.get("E24_TRIALS", "3"))
RATE_FACTORS = tuple(
    float(f)
    for f in os.environ.get("E24_RATE_FACTORS", "0.25,1.0,8.0").split(",")
)
N_WARM = 2 * N_REQUESTS
TRAINING_BUDGET = min(200, max(30, N_WARM // 7))
TENANTS = ("alice", "bob")
FULL_SCALE = N_ROWS >= 20_000 and N_REQUESTS >= 400


def _agent_config():
    return AgentConfig(training_budget=TRAINING_BUDGET, error_threshold=0.2)


def _warm(agent, warm_queries):
    """Converge an agent on the warm wave, then freeze learning."""
    agent.submit_batch(warm_queries)
    agent.config.keep_learning_on_fallback = False
    return agent


def _measure_direct(session, warm_queries, serve_queries):
    """Per-query direct ``submit`` seconds on a fresh warmed agent.

    Tight-loop, gc off: the *service demand* of each query, used to
    calibrate the rate sweep and to drive the sequential open-loop
    simulation (optimistic for the baseline, so conservative for the
    gateway's goodput gate).
    """
    agent = _warm(SEAAgent(session.engine, _agent_config()), warm_queries)
    seconds = []
    gc.collect()
    gc.disable()
    try:
        for query in serve_queries:
            t0 = time.perf_counter()
            agent.submit(query)
            seconds.append(time.perf_counter() - t0)
    finally:
        gc.enable()
    return seconds


def _paced_direct(session, warm_queries, schedule):
    """Direct ``agent.submit`` latencies under the *same* open-loop pacing.

    The honest comparator for the pass-through p50 gate: a plain agent
    fed the identical Poisson schedule with sleep-pacing, so both sides
    pay the same cold-cache and allocator effects that inter-arrival
    idle time causes.  A tight-loop baseline runs artificially hot and
    would make any front door — even a zero-cost one — look slow.
    """
    agent = _warm(SEAAgent(session.engine, _agent_config()), warm_queries)
    start = time.perf_counter()
    latencies = []
    for req in schedule:
        delay = start + req.arrival - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        t0 = time.perf_counter()
        agent.submit(req.payload)
        latencies.append(time.perf_counter() - t0)
    return latencies


def _sequential_open_loop(schedule, service_seconds):
    """Simulate a sequential FIFO server against the same arrivals.

    The honest baseline: one server, no batching, no admission control,
    every request eventually served.  ``finish_i = max(arrival_i,
    finish_{i-1}) + s_i``; goodput counts only within-deadline finishes.
    """
    finish = 0.0
    in_deadline = 0
    latencies = []
    for req, service in zip(schedule, service_seconds):
        finish = max(req.arrival, finish) + service
        latencies.append(finish - req.arrival)
        if finish <= req.deadline:
            in_deadline += 1
    makespan = finish if finish > 0 else 1e-9
    return {
        "goodput_qps": in_deadline / makespan,
        "in_deadline": in_deadline,
        "p50_ms": float(np.percentile(latencies, 50)) * 1e3,
        "p99_ms": float(np.percentile(latencies, 99)) * 1e3,
    }


async def _drive(gateway, schedule):
    """Fire the schedule open-loop at the gateway; gather outcomes."""
    recorder = LatencyRecorder()
    answers = {}
    start = time.monotonic()

    async def fire(req):
        tenant = TENANTS[req.index % len(TENANTS)]
        delay = start + req.arrival - time.monotonic()
        if delay > 0:
            await asyncio.sleep(delay)
        issued = time.monotonic()
        try:
            answer = await gateway.submit(
                req.payload, tenant=tenant, deadline=start + req.deadline
            )
        except AdmissionRejectedError as exc:
            recorder.rejected(exc.reason)
            return
        done = time.monotonic()
        recorder.ok(done - issued, done <= start + req.deadline)
        answers[id(req.payload)] = answer

    async with gateway:
        await asyncio.gather(*(fire(req) for req in schedule))
        makespan = time.monotonic() - start
        stats = gateway.stats()
    return recorder, answers, makespan, stats


def _assert_byte_identity(session, gateway, warm_queries, answers):
    """Gateway answers == sequential replay in gateway serving order."""
    for tenant in TENANTS:
        handle = gateway.tenant(tenant)
        if not handle.served_queries:
            continue
        reference = _warm(
            SEAAgent(session.engine, _agent_config()), warm_queries
        )
        for query in handle.served_queries:
            expected = reference.submit(query)
            got = answers[id(query)]
            assert got.mode == expected.mode, (tenant, got.mode, expected.mode)
            assert np.array_equal(
                np.asarray(got.value, dtype=float),
                np.asarray(expected.answer, dtype=float),
            ), (tenant, got.value, expected.answer)
            assert got.cost.__dict__ == expected.cost.__dict__


def _run_rate(session, workload, warm_queries, factor, seed):
    serve_queries = workload.batch(N_REQUESTS)
    direct_seconds = _measure_direct(session, warm_queries, serve_queries)
    direct_p50 = float(np.percentile(direct_seconds, 50))
    direct_qps = len(direct_seconds) / sum(direct_seconds)
    rate = factor * direct_qps
    # Tight enough that a sustained-overload backlog blows through it
    # (the sequential baseline must actually *miss* deadlines at high
    # rate), loose enough that scheduler jitter never sheds a
    # pass-through request at low rate.
    deadline = max(0.02, 50.0 * direct_p50)
    schedule = poisson_schedule(
        N_REQUESTS, rate, deadline, seed=seed, payloads=serve_queries
    )
    sequential = _sequential_open_loop(schedule, direct_seconds)
    # The paced baseline only matters where the pass-through gate
    # applies; at overload it would just re-measure the (simulated)
    # sequential collapse at real-time cost.  One half runs before the
    # gateway and one after, pooled, so slow drift in host speed over
    # the trial cancels out of the comparison.
    paced = (
        _paced_direct(session, warm_queries, schedule) if factor <= 0.5 else []
    )

    gateway = ServingGateway(
        session,
        GatewayConfig(
            # Deep enough to absorb the whole burst: with feasibility
            # shedding, deadline-infeasible entries become fast typed
            # rejections at dispatch time, so a deep queue costs no
            # late answers — it lets the scheduler pick the servable
            # subset instead of refusing work the batcher could have
            # amortised.  ``queue_full`` remains the hard bound.
            queue_capacity=max(32, N_REQUESTS),
            max_batch=32,
            default_timeout=deadline,
        ),
        agent_config=_agent_config(),
        own_session=False,  # one session serves the whole sweep
    )
    for tenant in TENANTS:
        _warm(gateway.tenant(tenant).agent, warm_queries)
    gc.collect()
    recorder, answers, makespan, stats = asyncio.run(
        _drive(gateway, schedule)
    )
    if paced:
        paced.extend(_paced_direct(session, warm_queries, schedule))
    paced_p50 = float(np.percentile(paced, 50)) if paced else 0.0
    _assert_byte_identity(session, gateway, warm_queries, answers)

    # Bracket the simulated baseline the same way the paced one is:
    # re-measure direct service *after* the gateway phase and average
    # the two FIFO simulations, so host-speed drift between calibration
    # and the real-time gateway run cancels out of the goodput ratio.
    sequential_after = _sequential_open_loop(
        schedule, _measure_direct(session, warm_queries, serve_queries)
    )
    seq_goodput = 0.5 * (
        sequential["goodput_qps"] + sequential_after["goodput_qps"]
    )
    seq_p99 = 0.5 * (sequential["p99_ms"] + sequential_after["p99_ms"])

    summary = recorder.summary(makespan)
    served = max(1, stats["served_total"])
    return {
        "rate_factor": factor,
        "offered_qps": rate,
        "direct_p50_ms": direct_p50 * 1e3,
        "direct_paced_p50_ms": paced_p50 * 1e3,
        "direct_qps": direct_qps,
        "deadline_ms": deadline * 1e3,
        "sequential_goodput_qps": seq_goodput,
        "sequential_p99_ms": seq_p99,
        "goodput_qps": summary["goodput_qps"],
        "p50_ms": summary["p50_ms"],
        "p90_ms": summary["p90_ms"],
        "p99_ms": summary["p99_ms"],
        "latency_iqr_ms": summary["latency_iqr_ms"],
        "rejection_rate": summary["rejection_rate"],
        "completed": summary["completed"],
        "batched_fraction": stats["coalesced_total"] / served,
        "inline_fraction": stats["inline_total"] / served,
        "mean_batch": served / max(1, stats["batches_total"]),
    }


def run_sweep():
    session = SEASession(n_nodes=8)
    table = gaussian_mixture_table(
        N_ROWS, dims=("x0", "x1"), seed=1, name="data", value_bytes=8
    )
    session.load_table(table)
    workload = standard_workload(table, seed=11)
    warm_queries = workload.batch(N_WARM)

    per_rate = {factor: [] for factor in RATE_FACTORS}
    for trial in range(N_TRIALS):
        for i, factor in enumerate(RATE_FACTORS):
            result = _run_rate(
                session, workload, warm_queries, factor, seed=trial * 97 + i
            )
            per_rate[factor].append(result)

    sweep = []
    for factor in RATE_FACTORS:
        trials = per_rate[factor]
        medianed = {
            key: trial_stats([t[key] for t in trials])["median"]
            for key in trials[0]
        }
        medianed["goodput_iqr"] = trial_stats(
            [t["goodput_qps"] for t in trials]
        )["iqr"]
        sweep.append(medianed)
    session.close()
    return sweep


def test_e24_gateway(benchmark):
    sweep = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    headers = [
        "rate_factor", "offered_qps", "goodput_qps", "seq_goodput_qps",
        "p50_ms", "p99_ms", "reject_rate", "batched_frac",
    ]
    rows = [
        [
            s["rate_factor"], s["offered_qps"], s["goodput_qps"],
            s["sequential_goodput_qps"], s["p50_ms"], s["p99_ms"],
            s["rejection_rate"], s["batched_fraction"],
        ]
        for s in sweep
    ]
    table = format_table(
        "E24: open-loop gateway serving vs sequential baseline", headers, rows
    )
    low = sweep[0]
    high = sweep[-1]
    extra = {
        "rows": N_ROWS,
        "requests": N_REQUESTS,
        "trials": N_TRIALS,
        "tenants": len(TENANTS),
        "rate_factors": list(RATE_FACTORS),
        "sweep": sweep,
        "passthrough_p50_ratio": low["p50_ms"] / low["direct_paced_p50_ms"],
        "high_rate_goodput_qps": high["goodput_qps"],
        "high_rate_goodput_iqr": high["goodput_iqr"],
        "high_rate_goodput_vs_sequential": (
            high["goodput_qps"] / max(1e-9, high["sequential_goodput_qps"])
        ),
        "high_rate_p99_ms": high["p99_ms"],
        "high_rate_deadline_ms": high["deadline_ms"],
    }
    write_result("e24_gateway", table, headers=headers, rows=rows, extra=extra)
    record_serving_gateway_benchmark("e24_gateway", **extra)

    # Low rate: batching must shrink to pass-through — gateway p50 within
    # 5% of a direct agent.submit fed the same paced schedule.
    assert low["rate_factor"] <= 0.5
    assert extra["passthrough_p50_ratio"] <= 1.05, (
        f"pass-through p50 {low['p50_ms']:.3f}ms vs paced direct "
        f"{low['direct_paced_p50_ms']:.3f}ms"
    )
    assert low["rejection_rate"] == 0.0
    # High rate: goodput must beat the open-loop sequential baseline,
    # with the deadline + admission control bounding the tail.
    assert extra["high_rate_goodput_vs_sequential"] >= (
        2.0 if FULL_SCALE else 1.0
    ), (
        f"gateway goodput {high['goodput_qps']:.1f} q/s vs sequential "
        f"{high['sequential_goodput_qps']:.1f} q/s"
    )
    assert high["p99_ms"] <= 3.0 * high["deadline_ms"], (
        "admission control failed to bound the tail: "
        f"p99 {high['p99_ms']:.1f}ms vs deadline {high['deadline_ms']:.1f}ms"
    )
    if FULL_SCALE:
        # The crossover satellite: batching engages only under load.
        assert high["batched_fraction"] > low["batched_fraction"]
    benchmark.extra_info["goodput_vs_sequential"] = extra[
        "high_rate_goodput_vs_sequential"
    ]
    benchmark.extra_info["passthrough_p50_ratio"] = extra[
        "passthrough_p50_ratio"
    ]
