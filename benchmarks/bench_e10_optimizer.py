"""E10 — the learned optimizer (G5/G6) and regression-model selection ([48]).

Part A: log exhaustive executions of the E9-style task across random
selectivities, train the CART selector on half, and evaluate accuracy and
regret on the other half against the oracle and against both fixed
policies ("always MapReduce" / "always coordinator").

Part B: per-quantum regression model selection — after training a
data-less predictor, cross-validate model families per quantum and
re-fit each quantum with its winner; report the accuracy gained.
"""

import numpy as np

from repro.bigdataless import AdHocMLEngine, DistributedGridIndex
from repro.core import AnswerModelFactory, DatalessPredictor, QuerySpaceQuantizer
from repro.optimizer import (
    CostModelSelector,
    ExecutionLog,
    LearnedSelector,
    TaskFeatures,
    apply_per_quantum_selection,
    synopsis_estimates,
)
from repro.queries import RangeSelection

from conftest import build_world, standard_workload
from harness import format_table, write_result

N_LOGGED = 90


def collect_log(store, table, engine, seed):
    rng = np.random.default_rng(seed)
    log = ExecutionLog()
    n_nodes = len(store.topology)
    synopses = store.synopses("data")
    for _ in range(N_LOGGED):
        width = float(10 ** rng.uniform(0.3, 2.0))  # 2..100
        lo = rng.uniform(0.0, max(0.1, 100.0 - width), size=2)
        hi = np.minimum(lo + width, 100.0)
        selection = RangeSelection(("x0", "x1"), lo, hi)
        selectivity = float(selection.mask(table).mean())
        est_sel, scan_frac = synopsis_estimates(synopses, selection)
        _, full_report = engine.gather("data", selection, method="fullscan")
        _, index_report = engine.gather("data", selection, method="index")
        features = TaskFeatures.for_subspace_aggregate(
            table.n_rows,
            selectivity,
            2,
            n_nodes,
            est_selectivity=est_sel,
            scan_fraction=scan_frac,
        )
        log.record(
            features,
            {
                "mapreduce": full_report.elapsed_sec,
                "coordinator": index_report.elapsed_sec,
            },
        )
    return log


def run_optimizer():
    store, table = build_world(n_rows=40_000, value_bytes=2048)
    index = DistributedGridIndex(store, "data", ("x0", "x1"), cells_per_dim=32)
    index.build()
    engine = AdHocMLEngine(store, index)
    train_log = collect_log(store, table, engine, seed=1)
    test_log = collect_log(store, table, engine, seed=2)
    selector = LearnedSelector(max_depth=4).fit(train_log)
    metrics = selector.evaluate(test_log)
    cost_model = CostModelSelector(max_depth=4).fit(train_log)
    cost_metrics = cost_model.evaluate(test_log)

    selector_rows = [
        ["learned-classifier", metrics["accuracy"], metrics["mean_regret"]],
        ["learned-cost-model", cost_metrics["accuracy"],
         cost_metrics["mean_regret"]],
        ["always_mapreduce", None, metrics["regret_always_mapreduce"]],
        ["always_coordinator", None, metrics["regret_always_coordinator"]],
    ]

    # Part B: model selection per quantum.
    workload = standard_workload(table, seed=17)
    queries = workload.batch(900)
    answers = [q.evaluate(table) for q in queries]

    def eval_predictor(predictor, eval_queries, eval_answers):
        errors = []
        for query, answer in zip(eval_queries, eval_answers):
            prediction = predictor.predict(query.vector())
            errors.append(
                abs(prediction.scalar - answer) / max(abs(answer), 1.0)
            )
        return float(np.median(errors))

    family_rows = []
    chosen = {}
    for family in ("mean", "linear", "quadratic"):
        predictor = DatalessPredictor(
            quantizer=QuerySpaceQuantizer(n_quanta=8, grow_threshold=2.0,
                                          max_quanta=32),
            factory=AnswerModelFactory(family),
        )
        for query, answer in zip(queries[:700], answers[:700]):
            predictor.observe(query.vector(), answer)
        family_rows.append(
            [f"fixed:{family}",
             eval_predictor(predictor, queries[700:], answers[700:])]
        )
        if family == "mean":
            # Upgrade the weakest fixed family with per-quantum selection.
            chosen = apply_per_quantum_selection(
                predictor, families=("mean", "linear", "quadratic")
            )
            family_rows.append(
                ["auto-selected",
                 eval_predictor(predictor, queries[700:], answers[700:])]
            )
    return selector_rows, family_rows, metrics, chosen


def test_e10_learned_optimizer(benchmark):
    selector_rows, family_rows, metrics, chosen = benchmark.pedantic(
        run_optimizer, rounds=1, iterations=1
    )
    table_a = format_table(
        "E10a: learned method selector vs fixed policies (held-out tasks)",
        ["policy", "accuracy", "mean_regret"],
        selector_rows,
    )
    table_b = format_table(
        "E10b: per-quantum regression-model selection (median rel. error)",
        ["predictor", "median_rel_err"],
        family_rows,
    )
    write_result(
        "e10_optimizer",
        table_a + "\n" + table_b,
        extra={
            "selector": {
                "headers": ["policy", "accuracy", "mean_regret"],
                "rows": selector_rows,
            },
            "families": {
                "headers": ["predictor", "median_rel_err"],
                "rows": family_rows,
            },
        },
    )
    assert metrics["accuracy"] > 0.8
    assert metrics["mean_regret"] <= metrics["regret_always_mapreduce"]
    assert metrics["mean_regret"] <= metrics["regret_always_coordinator"]
    errors = dict(family_rows)
    # Auto-selection rescues the weak constant-model configuration.
    assert errors["auto-selected"] < errors["fixed:mean"]
    # And lands within reach of the best fixed family.
    best_fixed = min(v for k, v in errors.items() if k.startswith("fixed:"))
    assert errors["auto-selected"] < best_fixed * 3
    assert len(chosen) > 0
    benchmark.extra_info["selector_accuracy"] = metrics["accuracy"]
