"""E6 — kNN: coordinator-cohort + index vs MapReduce scan ([31]-[33]).

"Our work [33] introduced performance improvements of three orders of
magnitude utilising novel indexes and appropriate distribution processing
paradigms."  Reproduced shape: the baseline scans every partition of the
table for every query; the coordinator reads only candidate cells around
the query point, so the gap grows with table size and shrinks only mildly
with k.
"""

import numpy as np

from repro.bigdataless import CoordinatorKNN, DistributedGridIndex, KNNBaseline
from repro.cluster import ClusterTopology, DistributedStore
from repro.data import gaussian_mixture_table

from harness import format_table, write_result

SIZES = (10_000, 40_000, 160_000)
KS = (1, 10, 100)
QUERIES_PER_CONFIG = 5


def run_knn():
    rows = []
    rng = np.random.default_rng(0)
    for n_rows in SIZES:
        topo = ClusterTopology.single_datacenter(8)
        store = DistributedStore(topo)
        table = gaussian_mixture_table(
            n_rows, dims=("x0", "x1"), seed=3, name="pts", value_bytes=128
        )
        store.put_table(table, partitions_per_node=2)
        index = DistributedGridIndex(store, "pts", ("x0", "x1"), cells_per_dim=32)
        index.build()
        baseline = KNNBaseline(store, ("x0", "x1"))
        coordinator = CoordinatorKNN(store, index)
        points = table.matrix(("x0", "x1"))
        for k in KS:
            base_time, coord_time = [], []
            base_bytes, coord_bytes = [], []
            for _ in range(QUERIES_PER_CONFIG):
                query_point = points[int(rng.integers(n_rows))] + rng.normal(
                    scale=1.0, size=2
                )
                base_result, base_report = baseline.query("pts", query_point, k)
                coord_result, coord_report = coordinator.query(
                    "pts", query_point, k
                )
                assert np.allclose(
                    np.sort(base_result.column("_dist")),
                    np.sort(coord_result.column("_dist")),
                )
                base_time.append(base_report.elapsed_sec)
                coord_time.append(coord_report.elapsed_sec)
                base_bytes.append(base_report.bytes_scanned)
                coord_bytes.append(coord_report.bytes_scanned)
            rows.append(
                [
                    n_rows,
                    k,
                    float(np.mean(base_time)) / float(np.mean(coord_time)),
                    float(np.mean(base_bytes)) / max(1.0, float(np.mean(coord_bytes))),
                ]
            )
    return rows


def test_e06_knn(benchmark):
    rows = benchmark.pedantic(run_knn, rounds=1, iterations=1)
    headers = ["rows", "k", "time_x", "scan_bytes_x"]
    table = format_table(
        "E6: kNN speedups (MapReduce baseline / coordinator-cohort)",
        headers,
        rows,
    )
    write_result("e06_knn", table, headers=headers, rows=rows)
    for row in rows:
        assert row[2] > 1.0, f"coordinator must win: {row}"
        assert row[3] > 1.0
    # Gap grows with table size at fixed k.
    k10 = {r[0]: r[3] for r in rows if r[1] == 10}
    assert k10[SIZES[-1]] > k10[SIZES[0]]
    benchmark.extra_info["bytes_ratio_at_largest_k10"] = k10[SIZES[-1]]
