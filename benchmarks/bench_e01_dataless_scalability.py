"""E1 — Fig.1 vs Fig.2: query cost vs data size under both paradigms.

Reproduces the paper's central architectural claim (Sec. III.B): exact
BDAS processing cost grows with data size and touches every data node,
while the data-less agent's serving cost is "de facto insensitive to data
sizes" and touches none.
"""

import numpy as np

from repro.baselines import ExactEngine
from repro.core import AgentConfig, SEAAgent

from repro.obs import StackObserver

from conftest import build_world, standard_workload
from harness import format_table, metrics_snapshot, write_result

SIZES = (10_000, 50_000, 400_000)


def run_scalability():
    rows = []
    snapshot = {}
    for n_rows in SIZES:
        # 512-byte values model wide analytical records (payload columns
        # ride along with the queried dimensions).
        store, table = build_world(n_rows=n_rows, value_bytes=512)
        agent = SEAAgent(
            ExactEngine(store),
            AgentConfig(training_budget=300, error_threshold=0.2),
        )
        if n_rows == SIZES[-1]:
            # Per-query phase/byte telemetry for the largest deployment
            # rides along in the machine-readable result.
            agent.attach_observer(StackObserver())
        workload = standard_workload(table)
        for query in workload.batch(700):
            agent.submit(query)
        exact = [r.cost for r in agent.history if r.mode != "predicted"]
        predicted = [r.cost for r in agent.history if r.mode == "predicted"]
        if not predicted:
            continue
        rows.append(
            [
                n_rows,
                float(np.mean([c.elapsed_sec for c in exact])),
                float(np.mean([c.elapsed_sec for c in predicted])),
                float(np.mean([c.elapsed_sec for c in exact]))
                / float(np.mean([c.elapsed_sec for c in predicted])),
                float(np.mean([c.nodes_touched for c in exact])),
                float(np.mean([c.nodes_touched for c in predicted])),
                float(np.mean([c.bytes_scanned for c in exact])),
                0.0,
            ]
        )
        snapshot = metrics_snapshot(agent.observer) or snapshot
    return rows, snapshot


def test_e01_dataless_scalability(benchmark):
    rows, snapshot = benchmark.pedantic(run_scalability, rounds=1, iterations=1)
    headers = [
        "rows",
        "exact_sec",
        "dataless_sec",
        "speedup",
        "exact_nodes",
        "dataless_nodes",
        "exact_bytes",
        "dataless_bytes",
    ]
    table = format_table(
        "E1: exact (Fig.1) vs data-less (Fig.2) per-query cost vs data size",
        headers,
        rows,
    )
    write_result(
        "e01_dataless_scalability", table, headers=headers, rows=rows,
        extra={"metrics": snapshot},
    )
    benchmark.extra_info["metrics"] = snapshot
    assert len(rows) == len(SIZES)
    # Exact latency grows with data; data-less latency stays flat.
    exact_latencies = [r[1] for r in rows]
    dataless_latencies = [r[2] for r in rows]
    assert exact_latencies[-1] > exact_latencies[0] * 2
    assert dataless_latencies[-1] < dataless_latencies[0] * 1.5
    # Data-less queries touch zero data nodes and scan zero bytes.
    assert all(r[5] <= 1.0 for r in rows)
    assert all(r[7] == 0.0 for r in rows)
    # Speedup widens with scale (the "orders of magnitude" shape).
    assert rows[-1][3] > rows[0][3]
    benchmark.extra_info["speedup_at_largest"] = rows[-1][3]
