"""E23 — durable streaming ingestion: throughput vs bounded staleness.

DESIGN §13: writes land in a checksummed WAL plus per-partition deltas
(immediately readable), and a background compactor folds them into the
base images at every epoch boundary.  The design trades write-path work
for a *bounded* staleness window: a staged write waits at most
``epoch_seconds`` of simulated time before it is compacted, synopsis- and
columnar-maintained, and again prunable.

This experiment drives a sustained mixed read/write workload over a
sweep of epoch lengths and measures what that contract costs:

* **Staleness bound (always asserted):** for every append, the simulated
  delay between the write and the epoch close that compacted it must be
  ``<= epoch_seconds``.  This is the experiment's correctness gate and
  what the CI smoke run checks.
* **Byte-identity (always asserted):** after the run, the ingest store's
  merged image must equal, element for element, a legacy synchronous
  store that applied the same writes — durability machinery must never
  change an answer.
* **Throughput:** wall-clock rows/s through the write path and
  queries/s for the interleaved reads, per epoch length.  Longer epochs
  amortize compaction over more writes (higher write throughput, staler
  reads); shorter epochs invert the trade.
* **WAL economics:** bytes synced, bytes reclaimed by pruning, and the
  high-water durable log size per epoch length.

The cumulative ``BENCH_ingest.json`` trajectory stores medians + IQRs
per epoch length plus the scale knobs and ``host_cpus``.  Scale via
``E23_ROWS`` / ``E23_EPOCHS`` / ``E23_BATCH`` / ``E23_EPOCH_SWEEP``.
"""

import gc
import os

import numpy as np

from repro.baselines import ExactEngine
from repro.cluster import ClusterTopology, DistributedStore
from repro.data import gaussian_mixture_table
from repro.data.tabular import Table
from repro.ingest import IngestConfig
from repro.queries import AnalyticsQuery, Count, Mean, RangeSelection, Std

from harness import (
    format_table,
    record_ingest_benchmark,
    trial_stats,
    wallclock,
    write_result,
)

N_ROWS = int(os.environ.get("E23_ROWS", 300_000))
N_NODES = int(os.environ.get("E23_NODES", 8))
PARTS_PER_NODE = int(os.environ.get("E23_PARTS_PER_NODE", 2))
N_EPOCHS = int(os.environ.get("E23_EPOCHS", 12))
BATCH_ROWS = int(os.environ.get("E23_BATCH", 1_500))
READS_PER_EPOCH = int(os.environ.get("E23_READS", 3))
N_TRIALS = int(os.environ.get("E23_TRIALS", 3))
EPOCH_SWEEP = tuple(
    float(e) for e in os.environ.get("E23_EPOCH_SWEEP", "0.25,1.0,4.0").split(",")
)
HOST_CPUS = os.cpu_count() or 1
SEED = 23  # pinned: the trajectory compares identical workloads
COLUMNS = ("x0", "x1")


def base_table() -> Table:
    return gaussian_mixture_table(
        N_ROWS, dims=COLUMNS, seed=SEED, name="data"
    )


def write_batches():
    """One deterministic append batch per epoch (plus a delete cadence)."""
    rng = np.random.default_rng(SEED + 1)
    batches = []
    for _ in range(N_EPOCHS):
        batches.append(
            Table(
                {
                    "x0": rng.uniform(0.0, 100.0, BATCH_ROWS),
                    "x1": rng.uniform(0.0, 100.0, BATCH_ROWS),
                    "value": rng.normal(50.0, 10.0, BATCH_ROWS),
                },
                name="data",
            )
        )
    return batches


def read_queries():
    cuts = [
        RangeSelection(COLUMNS, [10.0, 10.0], [60.0, 60.0]),
        RangeSelection(COLUMNS, [0.0, 0.0], [100.0, 45.0]),
        RangeSelection(COLUMNS, [70.0, 20.0], [95.0, 80.0]),
    ]
    aggs = [Count(), Mean("value"), Std("x0")]
    return [
        AnalyticsQuery("data", cuts[i % len(cuts)], aggs[i % len(aggs)])
        for i in range(READS_PER_EPOCH)
    ]


def delete_predicate(epoch: int):
    lo = float((epoch * 7) % 90)
    return lambda t: (t.column("x0") > lo) & (t.column("x0") < lo + 0.5)


def run_mixed_workload(epoch_seconds: float):
    """One full mixed run; returns (measurements, final image, answers)."""
    store = DistributedStore(
        ClusterTopology.single_datacenter(N_NODES)
    )
    store.put_table(base_table(), partitions_per_node=PARTS_PER_NODE)
    pipeline = store.enable_ingest(IngestConfig(epoch_seconds=epoch_seconds))
    engine = ExactEngine(store)
    queries = read_queries()

    # Staleness audit: write clock of every staged-but-uncompacted batch,
    # drained by the epoch listener at each close.
    waiting = []
    staleness = []

    def on_epoch(summary):
        close_clock = summary["clock"]
        while waiting:
            staleness.append(close_clock - waiting.pop(0))

    pipeline.on_epoch(on_epoch)

    answers = []
    for epoch, batch in enumerate(write_batches()):
        pipeline.append("data", batch)
        waiting.append(pipeline.clock)
        if epoch % 3 == 2:
            pipeline.delete("data", delete_predicate(epoch))
        for query in queries:
            value, _ = engine.execute(query)
            answers.append(repr(value))
        pipeline.advance(epoch_seconds)
    pipeline.flush()
    assert pipeline.pending_delta_rows == 0
    assert not waiting, "an epoch close left staged writes unaccounted"

    measurements = {
        "staleness_max": max(staleness),
        "staleness_mean": float(np.mean(staleness)),
        "epochs_closed": pipeline.n_epochs_closed,
        "compactions": pipeline.n_compactions,
        "wal_high_water_bytes": pipeline.wal.high_water_bytes,
        "wal_final_bytes": pipeline.wal.disk_bytes,
        "wal_syncs": pipeline.wal.n_syncs,
    }
    return measurements, store.table("data").full_table(), answers


def reference_image():
    """The same writes through the legacy synchronous path."""
    store = DistributedStore(ClusterTopology.single_datacenter(N_NODES))
    store.put_table(base_table(), partitions_per_node=PARTS_PER_NODE)
    for epoch, batch in enumerate(write_batches()):
        store.append_rows("data", batch)
        if epoch % 3 == 2:
            store.delete_rows("data", delete_predicate(epoch))
    return store.table("data").full_table()


def images_equal(a: Table, b: Table) -> bool:
    if a.n_rows != b.n_rows or a.column_names != b.column_names:
        return False
    return all(
        np.array_equal(a.column(c), b.column(c), equal_nan=True)
        for c in a.column_names
    )


def run_epoch_sweep():
    reference = reference_image()
    reference_answers = None
    sweep = []
    total_written = N_EPOCHS * BATCH_ROWS
    total_reads = N_EPOCHS * READS_PER_EPOCH
    for epoch_seconds in EPOCH_SWEEP:
        trials = []
        measurements = None
        for _ in range(N_TRIALS):
            gc.collect()
            gc.disable()
            try:
                (measurements, image, answers), seconds = wallclock(
                    lambda: run_mixed_workload(epoch_seconds)
                )
            finally:
                gc.enable()
            trials.append(seconds)
            # The staleness contract and byte-identity gate every trial.
            assert measurements["staleness_max"] <= epoch_seconds + 1e-9, (
                f"staleness {measurements['staleness_max']} exceeded the "
                f"configured bound {epoch_seconds}"
            )
            assert images_equal(image, reference), (
                f"ingest image diverged from the synchronous reference at "
                f"epoch_seconds={epoch_seconds}"
            )
            if reference_answers is None:
                reference_answers = answers
            else:
                assert answers == reference_answers, (
                    f"interleaved reads drifted at epoch_seconds={epoch_seconds}"
                )
        stats = trial_stats(trials)
        rate_stats = trial_stats([total_written / t for t in trials])
        entry = {
            "epoch_seconds": epoch_seconds,
            "wall_sec_median": stats["median"],
            "wall_sec_iqr": stats["iqr"],
            "write_rows_per_sec": rate_stats["median"],
            # Per-trial spread, not a first-order estimate: the sentinel
            # widens its tolerance band by this, so a run on a loaded box
            # carries its own noise floor.
            "write_rows_per_sec_iqr": rate_stats["iqr"],
            "reads_per_sec": total_reads / stats["median"],
            "trials": N_TRIALS,
        }
        entry.update(measurements)
        sweep.append(entry)
    return sweep


def test_e23_ingest(benchmark):
    sweep = benchmark.pedantic(run_epoch_sweep, rounds=1, iterations=1)
    headers = [
        "epoch_seconds",
        "wall_sec_median",
        "write_rows_per_sec",
        "reads_per_sec",
        "staleness_max",
        "compactions",
        "wal_high_water_bytes",
    ]
    rows = [[entry[h] for h in headers] for entry in sweep]
    table = format_table(
        f"E23: durable ingest, {N_ROWS} base rows + "
        f"{N_EPOCHS}x{BATCH_ROWS} appended over "
        f"{N_NODES * PARTS_PER_NODE} partitions ({HOST_CPUS} host CPUs)",
        headers,
        rows,
    )
    write_result(
        "e23_ingest",
        table,
        headers=headers,
        rows=rows,
        extra={
            "host_cpus": HOST_CPUS,
            "rows": N_ROWS,
            "epochs": N_EPOCHS,
            "batch_rows": BATCH_ROWS,
            "reads_per_epoch": READS_PER_EPOCH,
        },
    )
    record_ingest_benchmark(
        "e23_ingest",
        n_rows=N_ROWS,
        n_nodes=N_NODES,
        partitions=N_NODES * PARTS_PER_NODE,
        epochs=N_EPOCHS,
        batch_rows=BATCH_ROWS,
        reads_per_epoch=READS_PER_EPOCH,
        byte_identical=True,  # asserted per trial in run_epoch_sweep
        staleness_bounded=True,  # asserted per trial in run_epoch_sweep
        sweep=sweep,
    )
    best = max(sweep, key=lambda s: s["write_rows_per_sec"])
    benchmark.extra_info["host_cpus"] = HOST_CPUS
    benchmark.extra_info["best_write_rows_per_sec"] = best["write_rows_per_sec"]
    benchmark.extra_info["staleness_max"] = max(
        s["staleness_max"] for s in sweep
    )
