"""E15 — raw-data analytics via adaptive indexing (RT2.3, extension).

"This thread will centre its attention on developing adaptive indexing
and caching techniques that operate on raw data and facilitate efficient
and scalable raw-data analyses."

A 50-query exploratory sequence over raw (unparsed) files, three ways:
cold scans (parse everything per query), eager ETL (wrangle everything
first), and adaptive cracking.  Reported: time to first insight, total
workload time, and the cracking engine's per-query cost trajectory.
"""

import numpy as np

from repro.bigdataless import (
    AdaptiveCrackingEngine,
    ColdScanEngine,
    EagerETLEngine,
    RawDataStore,
)
from repro.cluster import ClusterTopology

from harness import format_table, write_result

N_QUERIES = 50


def workload(rng):
    for _ in range(N_QUERIES):
        lo = float(rng.uniform(0, 900))
        yield lo, lo + float(rng.uniform(10, 100))


def run_raw():
    topo = ClusterTopology.single_datacenter(8)
    store = RawDataStore.synthetic(topo, 200_000, files_per_node=2, seed=7)
    truth = {}

    cold = ColdScanEngine(store)
    cold_costs = []
    for lo, hi in workload(np.random.default_rng(8)):
        count, report = cold.range_count(lo, hi)
        truth[(lo, hi)] = count
        cold_costs.append(report.elapsed_sec)

    eager = EagerETLEngine(store)
    etl_report = eager.etl()
    eager_costs = []
    for lo, hi in workload(np.random.default_rng(8)):
        count, report = eager.range_count(lo, hi)
        assert count == truth[(lo, hi)]
        eager_costs.append(report.elapsed_sec)

    cracking = AdaptiveCrackingEngine(store)
    crack_costs = []
    for lo, hi in workload(np.random.default_rng(8)):
        count, report = cracking.range_count(lo, hi)
        assert count == truth[(lo, hi)]
        crack_costs.append(report.elapsed_sec)

    rows = [
        [
            "cold-scan",
            cold_costs[0],
            float(np.sum(cold_costs)),
            cold_costs[-1],
            0,
        ],
        [
            "eager-etl",
            etl_report.elapsed_sec + eager_costs[0],
            etl_report.elapsed_sec + float(np.sum(eager_costs)),
            eager_costs[-1],
            0,
        ],
        [
            "adaptive-cracking",
            crack_costs[0],
            float(np.sum(crack_costs)),
            crack_costs[-1],
            cracking.state_bytes(),
        ],
    ]
    return rows, crack_costs


def test_e15_raw_cracking(benchmark):
    rows, crack_costs = benchmark.pedantic(run_raw, rounds=1, iterations=1)
    headers = ["engine", "time_to_first_insight_s", "total_s", "last_query_s",
               "index_state_bytes"]
    table = format_table(
        f"E15: raw-data analytics, {N_QUERIES}-query exploration",
        headers,
        rows,
    )
    write_result("e15_raw_cracking", table, headers=headers, rows=rows)
    by_name = {r[0]: r for r in rows}
    # Cracking reaches the first insight before the eager pipeline.
    assert (
        by_name["adaptive-cracking"][1] < by_name["eager-etl"][1]
    )
    # Over the whole exploration it crushes repeated cold scans.
    assert by_name["adaptive-cracking"][2] < by_name["cold-scan"][2] / 5
    # Its late queries approach the ETL'd system's speed.
    assert by_name["adaptive-cracking"][3] < by_name["cold-scan"][3] / 50
    # And its per-query cost declines over the sequence.
    assert np.mean(crack_costs[-10:]) < np.mean(crack_costs[:3]) / 10
    benchmark.extra_info["total_speedup_vs_cold"] = (
        by_name["cold-scan"][2] / by_name["adaptive-cracking"][2]
    )
