"""Quickstart: data-less analytics with the SEA agent (Fig. 2 of the paper).

Builds a simulated 8-node cluster holding a clustered 100k-row table,
stands a SEA agent in front of the exact MapReduce engine, replays an
analyst workload through it, and reports what the agent achieved:
how many queries were answered *without touching any base data*, how
accurate those answers were, and what they cost compared to exact
execution.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    AgentConfig,
    ClusterTopology,
    Count,
    DistributedStore,
    ExactEngine,
    InterestProfile,
    SEAAgent,
    WorkloadGenerator,
    gaussian_mixture_table,
)


def main():
    # 1. A cluster and a stored table (the BDAS back-end of Fig. 1).
    topology = ClusterTopology.single_datacenter(8)
    store = DistributedStore(topology, replication=2)
    table = gaussian_mixture_table(
        100_000, dims=("x0", "x1"), seed=1, name="sensors"
    )
    store.put_table(table, partitions_per_node=2)
    print(f"stored {table.n_rows} rows over {len(topology)} nodes "
          f"({store.table('sensors').n_bytes} bytes)")

    # 2. The SEA agent intercepts queries in front of the exact engine.
    agent = SEAAgent(
        ExactEngine(store),
        AgentConfig(training_budget=400, error_threshold=0.15),
    )

    # 3. An analyst population with overlapping interests (P2's premise).
    profile = InterestProfile.from_table(
        table, ("x0", "x1"), n_hotspots=4, seed=2,
        hotspot_scale=2.5, extent_range=(3.0, 8.0),
    )
    workload = WorkloadGenerator(
        "sensors", ("x0", "x1"), profile, aggregate=Count(), seed=3
    )

    # 4. Replay 1200 analytical queries through the agent.
    errors = []
    for query in workload.batch(1200):
        record = agent.submit(query)
        if record.mode == "predicted":
            truth = query.evaluate(table)
            errors.append(abs(record.answer - truth) / max(truth, 1.0))

    # 5. What happened?
    stats = agent.stats()
    print(f"\nqueries:            {stats['queries']:.0f}")
    print(f"  training phase:   {stats['trained']:.0f}")
    print(f"  served data-less: {stats['predicted']:.0f} "
          f"({stats['dataless_fraction']:.0%} of all)")
    print(f"  exact fallbacks:  {stats['fallback']:.0f}")
    print(f"learned state:      {stats['state_bytes']:.0f} bytes "
          f"(vs {store.table('sensors').n_bytes} bytes of base data)")
    if errors:
        print(f"\ndata-less answers' relative error: "
              f"median {np.median(errors):.1%}, p90 {np.quantile(errors, 0.9):.1%}")

    exact_cost = np.mean(
        [r.cost.elapsed_sec for r in agent.history if r.mode != "predicted"]
    )
    dataless_cost = np.mean(
        [r.cost.elapsed_sec for r in agent.history if r.mode == "predicted"]
    )
    print(f"\nper-query simulated latency: exact {exact_cost * 1e3:.1f} ms, "
          f"data-less {dataless_cost * 1e3:.2f} ms "
          f"({exact_cost / dataless_cost:.0f}x)")
    nodes = {
        r.cost.nodes_touched for r in agent.history if r.mode == "predicted"
    }
    print(f"data nodes touched by data-less answers: {sorted(nodes)}")


if __name__ == "__main__":
    main()
