"""A tour of big-data-less operators and the learned optimizer (P3, P4).

1. rank-join: the MapReduce baseline vs the statistical-index plan [30];
2. kNN: scan-everything vs coordinator-cohort with the grid index [33];
3. the crossover: full scan vs surgical access as selectivity grows, and
   a learned selector (CART over logged executions) that picks the right
   plan on the fly (G5/G6).

Run:  python examples/optimizer_tour.py
"""

import numpy as np

from repro import (
    AdHocMLEngine,
    ClusterTopology,
    CoordinatorKNN,
    DistributedGridIndex,
    DistributedStore,
    ExecutionLog,
    IndexedRankJoin,
    KNNBaseline,
    LearnedSelector,
    RangeSelection,
    RankJoinBaseline,
    TaskFeatures,
    gaussian_mixture_table,
    scored_relation,
)


def tour_rank_join(store):
    print("=== rank-join (top-10 by combined score) ===")
    store.put_table(
        scored_relation(40_000, key_space=4_000, seed=1, name="R",
                        value_bytes=256),
        partitions_per_node=2,
    )
    store.put_table(
        scored_relation(40_000, key_space=4_000, seed=2, name="S",
                        value_bytes=256),
        partitions_per_node=2,
    )
    base_results, base = RankJoinBaseline(store).query("R", "S", 10)
    indexed = IndexedRankJoin(store)
    indexed.build_index("R")
    indexed.build_index("S")
    index_results, idx = indexed.query("R", "S", 10)
    assert [round(s, 9) for s, _ in base_results] == [
        round(s, 9) for s, _ in index_results
    ]
    print(f"  top score: {index_results[0][0]:.4f} (plans agree)")
    print(f"  MapReduce: {base.elapsed_sec:8.3f} s, "
          f"{base.bytes_scanned / 1e6:8.1f} MB scanned")
    print(f"  indexed:   {idx.elapsed_sec:8.3f} s, "
          f"{idx.bytes_scanned / 1e6:8.3f} MB scanned "
          f"({base.bytes_scanned / max(1, idx.bytes_scanned):.0f}x less)")


def tour_knn(store):
    print("\n=== kNN (k=10) ===")
    table = gaussian_mixture_table(
        60_000, dims=("x0", "x1"), seed=3, name="pts", value_bytes=128
    )
    store.put_table(table, partitions_per_node=2)
    index = DistributedGridIndex(store, "pts", ("x0", "x1"), cells_per_dim=32)
    build = index.build()
    print(f"  index build (once): {build.elapsed_sec:.3f} s, "
          f"coordinator state {index.coordinator_state_bytes() / 1e3:.1f} KB")
    point = table.matrix(("x0", "x1")).mean(axis=0)
    base_rows, base = KNNBaseline(store, ("x0", "x1")).query("pts", point, 10)
    coord_rows, coord = CoordinatorKNN(store, index).query("pts", point, 10)
    assert np.allclose(
        np.sort(base_rows.column("_dist")), np.sort(coord_rows.column("_dist"))
    )
    print(f"  MapReduce:   {base.elapsed_sec * 1e3:8.1f} ms, "
          f"{base.rows_examined} rows examined")
    print(f"  coordinator: {coord.elapsed_sec * 1e3:8.1f} ms, "
          f"{coord.rows_examined} rows examined "
          f"({base.elapsed_sec / coord.elapsed_sec:.0f}x faster)")


def tour_optimizer(store):
    print("\n=== crossover + learned plan selection ===")
    table = gaussian_mixture_table(
        40_000, dims=("x0", "x1"), seed=4, name="data", value_bytes=2048
    )
    store.put_table(table, partitions_per_node=2)
    index = DistributedGridIndex(store, "data", ("x0", "x1"), cells_per_dim=32)
    index.build()
    engine = AdHocMLEngine(store, index)
    rng = np.random.default_rng(5)
    log = ExecutionLog()
    print("  logging 60 exhaustive executions across selectivities...")
    for _ in range(60):
        width = float(10 ** rng.uniform(0.3, 2.0))
        lo = rng.uniform(0.0, max(0.1, 100.0 - width), size=2)
        selection = RangeSelection(("x0", "x1"), lo,
                                   np.minimum(lo + width, 100.0))
        selectivity = float(selection.mask(table).mean())
        _, full = engine.gather("data", selection, method="fullscan")
        _, idx = engine.gather("data", selection, method="index")
        log.record(
            TaskFeatures.for_subspace_aggregate(
                table.n_rows, selectivity, 2, len(store.topology)
            ),
            {"mapreduce": full.elapsed_sec, "coordinator": idx.elapsed_sec},
        )
    selector = LearnedSelector(max_depth=4).fit(log)
    print("  learned rule, demonstrated:")
    for selectivity in (1e-4, 1e-2, 0.3, 0.9):
        choice = selector.choose(
            TaskFeatures.for_subspace_aggregate(
                table.n_rows, selectivity, 2, len(store.topology)
            )
        )
        print(f"    selectivity {selectivity:8.4f} -> {choice}")
    metrics = selector.evaluate(log)
    print(f"  on the log: accuracy {metrics['accuracy']:.0%}, "
          f"regret {metrics['mean_regret']:.2f} "
          f"(always-mapreduce {metrics['regret_always_mapreduce']:.2f}, "
          f"always-coordinator {metrics['regret_always_coordinator']:.2f})")


def main():
    topology = ClusterTopology.single_datacenter(8)
    store = DistributedStore(topology)
    tour_rank_join(store)
    tour_knn(store)
    tour_optimizer(store)


if __name__ == "__main__":
    main()
