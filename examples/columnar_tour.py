"""Columnar-partition tour: encode, scan encoded, materialize late.

Walks the ``layout="column"`` storage path end to end on a wide
unclustered table:

1. the per-column encodings the store picks at ingest (dictionary, RLE,
   bit packing, raw) and what they do to the stored footprint;
2. range predicates evaluated *directly on the encoded form* — bitwise
   equal to the decoded-table mask;
3. row vs columnar execution: byte-identical answers, a fraction of the
   bytes, with late materialization reading only the columns each
   aggregate needs;
4. appends and deletes keeping the encoded images exact.

Run:  python examples/columnar_tour.py
"""

import numpy as np

from repro import (
    AnalyticsQuery,
    ClusterTopology,
    Count,
    DistributedStore,
    ExactEngine,
    RangeSelection,
    Sum,
    Table,
)
from repro.cluster import LAYOUT_COLUMN, LAYOUT_ROW, columnar_consistent
from repro.engine.colscan import encoded_mask, scan_columns


def build_table(n_rows=40_000, value_bytes=1024):
    """Wide unclustered rows: one column per encoding family."""
    rng = np.random.default_rng(11)
    return Table(
        {
            # ~60 distinct values, uniform and unsorted: dictionary.
            "cat": rng.integers(0, 60, n_rows).astype(float),
            # Arrival-ordered timestamps with long constant runs: RLE.
            "ts": np.repeat(np.arange(n_rows // 40, dtype=float), 40),
            # Small non-negative integer domain: bit packing (3 bits).
            "flags": rng.integers(0, 8, n_rows),
            # Incompressible measurements: raw.
            "x1": rng.normal(size=n_rows),
            "x2": rng.normal(size=n_rows),
        },
        name="data",
        value_bytes=value_bytes,
    )


def main():
    # 1. One logical table, two physical layouts.
    table = build_table()
    stores = {}
    for layout in (LAYOUT_ROW, LAYOUT_COLUMN):
        store = DistributedStore(
            ClusterTopology.single_datacenter(4), layout=layout
        )
        store.put_table(table, partitions_per_node=2)
        stores[layout] = store

    col_store = stores[LAYOUT_COLUMN]
    part = col_store.table("data").partitions[0]
    print("== encodings chosen at ingest (recorded in the synopsis) ==")
    for name, kind in part.columnar.encodings.items():
        enc = part.columnar.column(name)
        raw_bytes = part.columnar.n_rows * table.value_bytes
        print(f"{name:>6}: {kind:<10} {enc.encoded_bytes:>10,} bytes "
              f"({enc.encoded_bytes / raw_bytes:7.2%} of raw)")
    assert col_store.synopses("data")[0].encodings == part.columnar.encodings
    row_bytes = stores[LAYOUT_ROW].table("data").stored_bytes
    col_bytes = col_store.table("data").stored_bytes
    print(f"stored footprint: {row_bytes/1e6:.1f} MB row-major -> "
          f"{col_bytes/1e6:.1f} MB columnar "
          f"({row_bytes/col_bytes:.2f}x smaller)\n")

    # 2. Predicates run on the encoded domain, bitwise equal to decoded.
    #    A dictionary range is two bisects into the sorted dictionary
    #    plus one compare per *code*; an RLE range tests runs, not rows.
    selection = RangeSelection(
        ("ts", "cat"), [0.0, 0.0], [float(table.n_rows), 11.0]
    )
    mask = encoded_mask(part.columnar, selection)
    assert np.array_equal(mask, selection.mask(part.data))
    print("== encoded-domain predicates ==")
    print(f"ts window & cat <= 11 on partition 0: "
          f"{int(mask.sum())}/{part.n_rows} rows survive, "
          f"mask bitwise-equal to the decoded evaluation\n")

    # 3. Row vs columnar execution: identical answers, fewer bytes.
    row_engine = ExactEngine(stores[LAYOUT_ROW])
    col_engine = ExactEngine(stores[LAYOUT_COLUMN])
    print("== row vs columnar engines (answers must match bytewise) ==")
    for fraction in (0.05, 0.20, 0.50):
        hi = float(round(fraction * 60) - 1)
        sel = RangeSelection(("ts", "cat"), [0.0, 0.0],
                             [float(table.n_rows), hi])
        for aggregate in (Sum("x1"), Count()):
            query = AnalyticsQuery("data", sel, aggregate)
            row_answer, row_report = row_engine.execute(query)
            col_answer, col_report = col_engine.execute(query)
            assert repr(row_answer) == repr(col_answer)
            ratio = row_report.bytes_scanned / max(1, col_report.bytes_scanned)
            print(f"selectivity {fraction:4.0%} {aggregate.name:>8}: "
                  f"answer {col_answer:14.2f}  "
                  f"bytes {row_report.bytes_scanned/1e6:7.1f} MB -> "
                  f"{col_report.bytes_scanned/1e6:6.1f} MB ({ratio:5.1f}x less)")
    # Late materialization: the scan only reads predicate + aggregate
    # columns, so Count (no aggregate input) is cheaper than Sum(x1).
    sum_cols = scan_columns(sel, Sum("x1")).columns
    count_cols = scan_columns(sel, Count()).columns
    print(f"columns read — {Sum('x1').name}: {sum_cols}, "
          f"count: {count_cols}\n")

    # 4. Mutations re-encode: images stay exact against fresh builds.
    rng = np.random.default_rng(0)
    n = 500
    col_store.append_rows("data", Table({
        "cat": rng.integers(0, 60, n).astype(float),
        "ts": np.full(n, float(table.n_rows)),
        "flags": rng.integers(0, 8, n),
        "x1": rng.normal(size=n),
        "x2": rng.normal(size=n),
    }, name="data"))
    col_store.delete_rows("data", lambda t: t.column("cat") >= 55.0)
    fresh = col_store.table("data")
    assert columnar_consistent(
        [p.columnar for p in fresh.partitions],
        [p.data for p in fresh.partitions],
    )
    print("after append(500 rows) + delete(cat >= 55): every partition's "
          "encoded image still round-trips bitwise against a fresh encode")


if __name__ == "__main__":
    main()
