"""Multi-system (polystore) data-less analytics (RT1.5).

Three regional systems — each its own cluster with its own shard of the
same logical dataset — answer federated union aggregates three ways:

* migrate   — ship every remote system's base table across the WAN, then
              scan (the classical polystore pain);
* partials  — each system computes its exact local partial, only the
              partial crosses the WAN;
* models    — each system's SEA agent answers from its learned models:
              no system touches its base data at all.

Run:  python examples/polystore_federation.py
"""

import numpy as np

from repro import (
    AgentConfig,
    AnalyticsQuery,
    ClusterTopology,
    Count,
    DistributedStore,
    ExactEngine,
    InterestProfile,
    Polystore,
    PolystoreSystem,
    RangeSelection,
    SEAAgent,
    WorkloadGenerator,
    gaussian_mixture_table,
)


def build_system(name, seed):
    topology = ClusterTopology.single_datacenter(3, datacenter=name)
    store = DistributedStore(topology)
    shard = gaussian_mixture_table(
        20_000, dims=("x0", "x1"), seed=seed, name="events"
    )
    store.put_table(shard, partitions_per_node=1)
    agent = SEAAgent(
        ExactEngine(store),
        AgentConfig(training_budget=250, error_threshold=0.2),
    )
    return (
        PolystoreSystem(name=name, agent=agent, gateway_node=topology.node_ids[0]),
        shard,
    )


def main():
    (sys_eu, shard_eu) = build_system("eu", seed=1)
    (sys_us, shard_us) = build_system("us", seed=2)
    (sys_ap, shard_ap) = build_system("ap", seed=3)
    shards = [shard_eu, shard_us, shard_ap]
    poly = Polystore([sys_eu, sys_us, sys_ap])

    # Warm the agents: analysts everywhere ask similar questions.
    profile = InterestProfile.from_table(
        shard_eu, ("x0", "x1"), 3, seed=4, hotspot_scale=2.5,
        extent_range=(4, 10),
    )
    workload = WorkloadGenerator(
        "events", ("x0", "x1"), profile, aggregate=Count(), seed=5
    )
    print("warming the three systems' agents (600 federated queries)...")
    for query in workload.batch(600):
        poly.execute_union(query, strategy="models")

    # Now compare the three federation strategies on fresh queries.
    print(f"\n{'strategy':10s} {'answer':>10s} {'truth':>10s} "
          f"{'WAN bytes':>12s} {'elapsed':>10s}")
    for query in workload.batch(3):
        truth = sum(query.evaluate(shard) for shard in shards)
        for strategy in ("migrate", "partials", "models"):
            answer, cost = poly.execute_union(query, strategy=strategy)
            print(f"{strategy:10s} {answer:10.0f} {truth:10.0f} "
                  f"{cost.bytes_shipped_wan:12d} {cost.elapsed_sec:9.3f}s")
        print()

    state = sum(s.agent.state_bytes() for s in poly.systems.values())
    data = sum(shard.n_bytes for shard in shards)
    print(f"total learned state across systems: {state} bytes "
          f"(base data: {data} bytes)")


if __name__ == "__main__":
    main()
