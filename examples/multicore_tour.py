"""Multicore tour: past the GIL ceiling, same bytes, same bits.

Walks the process-parallel scan executor (DESIGN §12) end to end:

1. a serial, a 4-thread and a 4-process session answering the same
   workload, with every answer, mode and simulated cost compared field
   by field — the executor flavour must be invisible in the output;
2. the shared-memory publish protocol: partitions are published once,
   an append republishes only the mutated partitions, and the
   ``parallel_shm_*`` metrics account for every byte;
3. crash resilience — a worker killed with SIGKILL surfaces as a typed
   ``WorkerCrashError`` on the executor while the batch transparently
   recomputes inline, still bit-for-bit correct;
4. lifecycle — dropping a session without ``close()`` still tears the
   pool down and unlinks every shared segment (no leaked ``/dev/shm``
   entries, no resource_tracker warnings at exit).

The demo is about *determinism and hygiene*, not speed: on a small host
the process pool only adds overhead, and that is fine — the contract is
that you cannot tell from any answer or cost report which executor ran.
E22 measures the wall-clock side on multicore hardware.

Run:  python examples/multicore_tour.py
"""

import gc
import os
import signal
import time
from multiprocessing import shared_memory

from repro import gaussian_mixture_table
from repro.common.errors import WorkerCrashError
from repro.session import SEASession

STATEMENTS = [
    "SELECT STD(x0) FROM data WHERE x0 BETWEEN 0 AND 100 "
    "AND x1 BETWEEN 0 AND 50",
    "SELECT MEDIAN(x1) FROM data WHERE x0 BETWEEN 20 AND 80 "
    "AND x1 BETWEEN 20 AND 80",
    "SELECT COUNT(*) FROM data WHERE x0 BETWEEN 10 AND 25 "
    "AND x1 BETWEEN 10 AND 25",
]


def main():
    table = gaussian_mixture_table(
        60_000, dims=("x0", "x1"), seed=3, name="data"
    )

    # 1. Serial vs threads vs processes: every field must match.
    def serve(workers, executor):
        with SEASession(
            n_nodes=8, workers=workers, executor=executor
        ) as session:
            session.load_table(table)
            return [session.sql(s) for s in STATEMENTS]

    print("== serial vs workers=4 threads vs workers=4 processes ==")
    print(f"host cpus: {os.cpu_count()}")
    serial = serve(1, "thread")
    flavours = {"thread": serve(4, "thread"), "process": serve(4, "process")}
    for name, answers in flavours.items():
        for ref, got in zip(serial, answers):
            assert repr(ref.value) == repr(got.value)
            assert ref.mode == got.mode
            assert ref.cost.as_dict() == got.cost.as_dict()
        print(f"{name:>8}: {len(answers)} answers byte-identical to serial")
    print("the executor flavour is invisible in every output field\n")

    # 2. The publish protocol: publish once, republish only what moved.
    print("== shared-memory publish accounting ==")
    session = SEASession(n_nodes=8, workers=4, executor="process")
    session.attach_observer()
    session.load_table(table)
    session.sql(STATEMENTS[0])
    shared = session.executor.store
    published = shared.publish_bytes
    print(f"first query published {published} bytes across "
          f"{len(shared)} shared segments")

    session.sql(STATEMENTS[1])
    assert shared.publish_bytes == published, "second query republished!"
    print("second query published 0 new bytes (views are reused)")

    # A 1-row append lands in a single partition; only that partition's
    # generation bumps, so only its segment is republished.
    session.store.append_rows(
        "data",
        gaussian_mixture_table(1, dims=("x0", "x1"), seed=9, name="data"),
    )
    session.sql(STATEMENTS[0])
    mutated = {
        p.index
        for p in session.store.table("data").partitions
        if p.generation > 0
    }
    print(f"1-row append touched partitions {sorted(mutated)}; "
          f"republished {shared.republish_bytes} of {published} bytes "
          f"(bounded to the mutated partition's footprint)")
    stats = session.stats()
    shm_keys = sorted(k for k in stats if "shm" in k)
    for key in shm_keys:
        print(f"  {key} = {stats[key]:.0f}")
    session.close()
    print()

    # 3. Crash resilience: SIGKILL a worker mid-fleet; the batch is
    #    recomputed inline and the crash is recorded as a typed error.
    print("== killing a worker ==")
    with SEASession(n_nodes=8, workers=1) as probe:
        probe.load_table(table)
        expected = [probe.sql(s).value for s in STATEMENTS]
    session = SEASession(n_nodes=8, workers=4, executor="process")
    session.load_table(table)
    executor = session.executor
    executor.warm()
    victim = next(iter(executor._resources.pool._processes))
    os.kill(victim, signal.SIGKILL)
    time.sleep(0.3)
    answers = [session.sql(s).value for s in STATEMENTS]
    assert [repr(a) for a in answers] == [repr(e) for e in expected]
    assert executor.crashes and isinstance(
        executor.crashes[0], WorkerCrashError
    )
    print(f"worker pid {victim} killed; answers still correct; "
          f"typed record: {executor.crashes[0]}")
    answers = [session.sql(s).value for s in STATEMENTS]
    assert len(executor.crashes) == 1, "fresh pool should not re-crash"
    print("next batch ran on a respawned pool without incident\n")
    session.close()

    # 4. Lifecycle: dropping the session unlinks every shared segment.
    print("== dropping a session without close() ==")
    session = SEASession(n_nodes=8, workers=2, executor="process")
    session.load_table(table)
    session.sql(STATEMENTS[0])
    names = session.executor.store.segment_names()
    print(f"{len(names)} live segments while the session is referenced")
    del session
    gc.collect()
    leaked = []
    for name in names:
        try:
            handle = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            continue
        handle.close()
        leaked.append(name)
    assert not leaked, f"leaked segments: {leaked}"
    print("all segments unlinked by the finalizer — nothing leaked")


if __name__ == "__main__":
    main()
