"""Fault-injection tour: crash nodes, fail over, degrade, keep serving.

Walks the robustness layer end to end on a replicated table:

1. a deterministic injection plan: crash windows, a slowdown, a flaky
   node — attached to the store, consulted by every metered read;
2. replication 2 + one crashed node: failover makes the crash invisible
   in answers *and* bytes (byte-identical to the fault-free run), while
   the ``fault_*`` metrics show the probes and failovers that paid for it;
3. a flaky node: transient errors are retried with capped backoff —
   answers stay exact, the retries show up as byte overhead;
4. losing every replica: ``failure_mode="fail"`` raises a typed
   ``PartitionLostError``; ``failure_mode="degrade"`` serves a
   ``DegradedAnswer`` with exact coverage and sound bounds from the
   zone-map synopses;
5. the SEA agent serving predictions straight through *total* data loss.

Run:  python examples/faults_tour.py
"""

from repro import (
    AgentConfig,
    AnalyticsQuery,
    ClusterTopology,
    Count,
    DistributedStore,
    ExactEngine,
    FaultInjector,
    FaultSchedule,
    InterestProfile,
    PartitionLostError,
    RangeSelection,
    SEAAgent,
    StackObserver,
    WorkloadGenerator,
    uniform_table,
)


def fault_metrics(obs):
    return {
        key: int(value)
        for key, value in sorted(obs.metrics.as_dict().items())
        if key.startswith("fault_") and value
    }


def main():
    # 1. A replicated world and a deterministic injection plan.
    topo = ClusterTopology.single_datacenter(4)
    store = DistributedStore(topo, replication=2)
    table = uniform_table(20_000, dims=("x0", "x1"), seed=3, name="data")
    store.put_table(table, partitions_per_node=2)
    nodes = store.topology.node_ids

    plan = (
        FaultSchedule()
        .crash(nodes[0], at=0.0, until=60.0)  # down for the first minute
        .slow(nodes[1], factor=3.0)           # disk 3x slower
        .flaky(nodes[2], rate=0.25)           # 25% transient read errors
    )
    print("== the injection plan ==")
    print(f"nodes: {nodes}")
    print(f"down at t=0: {plan.nodes_down_at(0.0)}, "
          f"down at t=90: {plan.nodes_down_at(90.0)}\n")

    query = AnalyticsQuery(
        "data", RangeSelection(("x0",), [10.0], [80.0]), Count()
    )
    engine = ExactEngine(store)
    clean_answer, clean_report = engine.execute(query)

    # 2. One crashed node at replication 2: byte-identical failover.
    obs = StackObserver()
    store.attach_faults(FaultInjector(plan, seed=7, observer=obs))
    faulty_engine = ExactEngine(store, observer=obs)
    answer, report = faulty_engine.execute(query)
    print("== crash + failover (replication 2) ==")
    print(f"answer {answer} == clean {clean_answer}: {answer == clean_answer}")
    print(f"bytes  {report.bytes_scanned} vs clean {clean_report.bytes_scanned} "
          f"(identical: {report.bytes_scanned == clean_report.bytes_scanned})")
    print(f"but slower: {report.elapsed_sec:.4f}s vs "
          f"{clean_report.elapsed_sec:.4f}s (probes, retries, slow disk)")
    print(f"fault metrics: {fault_metrics(obs)}\n")

    # 3. Advance past the crash window: the node recovers, retries remain.
    store.faults.set_time(90.0)
    answer, _ = faulty_engine.execute(query)
    assert answer == clean_answer
    print("== after recovery (t=90, flaky node still flaky) ==")
    print(f"answer still exact; metrics now: {fault_metrics(obs)}\n")

    # 4. Lose every replica of some partitions: fail vs degrade.
    store.clear_faults()
    killer = FaultInjector(observer=obs)
    for node in nodes[:2]:  # partitions whose replicas both live here die
        killer.crash(node)
    store.attach_faults(killer)
    print("== all replicas of some partitions down ==")
    try:
        ExactEngine(store).execute(query)
    except PartitionLostError as error:
        print(f"fail mode:    {type(error).__name__}: {error}")
    degraded, _ = ExactEngine(store, failure_mode="degrade").execute(query)
    print(f"degrade mode: {degraded}")
    print(f"  coverage {degraded.coverage:.1%} of rows accounted for, "
          f"true answer {clean_answer} inside bounds: "
          f"{degraded.contains(clean_answer)}\n")
    store.clear_faults()

    # 5. The SEA agent: train fault-free, then crash *everything*.
    profile = InterestProfile.from_table(table, ("x0", "x1"), 3, seed=11)
    workload = WorkloadGenerator(
        "data", ("x0", "x1"), profile, aggregate=Count(), seed=11
    )
    agent = SEAAgent(ExactEngine(store), AgentConfig(training_budget=150))
    for q in workload.batch(600):
        agent.submit(q)

    apocalypse = FaultInjector()
    for node in nodes:
        apocalypse.crash(node)
    store.attach_faults(apocalypse)
    wave = workload.batch(200)
    records = [agent.submit(q) for q in wave]
    served = sum(1 for r in records if r.answer is not None)
    data_free = sum(1 for r in records if r.cost.bytes_scanned == 0)
    print("== SEA agent with every node down ==")
    print(f"served {served}/{len(wave)} queries "
          f"({data_free} without touching a single byte)")
    modes = {}
    for r in records:
        modes[r.mode] = modes.get(r.mode, 0) + 1
    print(f"modes: {modes} — the data is gone, the answers are not")


if __name__ == "__main__":
    main()
