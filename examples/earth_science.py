"""Earth-science analytics: the paper's flagship higher-level query.

Sec. III.A: analyses "may be used as building blocks for higher-level
interrogations, such as 'return the data subspaces where the correlation
coefficient between attributes is greater than a threshold value'."

A synthetic sensor field over a (lat, lon) grid carries two measurements,
``temperature`` and ``humidity``, whose coupling varies by region (they
are strongly correlated inside a "monsoon belt" and decoupled elsewhere).
The demo:

1. trains the SEA agent on correlation queries as an analyst explores;
2. answers the higher-level interrogation exactly (one query per
   candidate subspace) and data-lessly (model predictions only);
3. reports region agreement and the cost gap.

Run:  python examples/earth_science.py
"""

import numpy as np

from repro import (
    AgentConfig,
    AnalyticsQuery,
    ClusterTopology,
    Correlation,
    DistributedStore,
    ExactEngine,
    HigherLevelEngine,
    RangeSelection,
    SEAAgent,
    Table,
    ThresholdRegionQuery,
)


def make_sensor_field(n_rows=60_000, seed=0):
    """Sensor readings whose temp-humidity coupling is regional."""
    rng = np.random.default_rng(seed)
    lat = rng.uniform(0.0, 100.0, size=n_rows)
    lon = rng.uniform(0.0, 100.0, size=n_rows)
    temperature = 15.0 + 0.2 * lat + rng.normal(scale=3.0, size=n_rows)
    # Inside the monsoon belt (lat 25..75), humidity tracks temperature;
    # outside, it is independent weather noise.
    coupled = (lat >= 25.0) & (lat < 75.0)
    humidity = np.where(
        coupled,
        40.0 + 2.0 * (temperature - temperature.mean())
        + rng.normal(scale=1.5, size=n_rows),
        60.0 + rng.normal(scale=8.0, size=n_rows),
    )
    return Table(
        {"lat": lat, "lon": lon, "temperature": temperature,
         "humidity": humidity},
        name="sensors",
    )


def main():
    topology = ClusterTopology.single_datacenter(8)
    store = DistributedStore(topology)
    table = make_sensor_field()
    store.put_table(table, partitions_per_node=2)
    engine = ExactEngine(store)
    agent = SEAAgent(
        engine, AgentConfig(training_budget=10_000, error_threshold=0.2)
    )

    # The analyst's exploration: correlation queries over random boxes,
    # shaped like the candidate lattice below.
    print("analyst explores: 500 correlation queries over (lat, lon) boxes")
    rng = np.random.default_rng(1)
    aggregate = Correlation("temperature", "humidity")
    for _ in range(500):
        lo = rng.uniform(0.0, 75.0, size=2)
        width = rng.uniform(20.0, 30.0, size=2)
        agent.submit(
            AnalyticsQuery(
                "sensors",
                RangeSelection(("lat", "lon"), lo, np.minimum(lo + width, 100.0)),
                aggregate,
            )
        )

    # The higher-level interrogation.
    print("\ninterrogation: 'subspaces where corr(temperature, humidity) > 0.5'")
    region_query = ThresholdRegionQuery(
        table_name="sensors",
        columns=("lat", "lon"),
        aggregate=aggregate,
        threshold=0.5,
        lows=np.array([0.0, 0.0]),
        highs=np.array([100.0, 100.0]),
        cells_per_dim=4,  # 25x25-unit candidate subspaces
    )
    sample_query = region_query.candidate_queries()[0]
    higher = HigherLevelEngine(
        exact_engine=engine, predictor=agent.predictor(sample_query)
    )
    exact = higher.run_exact(region_query)
    dataless = higher.run_dataless(region_query)
    precision, recall = HigherLevelEngine.precision_recall(dataless, exact)

    def describe(result):
        belts = sorted(
            (float(q.selection.lows[0]), float(q.selection.highs[0]))
            for q in result.regions
        )
        return belts

    print(f"  exact:     {len(exact.regions)}/{exact.n_candidates} regions, "
          f"lat belts {describe(exact)}")
    print(f"             cost {exact.cost.elapsed_sec:.2f} s, "
          f"{exact.cost.bytes_scanned / 1e6:.1f} MB scanned")
    print(f"  data-less: {len(dataless.regions)} regions, "
          f"cost {dataless.cost.elapsed_sec * 1e3:.2f} ms, 0 bytes scanned")
    print(f"  agreement: precision {precision:.0%}, recall {recall:.0%}")
    print("\nthe found belts line up with the planted monsoon band "
          "(lat 25..75), where humidity tracks temperature")


if __name__ == "__main__":
    main()
