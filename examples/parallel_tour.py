"""Parallel scan tour: more cores, same bytes, same bits.

Walks the morsel-style scan executor (DESIGN §9) end to end:

1. the raw executor — morsels in, results out in input order, with the
   largest partitions scheduled first (LPT);
2. a serial and a 4-worker session answering the same workload, with
   every answer, mode and simulated cost compared field by field;
3. where parallelism composes with pruning — skipped partitions never
   reach the pool — and with fault failover;
4. the ``parallel_*`` observability surface that only a truly parallel
   run emits.

The demo is about *determinism*, not speed: on a single-core host the
pool only adds overhead, and that is fine — the contract is that you
cannot tell from any answer or any cost report how many threads ran.

Run:  python examples/parallel_tour.py
"""

import os

from repro import (
    AnalyticsQuery,
    ClusterTopology,
    DistributedStore,
    ExactEngine,
    Median,
    RangeSelection,
    ScanExecutor,
    Std,
    gaussian_mixture_table,
)
from repro.faults import FaultInjector, FaultSchedule
from repro.parallel import Morsel, partition_morsels
from repro.session import SEASession


def main():
    # 1. The executor itself: morsels in, input-ordered results out.
    print("== the raw executor ==")
    morsels = [
        Morsel(index=i, payload=i, size_bytes=size)
        for i, size in enumerate([300, 100, 900, 500])
    ]
    with ScanExecutor(workers=4) as pool:
        doubled = pool.run(morsels, lambda payload: payload * 2)
    print(f"host cpus: {os.cpu_count()}; 4-worker pool over 4 morsels")
    print(f"results (always input order, regardless of finish order): "
          f"{doubled}\n")

    # 2. Same workload, one session serial, one parallel: every field of
    #    every answer must match.
    table = gaussian_mixture_table(
        60_000, dims=("x0", "x1"), seed=3, name="data"
    )
    statements = [
        "SELECT STD(x0) FROM data WHERE x0 BETWEEN 0 AND 100 "
        "AND x1 BETWEEN 0 AND 50",
        "SELECT MEDIAN(x1) FROM data WHERE x0 BETWEEN 20 AND 80 "
        "AND x1 BETWEEN 20 AND 80",
        "SELECT COUNT(*) FROM data WHERE x0 BETWEEN 10 AND 25 "
        "AND x1 BETWEEN 10 AND 25",
    ]

    def serve(workers):
        with SEASession(n_nodes=8, workers=workers) as session:
            session.load_table(table)
            return [session.sql(s) for s in statements]

    serial_answers = serve(1)
    parallel_answers = serve(4)
    print("== serial session vs workers=4 session ==")
    for serial, parallel in zip(serial_answers, parallel_answers):
        assert repr(serial.value) == repr(parallel.value)
        assert serial.mode == parallel.mode
        assert serial.cost.as_dict() == parallel.cost.as_dict()
        print(f"{serial.query.aggregate.name:>12}: value {serial.value!r:>24} "
              f"node_sec {serial.cost.node_sec:.6f}  -> identical")
    print("answers, modes and full cost reports are byte-identical\n")

    # 3. Composition: pruning decides WHAT to scan, the pool decides with
    #    how many cores; fault failover replays serially per partition.
    topo = ClusterTopology.single_datacenter(8)
    store = DistributedStore(topo, replication=2)
    store.put_table(table, partitions_per_node=2)
    stored = store.table("data")
    scanned = partition_morsels(stored.partitions)
    narrow = partition_morsels(
        stored.partitions, should_scan=lambda i: i % 4 == 0
    )
    print("== composing with pruning and faults ==")
    print(f"morsel queue, full scan: {len(scanned)} morsels; with a "
          f"pruning plan keeping every 4th partition: {len(narrow)} "
          f"(skipped partitions never reach the pool)")

    store.attach_faults(
        FaultInjector(FaultSchedule().crash(topo.node_ids[0]), seed=5)
    )
    query = AnalyticsQuery(
        "data",
        RangeSelection(("x0", "x1"), [0.0, 0.0], [100.0, 50.0]),
        Std("x0"),
    )
    try:
        clean = ExactEngine(store)  # replica failover, serial
        with ScanExecutor(workers=4) as pool:
            wired = ExactEngine(store, executor=pool)
            serial_result = clean.execute(query)
            parallel_result = wired.execute(query)
    finally:
        store.clear_faults()
    assert repr(serial_result[0]) == repr(parallel_result[0])
    assert serial_result[1].as_dict() == parallel_result[1].as_dict()
    print(f"node {topo.node_ids[0]} crashed: both engines failed over to "
          f"replicas and agree bit-for-bit "
          f"(std={parallel_result[0]:.6f})\n")

    # 4. Only a genuinely parallel run emits parallel_* metrics.
    print("== the parallel_* observability surface ==")
    for workers in (1, 4):
        session = SEASession(n_nodes=8, workers=workers)
        session.attach_observer()
        session.load_table(table)
        session.sql(statements[0])
        stats = session.stats()
        parallel_keys = sorted(
            k for k in stats if k.startswith("parallel_")
        )
        print(f"workers={workers}: {parallel_keys or '(no parallel metrics)'}")
        session.close()


if __name__ == "__main__":
    main()
