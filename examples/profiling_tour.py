"""Profiling tour: EXPLAIN, EXPLAIN ANALYZE, and session health.

Walks the query flight recorder end to end (DESIGN §10):

1. ``session.explain(sql)`` — plan a query *without executing it*: the
   zone-map scan plan (skip / synopsis / scan per partition, bytes the
   pruning saves) plus the serving path the agent would take, with the
   error estimate driving that decision.
2. ``answer.profile`` — every answer served under an observer carries an
   ``EXPLAIN ANALYZE`` profile: the plan plus actuals — per-phase
   simulated times, cache hits, fault history, and the cost report the
   meter actually charged.
3. ``session.health()`` — rolling SLO burn rates per query class plus
   the accuracy-drift anomaly counters.
4. ``session.export_observability(dir)`` — one-shot dump of every
   surface: trace, metrics, events, profiles, health.

Run:  python examples/profiling_tour.py [--out DIR]
"""

import argparse
import json

from repro import (
    AgentConfig,
    Count,
    InterestProfile,
    SEASession,
    SLOPolicy,
    SLOTarget,
    WorkloadGenerator,
    gaussian_mixture_table,
)


def main(out_dir):
    session = SEASession(
        n_nodes=8,
        config=AgentConfig(training_budget=300, error_threshold=0.15),
    )
    session.attach_observer()
    table = gaussian_mixture_table(
        60_000, dims=("x0", "x1"), seed=1, name="sensors"
    )
    session.load_table(table)

    # 1. EXPLAIN: plan only, nothing executed, nothing charged.
    statement = (
        "SELECT COUNT(*) FROM sensors "
        "WHERE x0 BETWEEN 20 AND 45 AND x1 BETWEEN 55 AND 80"
    )
    print("=" * 72)
    print(session.explain(statement).render())

    # 2. Serve a mixed workload, then EXPLAIN ANALYZE a served answer.
    profile = InterestProfile.from_table(table, ("x0", "x1"), 4, seed=2)
    workload = WorkloadGenerator(
        "sensors", ("x0", "x1"), profile, aggregate=Count(), seed=3
    )
    session.attach_slo(
        SLOPolicy(default=SLOTarget(latency_sec=2.0, objective=0.9))
    )
    answers = [session.submit(q) for q in workload.batch(900)]
    modes = [a.mode for a in answers]
    print("=" * 72)
    print("serve modes:", {m: modes.count(m) for m in sorted(set(modes))})

    exact = next(a for a in reversed(answers) if a.mode != "predicted")
    print("=" * 72)
    print(exact.profile.render())
    predicted = next(
        (a for a in reversed(answers) if a.mode == "predicted"), None
    )
    if predicted is not None:
        print("=" * 72)
        print(predicted.profile.render())

    # 3. Health: SLO burn rates + accuracy-drift counters.
    health = session.health()
    print("=" * 72)
    print(json.dumps(health, indent=2, sort_keys=True))

    # 4. One-shot export of every observability surface.
    paths = session.export_observability(out_dir, overwrite=True)
    print("=" * 72)
    for surface, path in sorted(paths.items()):
        print(f"wrote {surface:<9} -> {path}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--out", default="profiling_tour_out", help="export directory"
    )
    main(parser.parse_args().out)
