"""Observability tour: watch the SEA stack run on its simulated clock.

Attaches a ``StackObserver`` to an :class:`SEASession`, replays a mixed
train/serve workload plus a data update and a learned-optimizer
decision, and exports the three artefacts ``repro.obs`` produces:

* ``trace.json``   — Chrome trace-event JSON (open in
  https://ui.perfetto.dev): nested spans query → mapreduce →
  map/shuffle/reduce phases → per-node task tracks, annotated with the
  bytes each span scanned and shipped.
* ``metrics.prom`` — Prometheus-style exposition: serve-mode counters,
  charge totals by kind, latency quantiles from a reservoir histogram.
* ``events.jsonl`` — one structured decision per line: train /
  predicted / fallback (with estimated error), data-update
  invalidations, drift detections, optimizer choices.

Run:  python examples/observability_tour.py [output_dir]
"""

import sys

from repro import (
    AgentConfig,
    CostModelSelector,
    Count,
    ExecutionLog,
    InterestProfile,
    SEASession,
    TaskFeatures,
    WorkloadGenerator,
    gaussian_mixture_table,
)


def main(out_dir="."):
    # 1. A session with observability switched on from the start.
    session = SEASession(
        n_nodes=8,
        config=AgentConfig(training_budget=400, error_threshold=0.15),
    )
    observer = session.attach_observer()
    table = gaussian_mixture_table(
        100_000, dims=("x0", "x1"), seed=1, name="sensors"
    )
    session.load_table(table)

    # 2. A mixed workload: training first, then data-less serving with
    #    error-gated fallbacks.
    profile = InterestProfile.from_table(table, ("x0", "x1"), 4, seed=2)
    workload = WorkloadGenerator(
        "sensors", ("x0", "x1"), profile, aggregate=Count(), seed=3
    )
    modes = [session.submit(q).mode for q in workload.batch(1200)]
    print("serve modes:", {m: modes.count(m) for m in sorted(set(modes))})

    # 3. A base-data update invalidates covered quanta (RT1.4-ii) …
    invalidated = session.notify_update("sensors", [20.0, 20.0], [80.0, 80.0])
    print(f"data update invalidated {invalidated} quanta")

    # 4. … and a learned optimizer logs its choices to the same stream.
    log = ExecutionLog()
    for scale in (1, 2, 4, 8, 16):
        log.record(
            TaskFeatures.for_subspace_aggregate(
                10_000 * scale, 0.1 / scale, 2, 8
            ),
            {"mapreduce": 1.0 / scale, "coordinator": 0.2 * scale},
        )
    selector = CostModelSelector(max_depth=2).fit(log)
    selector.attach_observer(observer)
    for entry in log.entries[:3]:
        selector.choose(entry.features)

    # 5. Export all three artefacts (overwrite: the tour is re-runnable).
    trace = session.export_trace(f"{out_dir}/trace.json", overwrite=True)
    metrics = session.export_metrics(f"{out_dir}/metrics.prom", overwrite=True)
    events = session.export_events(f"{out_dir}/events.jsonl", overwrite=True)
    print(f"wrote {trace}, {metrics}, {events}")

    # 6. What the observer saw, in numbers.
    stats = session.stats()
    print(f"simulated time:  {stats['obs_simulated_seconds']:.3f} s "
          f"across {int(stats['obs_spans_recorded'])} spans")
    print(f"decisions:       {int(stats['obs_events_recorded'])} events")
    p50 = stats.get("sea_query_latency_seconds_p50", float('nan'))
    p90 = stats.get("sea_query_latency_seconds_p90", float('nan'))
    print(f"query latency:   p50 {p50 * 1e3:.2f} ms, p90 {p90 * 1e3:.2f} ms")
    print(f"bytes scanned:   {stats['bytes_scanned_total']:.3g}")
    print(f"seconds saved:   {stats['estimated_seconds_saved']:.3f} "
          f"(data-less serving vs exact)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else ".")
