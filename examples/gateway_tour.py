"""Serving-gateway tour: multi-tenant admission, batching, backpressure.

Walks DESIGN §14's front door end to end on a live session:

1. two tenants over one shared store: each gets its own agent (own
   predictors, own answer-cache partition) and their answer streams
   replay byte-identically on dedicated sequential agents;
2. pass-through at low load: an idle-loop arrival is served inline —
   no queue hop, no thread hop — so p50 is a direct agent call plus
   microseconds of bookkeeping;
3. a concurrent burst: the adaptive batcher sees utilisation cross the
   pass-through threshold and coalesces arrivals into single
   ``submit_batch`` dispatches;
4. typed backpressure: a tiny queue with per-tenant quotas and tight
   deadlines converts overload into ``AdmissionRejectedError``\\ s whose
   ``reason`` tells the client *what* to do about it;
5. the byte-identity check: every answer the gateway returned equals a
   fresh sequential agent replaying the tenant's served queries.

Run:  python examples/gateway_tour.py
"""

import asyncio

import numpy as np

from repro import (
    AdmissionRejectedError,
    AgentConfig,
    Count,
    GatewayConfig,
    InterestProfile,
    SEASession,
    ServingGateway,
    gaussian_mixture_table,
)
from repro.core import SEAAgent
from repro.data import WorkloadGenerator


def build_world(n_rows=20_000, seed=1):
    session = SEASession(n_nodes=8)
    table = gaussian_mixture_table(
        n_rows, dims=("x0", "x1"), seed=seed, name="sensors"
    )
    session.load_table(table)
    profile = InterestProfile.from_table(
        table, ("x0", "x1"), n_hotspots=4, seed=2
    )
    workload = WorkloadGenerator(
        "sensors", ("x0", "x1"), profile, aggregate=Count(), seed=3
    )
    return session, workload


async def tour():
    session, workload = build_world()
    config = AgentConfig(training_budget=60, error_threshold=0.25)

    print("=== 1. two tenants over one shared store ===")
    gateway = ServingGateway(
        session,
        GatewayConfig(queue_capacity=64, max_batch=16),
        agent_config=config,
    )
    async with gateway:
        for query in workload.batch(120):
            await gateway.submit(query, tenant="alice")
            await gateway.submit(query, tenant="bob")
        alice, bob = gateway.tenant("alice"), gateway.tenant("bob")
        print(f"  alice: {alice.served_total} served, "
              f"cache={len(alice.agent.cache)} entries")
        print(f"  bob:   {bob.served_total} served, own agent: "
              f"{alice.agent is not bob.agent}")

        print("\n=== 2. pass-through at low load ===")
        answer = await gateway.submit(
            workload.next_query(), tenant="alice", timeout=1.0
        )
        stats = gateway.stats()
        print(f"  mode={answer.mode} batched={answer.batched} "
              f"(inline so far: {stats['inline_total']} of "
              f"{stats['served_total']})")

        print("\n=== 3. a concurrent burst coalesces ===")
        # The estimator's view of part 1's closed-loop traffic sits
        # right at the pass-through boundary (back-to-back awaits
        # measure rho ~= 1), so whether a one-shot burst coalesces
        # would depend on scheduler jitter.  Pin the controller into
        # the overload regime so the demo is deterministic.
        gateway.batcher.passthrough_rho = 0.0
        gateway.batcher.headroom = 16.0
        burst = workload.batch(48)
        answers = await gateway.submit_many(
            burst, tenant="alice", timeout=5.0
        )
        sizes = sorted({a.batch_size for a in answers})
        stats = gateway.stats()
        print(f"  48 concurrent requests -> {stats['batches_total']} "
              f"dispatches so far, batch sizes seen in burst: {sizes}")
        print(f"  batcher estimate: rho={stats['batcher']['rho']:.2f} "
              f"window={stats['batcher']['window'] * 1e3:.2f}ms")

        print("\n=== 4. typed backpressure under a tiny queue ===")
        rejected = {}
        tiny = ServingGateway(
            session,
            GatewayConfig(
                queue_capacity=4, tenant_quota=2, default_timeout=0.001
            ),
            agent_config=config,
            own_session=False,
        )
        async with tiny:
            results = await asyncio.gather(
                *(
                    tiny.submit(q, tenant=f"t{i % 4}")
                    for i, q in enumerate(workload.batch(32))
                ),
                return_exceptions=True,
            )
        for result in results:
            if isinstance(result, AdmissionRejectedError):
                rejected[result.reason] = rejected.get(result.reason, 0) + 1
        served = sum(1 for r in results if not isinstance(r, Exception))
        print(f"  32 rushed requests: {served} served, "
              f"rejected by reason: {rejected}")

        print("\n=== 5. byte-identity: replay alice sequentially ===")
        reference = SEAAgent(session.engine, AgentConfig(
            training_budget=60, error_threshold=0.25
        ))
        records = [reference.submit(q) for q in alice.served_queries]
        checked = 0
        for record in records:
            assert np.asarray(record.answer) is not None
            checked += 1
        # Spot-check the tail of the stream against the gateway answers
        # from the burst (submit_many returns input order; the replay
        # log is serving order, so align by query object).
        by_query = {id(r.query): r for r in records}
        mismatches = sum(
            0
            if (
                answers[i].mode == by_query[id(answers[i].query)].mode
                and np.array_equal(
                    np.asarray(answers[i].value),
                    np.asarray(by_query[id(answers[i].query)].answer),
                )
            )
            else 1
            for i in range(len(answers))
        )
        print(f"  replayed {checked} queries; burst mismatches: "
              f"{mismatches} (byte-identical: {mismatches == 0})")

    print("\ngateway closed; session closed:", session.closed)


if __name__ == "__main__":
    asyncio.run(tour())
