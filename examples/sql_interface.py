"""The analyst-facing SQL interface, end to end.

Sec. III.A: analysts "can directly issue SQL(-like) queries, (e.g., in
Hive or Pig environments implemented on top of a BDAS)".  This demo runs
SQL text through the whole stack — parser -> SEA agent -> learned models
or exact engine — and then saves the trained models so the next session
starts warm (see repro.core.persistence).

Run:  python examples/sql_interface.py
"""

import io

import numpy as np

from repro import (
    AgentConfig,
    ClusterTopology,
    DistributedStore,
    ExactEngine,
    SEAAgent,
    gaussian_mixture_table,
    parse_query,
)
from repro.core import load_agent_models, save_agent_models


def main():
    topology = ClusterTopology.single_datacenter(8)
    store = DistributedStore(topology)
    table = gaussian_mixture_table(
        60_000, dims=("x0", "x1"), seed=42, name="sensors"
    )
    store.put_table(table, partitions_per_node=2)
    agent = SEAAgent(
        ExactEngine(store),
        AgentConfig(training_budget=250, error_threshold=0.2),
    )

    # A session of SQL queries around one region of interest.
    rng = np.random.default_rng(7)
    center = table.matrix(("x0", "x1")).mean(axis=0)
    print("replaying 400 SQL queries through the agent...")
    for _ in range(400):
        cx, cy = center + rng.normal(scale=3.0, size=2)
        w = rng.uniform(4.0, 9.0)
        sql = (
            f"SELECT COUNT(*) FROM sensors "
            f"WHERE x0 BETWEEN {cx - w:.3f} AND {cx + w:.3f} "
            f"AND x1 BETWEEN {cy - w:.3f} AND {cy + w:.3f}"
        )
        agent.submit(parse_query(sql))
    stats = agent.stats()
    print(f"  data-less fraction: {stats['dataless_fraction']:.0%}")

    # Individual statements, with provenance.
    for sql in (
        f"SELECT COUNT(*) FROM sensors WHERE x0 BETWEEN {center[0]-6:.1f} "
        f"AND {center[0]+6:.1f} AND x1 BETWEEN {center[1]-6:.1f} AND {center[1]+6:.1f}",
        "SELECT AVG(value) FROM sensors WHERE x0 BETWEEN 10 AND 90",
        "SELECT CORR(x0, value) FROM sensors WHERE x1 BETWEEN 20 AND 80",
    ):
        record = agent.submit(parse_query(sql))
        answer = (
            f"{record.answer:.3f}"
            if np.ndim(record.answer) == 0
            else np.round(np.asarray(record.answer), 3)
        )
        print(f"\n  {sql}\n  -> {answer}   "
              f"[{record.mode}, {record.cost.elapsed_sec * 1e3:.2f} ms, "
              f"{record.cost.bytes_scanned} bytes scanned]")

    # Persist the trained models; a fresh agent starts warm.
    buffer = io.BytesIO()
    n_bytes = save_agent_models(agent, buffer)
    buffer.seek(0)
    rookie = SEAAgent(
        ExactEngine(store),
        AgentConfig(training_budget=0, error_threshold=0.2),
    )
    load_agent_models(rookie, buffer)
    record = rookie.submit(
        parse_query(
            f"SELECT COUNT(*) FROM sensors WHERE x0 BETWEEN {center[0]-5:.1f} "
            f"AND {center[0]+5:.1f} AND x1 BETWEEN {center[1]-5:.1f} "
            f"AND {center[1]+5:.1f}"
        )
    )
    print(f"\nmodels persisted ({n_bytes} bytes); fresh agent's first query "
          f"served via '{record.mode}' with zero training")


if __name__ == "__main__":
    main()
