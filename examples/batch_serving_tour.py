"""Batch serving tour: answer a thousand queries in one call.

Builds two identical sessions over the same sensor table and answers the
same 1,000 SQL statements twice — one :meth:`SEASession.sql` call per
statement vs a single :meth:`SEASession.sql_many` batch.  The batch path
returns byte-identical answers, modes and simulated costs; what changes
is the real work: predictions vectorize per (table, aggregate) model,
fallbacks share one scan, and repeated queries hit the quantum-level
answer cache.

The workload draws from a finite pool of distinct queries (analysts
re-issue dashboard queries), so the cache hit rate is visible; a
base-data update at the end shows cached answers being evicted with the
quanta they came from.

Run:  python examples/batch_serving_tour.py
"""

import time

import numpy as np

from repro import (
    AgentConfig,
    Count,
    InterestProfile,
    SEASession,
    WorkloadGenerator,
    gaussian_mixture_table,
)

N_POOL = 200  # distinct dashboard queries ...
N_QUERIES = 1_000  # ... issued (with repeats) this many times


def to_sql(query) -> str:
    """Render a range-selection COUNT query back to the SQL front end."""
    predicates = " AND ".join(
        f"{column} BETWEEN {float(low)!r} AND {float(high)!r}"
        for column, low, high in zip(
            query.selection.columns, query.selection.lows, query.selection.highs
        )
    )
    return f"SELECT COUNT(*) FROM {query.table_name} WHERE {predicates}"


def fresh_session(table):
    session = SEASession(
        n_nodes=8,
        config=AgentConfig(training_budget=300, error_threshold=0.2),
    )
    session.load_table(table)
    return session


def main():
    # 1. A clustered sensor table and a dashboard-style statement pool.
    table = gaussian_mixture_table(
        50_000, dims=("x0", "x1"), seed=7, name="sensors"
    )
    profile = InterestProfile.from_table(table, ("x0", "x1"), 4, seed=8)
    workload = WorkloadGenerator(
        "sensors", ("x0", "x1"), profile, aggregate=Count(), seed=9
    )
    pool = [to_sql(query) for query in workload.batch(N_POOL)]
    rng = np.random.default_rng(10)
    draw = lambda: [pool[i] for i in rng.integers(0, N_POOL, size=N_QUERIES)]

    # 2. Two identical sessions learn from the same first wave, then
    #    freeze learning — the converged, dashboard-serving steady state.
    wave1, wave2 = draw(), draw()
    sequential, batched = fresh_session(table), fresh_session(table)
    sequential.sql_many(wave1)
    batched.sql_many(wave1)
    sequential.agent.config.keep_learning_on_fallback = False
    batched.agent.config.keep_learning_on_fallback = False

    # 3. The second wave, answered two ways: one sql() call per
    #    statement vs a single sql_many() batch.
    start = time.perf_counter()
    seq_answers = [sequential.sql(statement) for statement in wave2]
    seq_sec = time.perf_counter() - start
    start = time.perf_counter()
    bat_answers = batched.sql_many(wave2)
    bat_sec = time.perf_counter() - start

    # 4. Same answers, same modes, same simulated costs — faster clock.
    assert all(
        a.mode == b.mode and a.value == b.value
        for a, b in zip(seq_answers, bat_answers)
    )
    modes = [answer.mode for answer in bat_answers]
    print(f"{N_QUERIES} statements from a pool of {N_POOL} (wave 2 of 2)")
    print("serve modes:    ", {m: modes.count(m) for m in sorted(set(modes))})
    stats = batched.stats()
    hit_rate = stats.get("answer_cache_hit_rate", 0.0)
    hits = int(stats.get("answer_cache_hits", 0))
    print(f"answer cache:    {hits} hits ({hit_rate:.1%} of lookups)")
    print(f"sequential:      {N_QUERIES / seq_sec:,.0f} queries/sec")
    print(f"batched:         {N_QUERIES / bat_sec:,.0f} queries/sec")
    print(f"speedup:         {seq_sec / bat_sec:.2f}x wall-clock")

    # 5. Base-data updates evict exactly the covered quanta — cached
    #    answers from those quanta go with them.
    lows = [float(np.percentile(table.column(c), 10)) for c in ("x0", "x1")]
    highs = [float(np.percentile(table.column(c), 90)) for c in ("x0", "x1")]
    before = int(batched.stats().get("answer_cache_size", 0))
    invalidated = batched.notify_update("sensors", lows, highs)
    after = int(batched.stats().get("answer_cache_size", 0))
    print(
        f"data update:     {invalidated} quanta invalidated, "
        f"{before - after} cached answers evicted ({before} -> {after})"
    )


if __name__ == "__main__":
    main()
