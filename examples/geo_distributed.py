"""Geo-distributed SEA: edge agents, collaborative training, routing (Fig. 3).

A global deployment: two core datacenters hold the data; six edge sites
face analysts on different continents.  The demo runs the same workload
through three deployments and prints the WAN traffic and latency each one
pays:

1. centralized — every edge query crosses the WAN to a core;
2. edge agents — each edge learns models from its own traffic;
3. collaborative — cores pool all edges' training queries (RT5.2), push
   shared models down, and a router adds the peer-edge tier (RT5.4).

Run:  python examples/geo_distributed.py
"""

import numpy as np

from repro import (
    AgentConfig,
    CoreCoordinator,
    Count,
    EdgeAgent,
    ExactEngine,
    GeoRouter,
    GeoSites,
    InterestProfile,
    WorkloadGenerator,
    gaussian_mixture_table,
)

N_EDGES = 6
TRAIN, SERVE = 60, 150


def build():
    sites = GeoSites(n_cores=2, nodes_per_core=3, n_edges=N_EDGES)
    table = gaussian_mixture_table(
        40_000, dims=("x0", "x1"), seed=11, name="data", value_bytes=64
    )
    sites.put_table(table, partitions_per_node=1)
    engine = ExactEngine(sites.store)
    profile = InterestProfile.from_table(
        table, ("x0", "x1"), 3, seed=12, hotspot_scale=2.5, extent_range=(3, 8)
    )
    generators = [
        WorkloadGenerator("data", ("x0", "x1"), profile, aggregate=Count(),
                          seed=20 + i)
        for i in range(N_EDGES)
    ]
    return sites, engine, generators


def report(label, records, extra_wan=0):
    wan = sum(r.cost.bytes_shipped_wan for r in records) + extra_wan
    latency = np.mean([r.cost.elapsed_sec for r in records])
    origins = {o: sum(1 for r in records if r.origin == o)
               for o in ("local", "peer", "core")}
    print(f"{label:14s} wan={wan / 1e6:8.2f} MB  "
          f"latency={latency * 1e3:7.1f} ms  origins={origins}")


def main():
    config = AgentConfig(training_budget=0, error_threshold=0.2)

    # 1. Centralized: edges are dumb WAN proxies.
    sites, engine, generators = build()
    edges = [
        EdgeAgent(n, sites.edge_node(n), engine, sites.core_gateway(),
                  AgentConfig(training_budget=10**9))
        for n in sites.edge_names
    ]
    records = []
    for _ in range(SERVE):
        for edge, wg in zip(edges, generators):
            records.append(edge.submit(wg.next_query()))
    report("centralized", records)

    # 2. Isolated edge agents: each learns alone from its fallbacks.
    sites, engine, generators = build()
    edges = [
        EdgeAgent(n, sites.edge_node(n), engine, sites.core_gateway(), config)
        for n in sites.edge_names
    ]
    for _ in range(TRAIN):
        for edge, wg in zip(edges, generators):
            edge.submit(wg.next_query())
    records = []
    for _ in range(SERVE):
        for edge, wg in zip(edges, generators):
            records.append(edge.submit(wg.next_query()))
    report("edge agents", records)

    # 3. Collaborative: the cores build shared models from all edges'
    #    training queries and push them down; a router adds the peer tier.
    sites, engine, generators = build()
    edges = [
        EdgeAgent(n, sites.edge_node(n), engine, sites.core_gateway(), config)
        for n in sites.edge_names
    ]
    core = CoreCoordinator(engine, sites.core_gateway(), config)
    for _ in range(TRAIN):
        for edge, wg in zip(edges, generators):
            core.train_from_edge(edge.name, wg.next_query())
    push = core.push_models(edges)
    router = GeoRouter(edges, core)
    records = []
    for _ in range(SERVE):
        for edge, wg in zip(edges, generators):
            records.append(router.submit(edge.name, wg.next_query()))
    report("collaborative", records, extra_wan=push.bytes_shipped_wan)
    print(f"\nmodel push-down cost: {push.bytes_shipped_wan / 1e3:.1f} KB "
          f"over the WAN, once")
    print(f"model registry: {core.registry.state_bytes()} bytes of state")


if __name__ == "__main__":
    main()
