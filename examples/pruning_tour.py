"""Zone-map pruning tour: skip, short-circuit, and stay bit-identical.

Walks the partition-synopsis layer end to end on a table clustered on
``x0``:

1. what a synopsis stores and what the whole table's synopses cost;
2. how a narrow range query's scan plan skips disjoint partitions and
   answers fully covered ones straight from the statistics;
3. pruned vs unpruned execution: same answer to the last bit, a fraction
   of the bytes;
4. the same zone maps as *data-less optimizer features* (estimated
   selectivity / scan fraction, no scan required);
5. appends and deletes keeping the synopses exact.

Run:  python examples/pruning_tour.py
"""

import numpy as np

from repro import (
    AnalyticsQuery,
    ClusterTopology,
    DistributedStore,
    ExactEngine,
    Median,
    RangeSelection,
    Sum,
    Table,
    gaussian_mixture_table,
)
from repro.cluster import synopses_consistent
from repro.engine import plan_scan
from repro.optimizer import synopsis_estimates


def main():
    # 1. A clustered table: sorted on x0 before loading, so contiguous
    #    partitions hold contiguous x0 ranges and zone maps are tight.
    topo = ClusterTopology.single_datacenter(8)
    store = DistributedStore(topo)
    table = gaussian_mixture_table(
        40_000, dims=("x0", "x1"), seed=7, name="data", value_bytes=1024
    )
    table = table.take(np.argsort(table.column("x0"), kind="stable"))
    store.put_table(table, partitions_per_node=2)

    stored = store.table("data")
    synopsis = store.synopses("data")[0]
    x0_stats = synopsis.stats("x0")
    print("== the synopsis layer ==")
    print(f"table: {stored.n_rows} rows, {stored.n_bytes/1e6:.1f} MB "
          f"in {len(stored.partitions)} partitions")
    print(f"partition 0 zone map on x0: "
          f"[{x0_stats.minimum:.2f}, {x0_stats.maximum:.2f}], "
          f"{synopsis.n_rows} rows")
    print(f"all synopses together: {store.synopsis_bytes('data')} bytes "
          f"({store.synopsis_bytes('data') / stored.n_bytes:.2e} of the data)\n")

    # 2. Scan plans for a narrow query (5% of the x0 mass, centred).
    x0 = np.sort(table.column("x0"))
    lo, hi = float(x0[int(0.475 * len(x0))]), float(x0[int(0.525 * len(x0))])
    selection = RangeSelection(("x0",), [lo], [hi])
    for aggregate in (Sum("x1"), Median("x1")):
        plan = plan_scan(store.synopses("data"), selection, aggregate)
        print(f"plan for {aggregate.name:>10} over x0 in [{lo:.1f}, {hi:.1f}]: "
              f"{plan.n_skipped} skipped, {plan.n_covered} from synopsis, "
              f"{plan.n_scanned} scanned")
    print()

    # 3. Pruned vs unpruned execution: identical answers, fewer bytes.
    pruned_engine = ExactEngine(store)               # pruning on by default
    unpruned_engine = ExactEngine(store, pruning=False)
    print("== pruned vs unpruned (answers must match bitwise) ==")
    for fraction in (0.05, 0.25, 1.00):
        a = float(x0[int((1 - fraction) / 2 * (len(x0) - 1))])
        b = float(x0[int((1 + fraction) / 2 * (len(x0) - 1))])
        query = AnalyticsQuery("data", RangeSelection(("x0",), [a], [b]), Sum("x1"))
        pruned_answer, pruned_report = pruned_engine.execute(query)
        unpruned_answer, unpruned_report = unpruned_engine.execute(query)
        assert pruned_answer == unpruned_answer
        ratio = unpruned_report.bytes_scanned / max(1, pruned_report.bytes_scanned)
        print(f"selectivity {fraction:5.0%}: answer {pruned_answer:14.2f}  "
              f"bytes {unpruned_report.bytes_scanned/1e6:7.1f} MB -> "
              f"{pruned_report.bytes_scanned/1e6:7.1f} MB  ({ratio:.0f}x less)")
    print()

    # 4. The same metadata as data-less optimizer features.
    est, frac = synopsis_estimates(store.synopses("data"), selection)
    true = float(selection.mask(table).mean())
    print("== zone maps as optimizer features (no scan) ==")
    print(f"estimated selectivity {est:.3%} (true {true:.3%}), "
          f"scan fraction {frac:.2%}\n")

    # 5. Mutations keep the synopses exact (bitwise, verified).
    rng = np.random.default_rng(0)
    store.append_rows("data", Table({
        "x0": rng.uniform(0, 100, size=500),
        "x1": rng.uniform(0, 100, size=500),
        "value": rng.normal(size=500),
    }, name="data"))
    store.delete_rows("data", lambda t: t.column("x1") > 95.0)
    fresh = store.table("data")
    assert synopses_consistent(
        store.synopses("data"), [p.data for p in fresh.partitions]
    )
    print("after append(500 rows) + delete(x1 > 95): "
          "synopses still bitwise-exact against fresh builds")


if __name__ == "__main__":
    main()
