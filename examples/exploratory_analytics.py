"""Exploratory analytics: explanations and higher-level queries (RT4).

Penny, the analyst of Sec. III.A, explores a data space.  Instead of
hammering the system with hundreds of probe queries, she

1. gets a *piecewise-linear explanation* with her first answer — a model
   of how the count depends on her selection's radius, which answers all
   her "what if the region were bigger/smaller?" follow-ups for free;
2. issues one *higher-level interrogation* — "which subspaces hold more
   than 1000 points?" — answered from the agent's learned models without
   touching base data, then verifies against the exact engine.

Run:  python examples/exploratory_analytics.py
"""

import numpy as np

from repro import (
    AgentConfig,
    AnalyticsQuery,
    ClusterTopology,
    Count,
    DistributedStore,
    ExactEngine,
    ExplanationBuilder,
    HigherLevelEngine,
    InterestProfile,
    RadiusSelection,
    SEAAgent,
    ThresholdRegionQuery,
    WorkloadGenerator,
    gaussian_mixture_table,
)


def main():
    topology = ClusterTopology.single_datacenter(8)
    store = DistributedStore(topology)
    table = gaussian_mixture_table(
        60_000, dims=("x0", "x1"), seed=7, name="space"
    )
    store.put_table(table, partitions_per_node=2)
    engine = ExactEngine(store)

    # Penny's session so far: the agent has watched her exploring.
    agent = SEAAgent(engine, AgentConfig(training_budget=10_000))
    profile = InterestProfile.from_table(
        table, ("x0", "x1"), 3, seed=8, hotspot_scale=3.0, extent_range=(4, 10)
    )
    session = WorkloadGenerator(
        "space", ("x0", "x1"), profile, kind="radius", seed=9
    )
    for query in session.batch(400):
        agent.submit(query)

    # --- 1. An explanation instead of a swarm of probe queries ----------
    base_query = session.next_query()
    answer = base_query.evaluate(table)
    print(f"Penny asks: {base_query}")
    print(f"answer: count = {answer:.0f}")

    builder = ExplanationBuilder(n_probes=17, max_segments=3)
    explanation = builder.from_predictor(
        base_query, agent.predictor(base_query)
    )
    print("\nexplanation (built from models, zero base-data access):")
    print(" ", explanation.describe())
    print(f"  cost: {explanation.cost.bytes_scanned} bytes scanned, "
          f"{explanation.cost.elapsed_sec * 1e3:.2f} ms")

    print("\nPenny plugs in radii without issuing queries:")
    radius = base_query.selection.radius
    for scale in (0.75, 1.0, 1.25, 1.5):
        probe = AnalyticsQuery(
            "space",
            RadiusSelection(("x0", "x1"), base_query.selection.center,
                            radius * scale),
            Count(),
        )
        truth = probe.evaluate(table)
        guess = explanation.answer_at(radius * scale)
        print(f"  r={radius * scale:6.2f}: explanation={guess:8.0f}   "
              f"exact={truth:8.0f}")

    exact_explanation = builder.from_engine(base_query, engine)
    print(f"\nfor comparison, probing the exact engine would cost "
          f"{exact_explanation.cost.elapsed_sec:.2f} s and "
          f"{exact_explanation.cost.bytes_scanned} bytes")

    # --- 2. A higher-level interrogation ---------------------------------
    print("\nPenny asks: 'which 20x20 subspaces hold > 1000 points?'")
    region_query = ThresholdRegionQuery(
        table_name="space",
        columns=("x0", "x1"),
        aggregate=Count(),
        threshold=1000.0,
        lows=np.array([0.0, 0.0]),
        highs=np.array([100.0, 100.0]),
        cells_per_dim=5,
    )
    # Train the agent on cell-shaped *range* queries so its models cover
    # the candidate grid (range and radius queries live in different
    # query spaces, hence separate predictors).
    from repro import RangeSelection

    rng = np.random.default_rng(10)
    for _ in range(400):
        lo = rng.uniform(0, 78, size=2)
        width = rng.uniform(16, 26, size=2)
        agent.submit(
            AnalyticsQuery(
                "space",
                RangeSelection(("x0", "x1"), lo, np.minimum(lo + width, 100)),
                Count(),
            )
        )
    higher = HigherLevelEngine(
        exact_engine=engine,
        predictor=agent.predictor(region_query.candidate_queries()[0]),
    )
    exact = higher.run_exact(region_query)
    dataless = higher.run_dataless(region_query)
    precision, recall = HigherLevelEngine.precision_recall(dataless, exact)
    print(f"  exact:     {len(exact.regions)} regions, "
          f"cost {exact.cost.elapsed_sec:.2f} s "
          f"({exact.n_candidates} exact queries)")
    print(f"  data-less: {len(dataless.regions)} regions, "
          f"cost {dataless.cost.elapsed_sec * 1e3:.2f} ms, "
          f"precision {precision:.0%}, recall {recall:.0%}")


if __name__ == "__main__":
    main()
