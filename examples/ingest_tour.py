"""Durable-ingestion tour: WAL, deltas, epochs, crashes, recovery.

Walks DESIGN §13's write path end to end on a live session:

1. a session with ingestion enabled: appends and deletes are framed
   into the write-ahead log, staged into per-partition deltas, and
   queryable *immediately* — before any compaction;
2. the epoch boundary: ``advance()`` closes an epoch on the simulated
   clock — one WAL group commit, delta merges into the base images,
   synopsis/columnar rebuilds, one cache invalidation and one model
   drift notification per table — then prunes the durable log;
3. an injected crash mid-compaction: everything unsynced is lost
   (including a torn WAL tail), ``recover()`` restores checkpoints and
   replays the durable records, and the rebuilt store is byte-identical
   to a clean run stopped at the last durable LSN;
4. the observability surface: ingest counters, WAL gauges, and
   per-partition ``delta_rows`` in EXPLAIN ANALYZE profiles.

Run:  python examples/ingest_tour.py
"""

import numpy as np

from repro import (
    FaultInjector,
    SEASession,
    WriteCrashError,
    gaussian_mixture_table,
)
from repro.data.tabular import Table


def batch(seed, n, name="sensors"):
    rng = np.random.default_rng(seed)
    return Table(
        {
            "x0": rng.uniform(0.0, 100.0, n),
            "x1": rng.uniform(0.0, 100.0, n),
            "value": rng.normal(50.0, 10.0, n),
        },
        name=name,
    )


def count_all(session):
    answer = session.sql(
        "SELECT COUNT(*) FROM sensors "
        "WHERE x0 BETWEEN -1000 AND 1000 AND x1 BETWEEN -1000 AND 1000"
    )
    return int(answer.value)


def main():
    # 1. A session with the durable write path installed.
    session = SEASession(n_nodes=4, ingest=True, epoch_seconds=1.0)
    session.attach_observer()
    table = gaussian_mixture_table(
        30_000, dims=("x0", "x1"), seed=7, name="sensors"
    )
    session.load_table(table)
    pipeline = session.ingest
    print(f"base rows: {count_all(session)}")

    # Appends are WAL-logged + staged, and queryable before compaction.
    lsn = session.append_rows("sensors", batch(1, 500))
    print(f"appended 500 rows at LSN {lsn}; "
          f"visible immediately: {count_all(session)} rows, "
          f"{pipeline.pending_delta_rows} still staged in deltas")

    # A dirty partition shows up in EXPLAIN ANALYZE as delta=N.
    answer = session.sql(
        "SELECT COUNT(*) FROM sensors WHERE x0 BETWEEN 10 AND 60 "
        "AND x1 BETWEEN 10 AND 60"
    )
    profile = answer.profile.render()
    delta_lines = [l for l in profile.splitlines() if "delta=" in l]
    print(f"profile shows {len(delta_lines)} partition(s) serving staged rows")

    # 2. The epoch boundary: compaction + maintenance, then WAL pruning.
    session.delete_rows("sensors", lambda t: t.column("x0") > 99.0)
    print(f"WAL before close: {pipeline.wal.disk_bytes} durable bytes, "
          f"{pipeline.wal.pending_records} pending records")
    session.advance(1.0)
    print(f"after epoch close: {pipeline.pending_delta_rows} staged rows, "
          f"{pipeline.n_compactions} partition compactions, "
          f"WAL pruned to {pipeline.wal.disk_bytes} bytes "
          f"(high water {pipeline.wal.high_water_bytes})")
    print(f"staleness bound: learned answers lag writes by at most "
          f"{session.staleness_bound}s of simulated time")

    # 3. Crash mid-compaction; recover; verify byte-identity.
    clean = session.store.table("sensors").full_table()
    injector = FaultInjector(seed=11)
    session.store.attach_faults(injector)
    injector.arm_write_crash("compaction", hits=2)

    session.append_rows("sensors", batch(2, 400))
    try:
        session.flush()  # the armed window fires mid-merge
    except WriteCrashError as exc:
        print(f"crash injected: {exc}")
    report = session.recover()
    print(f"recovered: {report.records_replayed}/{report.records_scanned} "
          f"records replayed, {report.torn_bytes} torn bytes discarded, "
          f"durable LSN {report.durable_lsn}, "
          f"synopses_ok={report.synopses_ok} columnar_ok={report.columnar_ok}")

    # The append above was WAL-synced by the flush's group commit before
    # the compactor crashed, so replay restores it — row for row.
    recovered = session.store.table("sensors").full_table()
    assert recovered.n_rows == clean.n_rows + 400
    print(f"post-recovery image: {count_all(session)} rows "
          f"(crash cost zero durable writes)")

    # The recovered store is live: new writes land and compact.
    session.store.clear_faults()
    session.append_rows("sensors", batch(3, 250))
    session.flush()
    print(f"still serving after recovery: {count_all(session)} rows")

    # 4. The ingest metrics the observer collected along the way.
    metrics = {
        key: int(value)
        for key, value in sorted(session.stats().items())
        if key.startswith(("ingest_", "compaction_")) and value
    }
    for key, value in metrics.items():
        print(f"  {key} = {value}")


if __name__ == "__main__":
    main()
