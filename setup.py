"""Setup shim: enables legacy editable installs where the `wheel` package
(required by PEP 660 builds on setuptools<70) is unavailable offline."""
from setuptools import setup

setup()
